"""The stationary current sub-problem (Section II-A, eq. (3)).

``S_dual M_sigma(T) S_dual^T Phi + sum_j P_j G_el,j(T_bw,j) P_j^T Phi = 0``
with Dirichlet values on the PEC contact nodes.  The same assembly is used
standalone (this module) and inside the coupled loop.
"""

import numpy as np
import scipy.sparse as sp

from ..bondwire.lumped import stamp_conductance_matrix
from ..errors import AssemblyError
from ..fit.assembly import FITDiscretization
from ..fit.boundary import apply_dirichlet
from ..fit.material_matrices import conductance_diagonal
from ..solvers.linear import solve_sparse


def embed_grid_matrix(matrix, total_size):
    """Pad a grid-sized sparse matrix with zero rows/cols for extra nodes."""
    n = matrix.shape[0]
    if n == total_size:
        return matrix.tocsr()
    if n > total_size:
        raise AssemblyError(
            f"matrix of size {n} cannot be embedded into {total_size}"
        )
    matrix = matrix.tocoo()
    return sp.csr_matrix(
        (matrix.data, (matrix.row, matrix.col)), shape=(total_size, total_size)
    )


def embed_grid_vector(vector, total_size):
    """Pad a grid-sized dense vector with zeros for the extra nodes."""
    vector = np.asarray(vector, dtype=float)
    if vector.size == total_size:
        return vector
    padded = np.zeros(total_size)
    padded[: vector.size] = vector
    return padded


def assemble_electrical_matrix(discretization, topology, temperatures):
    """Full electrical system matrix ``K_el(T) + sum g_el P P^T``.

    ``temperatures`` is the full unknown vector (grid + internal wire
    nodes); pass the uniform initial vector for a linear solve.
    """
    temperatures = np.asarray(temperatures, dtype=float)
    grid_temperatures = temperatures[: discretization.grid.num_nodes]
    cell_t = discretization.cell_temperatures(grid_temperatures)
    sigma = discretization.materials.sigma_cells(cell_t)
    stiffness = discretization.stiffness_from_diagonal(
        conductance_diagonal(discretization.dual, sigma)
    )
    matrix = embed_grid_matrix(stiffness, topology.total_size)
    if topology.num_segments_total:
        conductances = topology.segment_electrical_conductances(temperatures)
        stamps = [stamp for _, stamp in topology.flat_segments]
        matrix = matrix + stamp_conductance_matrix(
            topology.total_size, stamps, conductances
        )
    return matrix.tocsr()


def solve_stationary_current(problem, temperatures=None, discretization=None):
    """Solve eq. (3) for the potentials at the given temperature state.

    Parameters
    ----------
    problem:
        The :class:`~repro.coupled.problem.ElectrothermalProblem`.
    temperatures:
        Full temperature vector; defaults to the uniform initial state.
    discretization:
        Optional pre-built :class:`~repro.fit.assembly.FITDiscretization`
        (the coupled solver passes its cached one).

    Returns
    -------
    (potentials, matrix):
        The full potential vector (grid + internal wire nodes) and the
        assembled system matrix (useful for current extraction).
    """
    if not problem.electrical_dirichlet:
        raise AssemblyError(
            "the stationary current problem needs at least one Dirichlet "
            "(PEC) boundary condition"
        )
    if discretization is None:
        discretization = FITDiscretization(problem.grid, problem.materials)
    if temperatures is None:
        temperatures = problem.initial_temperatures()
    matrix = assemble_electrical_matrix(
        discretization, problem.topology, temperatures
    )
    rhs = np.zeros(problem.total_size)
    reduced = apply_dirichlet(matrix, rhs, problem.electrical_dirichlet)
    solution = solve_sparse(reduced.matrix, reduced.rhs)
    return reduced.expand(solution), matrix


def terminal_currents(matrix, potentials, dirichlet_bcs):
    """Net current injected through each Dirichlet group [A].

    The residual ``(A Phi)_i`` at a fixed node equals the current the
    voltage source feeds into that node; summing over a contact's nodes
    gives the terminal current.  Kirchhoff demands the currents over all
    groups to sum to ~0, which the tests assert.
    """
    residual = matrix @ np.asarray(potentials, dtype=float)
    return [float(np.sum(residual[bc.nodes])) for bc in dirichlet_bcs]
