"""Standalone transient thermal solves (verification substrate).

The coupled solver embeds its own thermal stepping; this module exposes the
pure thermal problem -- eq. (4) without the electrical coupling -- so tests
can compare against analytic solutions (lumped cooling, 1D conduction).
"""

import numpy as np
import scipy.sparse as sp

from ..errors import AssemblyError
from ..fit.assembly import FITDiscretization
from ..fit.boundary import apply_dirichlet
from ..solvers.linear import LinearSolver
from ..solvers.newton import fixed_point
from ..solvers.time_integration import ThetaMethod


def solve_thermal_transient(
    grid,
    materials,
    time_grid,
    t_initial=300.0,
    node_power=None,
    convection=None,
    radiation=None,
    thermal_dirichlet=(),
    theta=1.0,
    tolerance=1.0e-8,
    max_iterations=30,
    store_all=False,
):
    """Integrate ``M_rhoc dT/dt + K_lambda(T) T = Q`` over a time grid.

    Parameters
    ----------
    node_power:
        Constant external node power vector [W] (``None`` = no sources).
    theta:
        Theta-method parameter; 1.0 is the paper's implicit Euler.
    store_all:
        When ``True`` the full temperature field at every time point is
        returned (memory permitting); otherwise only the final field.

    Returns
    -------
    dict with keys ``times``, ``final`` and (with ``store_all``)
    ``fields``, plus ``mean_trace`` (volume-averaged temperature per time
    point, handy for lumped-model comparisons).
    """
    discretization = FITDiscretization(grid, materials)
    n = grid.num_nodes
    if node_power is None:
        node_power = np.zeros(n)
    node_power = np.asarray(node_power, dtype=float)
    if node_power.size != n:
        raise AssemblyError(
            f"node_power has {node_power.size} entries, grid has {n} nodes"
        )

    capacitance = discretization.thermal_capacitance()
    stepper = ThetaMethod(theta)
    solver = LinearSolver()
    dual = discretization.dual

    conv_diag = np.zeros(n)
    conv_rhs = np.zeros(n)
    if convection is not None:
        conv_diag, conv_rhs = convection.contributions(dual)

    temperatures = np.full(n, float(t_initial))
    times = time_grid.times
    dt = time_grid.dt
    fields = [temperatures.copy()] if store_all else None
    dual_volumes = dual.dual_volumes()
    total_volume = float(np.sum(dual_volumes))
    mean_trace = [float(np.dot(dual_volumes, temperatures)) / total_volume]

    for _ in range(time_grid.num_steps):
        t_old = temperatures

        def advance(t_star):
            cell_t = discretization.cell_temperatures(t_star)
            stiffness = discretization.stiffness_from_diagonal(
                _lambda_diag(discretization, cell_t)
            )
            diagonal = conv_diag.copy()
            rhs_bc = conv_rhs.copy()
            if radiation is not None:
                rad_diag, rad_rhs = radiation.linearized_contributions(
                    dual, t_star
                )
                diagonal = diagonal + rad_diag
                rhs_bc = rhs_bc + rad_rhs
            matrix = stepper.step_matrix(
                capacitance, stiffness + sp.diags(diagonal), dt
            )
            rhs = stepper.step_rhs(
                capacitance,
                stiffness + sp.diags(diagonal),
                t_old,
                node_power + rhs_bc,
                node_power + rhs_bc,
                dt,
            )
            if thermal_dirichlet:
                reduced = apply_dirichlet(matrix, rhs, thermal_dirichlet)
                return reduced.expand(solver.solve(reduced.matrix, reduced.rhs))
            return solver.solve(matrix, rhs)

        result = fixed_point(
            advance,
            t_old,
            tolerance=tolerance,
            max_iterations=max_iterations,
        )
        temperatures = result.solution
        if store_all:
            fields.append(temperatures.copy())
        mean_trace.append(
            float(np.dot(dual_volumes, temperatures)) / total_volume
        )

    output = {
        "times": times,
        "final": temperatures,
        "mean_trace": np.asarray(mean_trace),
    }
    if store_all:
        output["fields"] = fields
    return output


def _lambda_diag(discretization, cell_temperatures):
    """Per-edge thermal conductance diagonal at the given cell temperatures."""
    from ..fit.material_matrices import conductance_diagonal

    lam = discretization.materials.lambda_cells(cell_temperatures)
    return conductance_diagonal(discretization.dual, lam)
