"""Problem definition for the coupled electrothermal simulation.

An :class:`ElectrothermalProblem` bundles everything eq. (3)-(4) of the
paper need: the grid, the cell material assignment, the electrical Dirichlet
(PEC) conditions, the thermal boundary conditions (convection/radiation) and
the list of lumped bonding wires.  :class:`WireTopology` derives the stamp
vectors, including the internal nodes that multi-segment wires append after
the grid unknowns.
"""

import numpy as np

from ..bondwire.lumped import LumpedBondWire, WireStamp
from ..errors import AssemblyError, BondWireError
from ..fit.boundary import ConvectionBC, DirichletBC, RadiationBC


class WireTopology:
    """Stamps and bookkeeping for all wires of a problem.

    A wire with ``S`` segments contributes ``S`` two-terminal elements in a
    chain ``start -> e_1 -> ... -> e_{S-1} -> end`` where the ``e_i`` are
    *internal* unknowns numbered after the grid nodes.  The paper's default
    is ``S = 1`` (no internal nodes); larger ``S`` realizes the "number of
    concatenated lumped elements resulting in a piecewise linear
    temperature distribution" extension of Section III-B.
    """

    def __init__(self, wires, num_grid_nodes):
        self.wires = list(wires)
        for wire in self.wires:
            if not isinstance(wire, LumpedBondWire):
                raise BondWireError(
                    f"expected LumpedBondWire, got {type(wire).__name__}"
                )
        self.num_grid_nodes = int(num_grid_nodes)
        self.num_extra_nodes = sum(w.num_segments - 1 for w in self.wires)
        self.total_size = self.num_grid_nodes + self.num_extra_nodes

        #: Per wire: list of WireStamp, one per segment.
        self.segment_stamps = []
        #: Per wire: list of all node indices along the chain.
        self.wire_nodes = []
        #: Per wire: the end-point averaging stamp (eq. (5) of the paper).
        self.endpoint_stamps = []
        #: Flat list of (wire_index, segment_stamp) over all segments.
        self.flat_segments = []

        next_extra = self.num_grid_nodes
        for wire_index, wire in enumerate(self.wires):
            if not isinstance(wire, LumpedBondWire):
                raise BondWireError(
                    f"expected LumpedBondWire, got {type(wire).__name__}"
                )
            if wire.start_node >= self.num_grid_nodes:
                raise BondWireError(
                    f"wire {wire.name!r} start node {wire.start_node} outside "
                    f"grid ({self.num_grid_nodes} nodes)"
                )
            if wire.end_node >= self.num_grid_nodes:
                raise BondWireError(
                    f"wire {wire.name!r} end node {wire.end_node} outside "
                    f"grid ({self.num_grid_nodes} nodes)"
                )
            chain = [wire.start_node]
            for _ in range(wire.num_segments - 1):
                chain.append(next_extra)
                next_extra += 1
            chain.append(wire.end_node)
            stamps = [
                WireStamp(a, b, self.total_size)
                for a, b in zip(chain[:-1], chain[1:])
            ]
            self.wire_nodes.append(chain)
            self.segment_stamps.append(stamps)
            self.endpoint_stamps.append(
                WireStamp(wire.start_node, wire.end_node, self.total_size)
            )
            for stamp in stamps:
                self.flat_segments.append((wire_index, stamp))

    @property
    def num_segments_total(self):
        """Total number of two-terminal elements over all wires."""
        return len(self.flat_segments)

    def segment_incidence_matrix(self):
        """Dense ``(total_size, num_segments)`` matrix of all P vectors.

        Columns are ordered like :attr:`flat_segments`; this is the ``U``
        matrix of the Woodbury fast path.
        """
        u = np.zeros((self.total_size, self.num_segments_total))
        for column, (_, stamp) in enumerate(self.flat_segments):
            u[stamp.start_node, column] = 1.0
            u[stamp.end_node, column] = -1.0
        return u

    def segment_node_indices(self):
        """``(start, end, wire)`` index arrays over :attr:`flat_segments`.

        The vectorized view of the stamp list: entry ``i`` describes
        segment ``i`` (column ``i`` of the incidence matrix).  This is
        what the sample-blocked fast path uses to evaluate segment
        temperatures, conductances and Joule scatters as array ops
        instead of per-stamp Python loops.
        """
        starts = np.array(
            [stamp.start_node for _, stamp in self.flat_segments], dtype=int
        )
        ends = np.array(
            [stamp.end_node for _, stamp in self.flat_segments], dtype=int
        )
        wires = np.array(
            [wire_index for wire_index, _ in self.flat_segments], dtype=int
        )
        return starts, ends, wires

    def endpoint_node_indices(self):
        """``(start, end)`` index arrays of the per-wire endpoint stamps."""
        starts = np.array(
            [stamp.start_node for stamp in self.endpoint_stamps], dtype=int
        )
        ends = np.array(
            [stamp.end_node for stamp in self.endpoint_stamps], dtype=int
        )
        return starts, ends

    def wire_temperatures(self, temperatures):
        """Representative wire temperatures ``T_bw,j = X_j^T T`` (eq. (5)).

        The average of the two *end-point* temperatures, regardless of the
        number of segments -- exactly the paper's definition.
        """
        temperatures = np.asarray(temperatures, dtype=float)
        return np.asarray(
            [stamp.average_value(temperatures) for stamp in self.endpoint_stamps]
        )

    def wire_peak_temperatures(self, temperatures):
        """Maximum temperature over each wire's chain nodes.

        Equals :meth:`wire_temperatures` end-point maximum for single
        segment wires; for multi-segment wires this sees the interior hot
        spot the piecewise-linear profile resolves.
        """
        temperatures = np.asarray(temperatures, dtype=float)
        return np.asarray(
            [float(np.max(temperatures[chain])) for chain in self.wire_nodes]
        )

    def segment_temperatures(self, temperatures):
        """Average temperature of every segment (controls its conductances)."""
        temperatures = np.asarray(temperatures, dtype=float)
        return np.asarray(
            [stamp.average_value(temperatures) for _, stamp in self.flat_segments]
        )

    def segment_electrical_conductances(self, temperatures):
        """Per-segment ``G_el(T_seg)`` [S] for the current iterate."""
        seg_t = self.segment_temperatures(temperatures)
        return np.asarray(
            [
                self.wires[w].segment_electrical_conductance(t)
                for (w, _), t in zip(self.flat_segments, seg_t)
            ]
        )

    def segment_thermal_conductances(self, temperatures):
        """Per-segment ``G_th(T_seg)`` [W/K] for the current iterate."""
        seg_t = self.segment_temperatures(temperatures)
        return np.asarray(
            [
                self.wires[w].segment_thermal_conductance(t)
                for (w, _), t in zip(self.flat_segments, seg_t)
            ]
        )

    def extra_heat_capacities(self):
        """Heat capacity [J/K] of each internal wire node.

        Each internal node represents one segment's worth of wire volume.
        """
        capacities = np.zeros(self.num_extra_nodes)
        offset = 0
        for wire in self.wires:
            for _ in range(wire.num_segments - 1):
                capacities[offset] = wire.segment_heat_capacity()
                offset += 1
        return capacities

    def joule_powers(self, potentials, temperatures):
        """Per-node wire Joule power vector ``Q_bw`` [W] (full size).

        Each segment dissipates ``g (P^T Phi)^2`` split half/half onto its
        two nodes (the ``X_j`` distribution of the paper, per segment).
        Also returns the per-wire total powers.
        """
        potentials = np.asarray(potentials, dtype=float)
        g_el = self.segment_electrical_conductances(temperatures)
        node_power = np.zeros(self.total_size)
        wire_power = np.zeros(len(self.wires))
        for (wire_index, stamp), g in zip(self.flat_segments, g_el):
            power = stamp.joule_power(potentials, g)
            node_power[stamp.start_node] += 0.5 * power
            node_power[stamp.end_node] += 0.5 * power
            wire_power[wire_index] += power
        return node_power, wire_power


class ElectrothermalProblem:
    """Validated container for one coupled simulation setup.

    Parameters
    ----------
    grid:
        :class:`~repro.grid.tensor_grid.TensorGrid`.
    materials:
        :class:`~repro.fit.material_field.MaterialField` on the same grid.
    wires:
        Iterable of :class:`~repro.bondwire.lumped.LumpedBondWire`.
    electrical_dirichlet:
        Iterable of :class:`~repro.fit.boundary.DirichletBC` (the PEC
        contact potentials, Section V-B).
    convection, radiation:
        Optional thermal boundary conditions (paper: both on all faces).
    thermal_dirichlet:
        Optional fixed-temperature nodes (not used by the paper's study,
        supported for heat-sink scenarios).
    t_initial:
        Uniform initial temperature [K] (paper: 300 K).
    name:
        Label used in reports.
    """

    def __init__(
        self,
        grid,
        materials,
        wires=(),
        electrical_dirichlet=(),
        convection=None,
        radiation=None,
        thermal_dirichlet=(),
        t_initial=300.0,
        name="",
    ):
        if materials.grid is not grid and materials.grid != grid:
            raise AssemblyError("material field belongs to a different grid")
        self.grid = grid
        self.materials = materials
        self.wires = list(wires)
        self.electrical_dirichlet = list(electrical_dirichlet)
        self.thermal_dirichlet = list(thermal_dirichlet)
        for bc in self.electrical_dirichlet + self.thermal_dirichlet:
            if not isinstance(bc, DirichletBC):
                raise AssemblyError(
                    f"expected DirichletBC, got {type(bc).__name__}"
                )
            if np.any(bc.nodes >= grid.num_nodes):
                raise AssemblyError(
                    f"Dirichlet BC {bc.label!r} references nodes outside the grid"
                )
        if convection is not None and not isinstance(convection, ConvectionBC):
            raise AssemblyError(
                f"convection must be a ConvectionBC, got {type(convection).__name__}"
            )
        if radiation is not None and not isinstance(radiation, RadiationBC):
            raise AssemblyError(
                f"radiation must be a RadiationBC, got {type(radiation).__name__}"
            )
        self.convection = convection
        self.radiation = radiation
        self.t_initial = float(t_initial)
        if self.t_initial <= 0.0:
            raise AssemblyError(
                f"initial temperature must be positive, got {t_initial!r}"
            )
        self.name = name
        self.topology = WireTopology(self.wires, grid.num_nodes)

    @property
    def total_size(self):
        """Grid nodes plus internal wire nodes."""
        return self.topology.total_size

    def initial_temperatures(self):
        """Uniform initial temperature vector over all unknowns."""
        return np.full(self.total_size, self.t_initial)

    def with_wire_lengths(self, lengths):
        """Clone of this problem with new wire lengths (Monte Carlo path).

        Only the wires change; grid, materials and boundary conditions are
        shared (they are read-only during solves), so cloning is cheap.
        """
        lengths = np.asarray(lengths, dtype=float).ravel()
        if lengths.size != len(self.wires):
            raise BondWireError(
                f"expected {len(self.wires)} lengths, got {lengths.size}"
            )
        clone = ElectrothermalProblem.__new__(ElectrothermalProblem)
        clone.grid = self.grid
        clone.materials = self.materials
        clone.wires = [
            wire.with_length(length)
            for wire, length in zip(self.wires, lengths)
        ]
        clone.electrical_dirichlet = self.electrical_dirichlet
        clone.thermal_dirichlet = self.thermal_dirichlet
        clone.convection = self.convection
        clone.radiation = self.radiation
        clone.t_initial = self.t_initial
        clone.name = self.name
        clone.topology = WireTopology(clone.wires, self.grid.num_nodes)
        return clone

    def with_segmented_wires(self, num_segments):
        """Clone with every wire subdivided into ``num_segments`` elements."""
        clone = ElectrothermalProblem.__new__(ElectrothermalProblem)
        clone.grid = self.grid
        clone.materials = self.materials
        clone.wires = [wire.with_segments(num_segments) for wire in self.wires]
        clone.electrical_dirichlet = self.electrical_dirichlet
        clone.thermal_dirichlet = self.thermal_dirichlet
        clone.convection = self.convection
        clone.radiation = self.radiation
        clone.t_initial = self.t_initial
        clone.name = self.name
        clone.topology = WireTopology(clone.wires, self.grid.num_nodes)
        return clone

    def wire_names(self):
        """Wire labels (auto-numbered when unnamed)."""
        return [
            wire.name or f"wire{index:02d}"
            for index, wire in enumerate(self.wires)
        ]

    def __repr__(self):
        return (
            f"ElectrothermalProblem({self.name or 'unnamed'}: "
            f"{self.grid.num_nodes} grid nodes, {len(self.wires)} wires, "
            f"{self.topology.num_extra_nodes} internal wire nodes)"
        )
