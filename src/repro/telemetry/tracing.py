"""Low-overhead span tracing and ambient metric emission.

The tracer is built around one contextvar holding the **active
collector** (``None`` by default).  Every instrumentation point --
``span(...)``, ``increment(...)``, ``observe(...)``, ``gauge(...)`` --
performs a single ``ContextVar.get()`` check and becomes a complete
no-op when no collector is active: no span objects are allocated, no
events are buffered, no sink is written.  That makes it safe to leave
instrumentation in hot solver loops; the disabled-mode cost is one
attribute check.

Collection is explicitly scoped::

    with capture() as collected:
        with span("chunk", chunk=3):
            with span("sample", index=17):
                ...                      # nested, monotonic-clock timed
        increment("solver.coupled_steps")
    collected.events    # span event dicts, in completion order
    collected.registry  # a MetricsRegistry of ambient metric emissions

Because the scope lives in a :mod:`contextvars` context, captures in
different threads are independent (each worker thread of a thread-pool
executor collects its own chunk without cross-talk), and nesting
``capture()`` restores the outer collector on exit.

A module-level *enabled* flag (default on; ``REPRO_TELEMETRY=0``
disables) decides whether the campaign machinery installs captures at
all -- it gates who calls ``capture()``, while the contextvar decides
what every individual instrumentation point costs.
"""

import contextvars
import os
import time
from contextlib import contextmanager

from .metrics import MetricsRegistry

#: The active collector of the current context (``None`` -> no-op).
_COLLECTOR = contextvars.ContextVar("repro_telemetry_collector",
                                    default=None)
#: The innermost open span of the current context (for parent links).
_CURRENT_SPAN = contextvars.ContextVar("repro_telemetry_span",
                                       default=None)

_ENABLED = os.environ.get("REPRO_TELEMETRY", "1").lower() not in (
    "0", "false", "off", "no",
)


def enabled():
    """Whether campaign-level telemetry capture is globally enabled."""
    return _ENABLED


def enable():
    """Globally enable campaign-level telemetry capture."""
    global _ENABLED
    _ENABLED = True


def disable():
    """Globally disable campaign-level telemetry capture (no sinks, no
    span objects anywhere)."""
    global _ENABLED
    _ENABLED = False


class _NoOpSpan:
    """Shared do-nothing span: the disabled-mode fast path.

    A single module-level instance is returned by every ``span()`` call
    made without an active collector, so the hot path allocates
    nothing.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False

    def set(self, **attributes):
        """Attribute attachment is a no-op without a collector."""


NOOP_SPAN = _NoOpSpan()


class Span:
    """One timed, contextvar-nested span (use via :func:`span`)."""

    __slots__ = ("name", "attributes", "_collector", "_start", "_token")

    def __init__(self, collector, name, attributes):
        self.name = str(name)
        self.attributes = attributes
        self._collector = collector
        self._start = None
        self._token = None

    def set(self, **attributes):
        """Attach further attributes to the span before it closes."""
        self.attributes.update(attributes)

    def __enter__(self):
        self._token = _CURRENT_SPAN.set(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        end = time.perf_counter()
        _CURRENT_SPAN.reset(self._token)
        parent = _CURRENT_SPAN.get()
        event = {
            "event": "span",
            "name": self.name,
            "t0_s": self._start - self._collector.t0,
            "wall_s": end - self._start,
            "parent": None if parent is None else parent.name,
        }
        if self.attributes:
            event["attrs"] = dict(self.attributes)
        if exc_type is not None:
            event["error"] = exc_type.__name__
        self._collector.emit(event)
        return False


class Collector:
    """Buffer of one capture scope: span events + a metrics registry."""

    def __init__(self):
        self.events = []
        self.registry = MetricsRegistry()
        #: Monotonic-clock origin; span ``t0_s`` offsets are relative to
        #: it, so events within one capture order consistently.
        self.t0 = time.perf_counter()

    def emit(self, event):
        self.events.append(event)


def span(name, **attributes):
    """A timed span context manager (no-op without an active collector).

    Usage: ``with span("chunk", chunk=3): ...``.  Spans nest through a
    contextvar: the emitted event records the enclosing span's name as
    ``parent``.  Attributes must be JSON-serializable.
    """
    collector = _COLLECTOR.get()
    if collector is None:
        return NOOP_SPAN
    return Span(collector, name, attributes)


def increment(name, value=1):
    """Increment a counter on the active collector's registry (no-op
    without one)."""
    collector = _COLLECTOR.get()
    if collector is not None:
        collector.registry.increment(name, value)


def observe(name, value):
    """Fold an observation into the active collector's registry (no-op
    without one)."""
    collector = _COLLECTOR.get()
    if collector is not None:
        collector.registry.observe(name, value)


def gauge(name, value):
    """Set a gauge on the active collector's registry (no-op without
    one)."""
    collector = _COLLECTOR.get()
    if collector is not None:
        collector.registry.gauge(name, value)


def active_collector():
    """The current context's collector, or ``None``."""
    return _COLLECTOR.get()


@contextmanager
def capture():
    """Install a fresh :class:`Collector` for the dynamic extent.

    Yields the collector; on exit the previous collector (usually
    ``None``) is restored, so captures nest and concurrent threads
    collect independently.
    """
    collector = Collector()
    token = _COLLECTOR.set(collector)
    try:
        yield collector
    finally:
        _COLLECTOR.reset(token)
