"""Telemetry: span tracing, metrics, and persisted event logs.

The observability layer of the campaign stack (see DESIGN.md
"Telemetry"):

* :mod:`~repro.telemetry.tracing` -- a contextvar-scoped span tracer
  (:func:`span`, :func:`capture`) and ambient metric emission
  (:func:`increment` / :func:`observe` / :func:`gauge`), all no-ops
  costing a single attribute check when no collector is active;
* :mod:`~repro.telemetry.metrics` -- :class:`MetricsRegistry`, named
  counters/gauges/histograms with a cross-worker :meth:`~MetricsRegistry
  .merge` mirroring :meth:`repro.uq.statistics.RunningStatistics.merge`;
* :mod:`~repro.telemetry.events` -- the JSONL event schema
  (:data:`EVENT_SCHEMA`, :func:`validate_event`) and the append-safe
  :class:`EventSink` / reader used by the campaign
  :class:`~repro.campaign.store.ArtifactStore`'s ``telemetry/`` layout.

Campaign runs capture telemetry by default (cheap: per chunk, not per
solve); :func:`disable` or ``REPRO_TELEMETRY=0`` turns the whole layer
into no-ops.
"""

from .events import (
    EVENT_SCHEMA,
    EventSink,
    append_events,
    read_events,
    validate_event,
    validate_events,
    write_events,
)
from .metrics import MetricsRegistry
from .tracing import (
    Collector,
    NOOP_SPAN,
    Span,
    active_collector,
    capture,
    disable,
    enable,
    enabled,
    gauge,
    increment,
    observe,
    span,
)

__all__ = [
    "MetricsRegistry",
    "Collector",
    "Span",
    "NOOP_SPAN",
    "span",
    "capture",
    "active_collector",
    "increment",
    "observe",
    "gauge",
    "enable",
    "disable",
    "enabled",
    "EVENT_SCHEMA",
    "EventSink",
    "validate_event",
    "validate_events",
    "read_events",
    "write_events",
    "append_events",
]
