"""JSONL telemetry events: schema, sink, reader, validation.

Every telemetry event is one flat JSON object per line (JSONL) with a
required string ``"event"`` field naming its kind.  The documented kinds
and their required fields (see DESIGN.md "Telemetry"):

``span``
    ``name`` (str), ``t0_s`` (number, offset from the capture origin),
    ``wall_s`` (number), ``parent`` (str or null); optional ``attrs``
    dict and ``error`` exception name.
``chunk``
    One per evaluated campaign chunk: ``chunk`` (int), ``samples``
    (int), ``worker`` (str), ``wall_s`` (number); optional
    ``queue_wait_s`` (number), ``start_walltime`` / ``end_walltime``
    (POSIX seconds) and ``metrics`` (a ``MetricsRegistry.as_dict``).
``run_start``
    ``total_chunks`` (int), ``completed_chunks`` (int), ``walltime``
    (POSIX seconds).
``chunk_complete``
    ``chunk`` (int), ``done`` (int), ``total`` (int); optional
    ``wall_s``, ``queue_wait_s``, ``worker``.
``chunk_failed``
    One per chunk that exhausted its retries and was quarantined:
    ``chunk`` (int), ``attempts`` (int), ``error`` (str); optional
    ``samples`` (int) and ``worker``.
``fold``
    ``chunk`` (int), ``wall_s`` (number).
``heartbeat``
    ``done`` (int), ``total`` (int), ``rate_per_s`` (number);
    optional ``eta_s`` (number or null), ``wall_s``.
``progress``
    The persisted twin of ``heartbeat`` (atomically replaced in
    ``telemetry/progress.json`` for out-of-process status readers):
    ``done`` (int), ``total`` (int), ``rate_per_s`` (number);
    optional ``eta_s``, ``wall_s``, ``walltime``.
``status``
    One machine-readable store/job status snapshot, as streamed by the
    service layer's ``watch``: ``state`` (str); everything else
    optional (see DESIGN.md "Service layer" for the full payload).
``run_complete``
    ``total_chunks`` (int), ``num_evaluated`` (int), ``wall_s``
    (number); optional ``metrics``.

Unknown extra fields are always allowed (events are forward-
compatible); unknown event kinds fail validation so schema drift is
caught by the CI telemetry check instead of rotting silently.

The JSONL layout is what makes the log kill-safe: every line is
self-contained, appends are atomic enough at line granularity, and
:func:`read_events` tolerates a torn trailing line (a process killed
mid-write) by skipping it.
"""

import json
import os
import tempfile

from ..errors import TelemetryError

_NUMBER = (int, float)

#: Required fields per event kind: name -> {field: type tuple}.
EVENT_SCHEMA = {
    "span": {"name": str, "t0_s": _NUMBER, "wall_s": _NUMBER},
    "chunk": {
        "chunk": int, "samples": int, "worker": str, "wall_s": _NUMBER,
    },
    "run_start": {
        "total_chunks": int, "completed_chunks": int, "walltime": _NUMBER,
    },
    "chunk_complete": {"chunk": int, "done": int, "total": int},
    "chunk_failed": {"chunk": int, "attempts": int, "error": str},
    "fold": {"chunk": int, "wall_s": _NUMBER},
    "heartbeat": {"done": int, "total": int, "rate_per_s": _NUMBER},
    "progress": {"done": int, "total": int, "rate_per_s": _NUMBER},
    "status": {"state": str},
    "run_complete": {
        "total_chunks": int, "num_evaluated": int, "wall_s": _NUMBER,
    },
}


def validate_event(event):
    """Check one event dict against :data:`EVENT_SCHEMA`.

    Raises :class:`~repro.errors.TelemetryError` with a pointed message
    on the first violation; returns the event unchanged when valid.
    """
    if not isinstance(event, dict):
        raise TelemetryError(
            f"telemetry event must be a dict, got {type(event).__name__}"
        )
    kind = event.get("event")
    if not isinstance(kind, str):
        raise TelemetryError(
            "telemetry event needs a string 'event' kind field, got "
            f"{event!r}"
        )
    schema = EVENT_SCHEMA.get(kind)
    if schema is None:
        raise TelemetryError(
            f"unknown telemetry event kind {kind!r}; documented kinds: "
            f"{sorted(EVENT_SCHEMA)}"
        )
    for field, types in schema.items():
        if field not in event:
            raise TelemetryError(
                f"telemetry {kind!r} event is missing required field "
                f"{field!r}: {event!r}"
            )
        value = event[field]
        # bool is an int subclass but never a valid count/number here.
        if isinstance(value, bool) or not isinstance(value, types):
            raise TelemetryError(
                f"telemetry {kind!r} event field {field!r} has type "
                f"{type(value).__name__}, expected "
                f"{getattr(types, '__name__', None) or '/'.join(t.__name__ for t in types)}"
            )
    return event


def validate_events(events):
    """Validate an iterable of events; returns the count validated."""
    count = 0
    for event in events:
        validate_event(event)
        count += 1
    return count


def _encode(event):
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def write_events(path, events, validate=True):
    """Atomically write an event list as a JSONL file (temp + replace).

    Used for per-chunk event files: the file either exists completely
    or not at all, mirroring the chunk ``.npz`` discipline, so a killed
    run can never leave a torn chunk log behind.
    """
    events = list(events)
    if validate:
        validate_events(events)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    descriptor, temporary = tempfile.mkstemp(dir=directory, suffix=".tmp")
    with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(_encode(event) + "\n")
    os.replace(temporary, path)
    return path


def append_events(path, events, validate=True):
    """Append events to a JSONL log, one line each, flushed.

    The append-mode twin of :func:`write_events` for run-scoped logs
    that accumulate across resumes.
    """
    events = list(events)
    if validate:
        validate_events(events)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        for event in events:
            handle.write(_encode(event) + "\n")
        handle.flush()
    return path


def read_events(path):
    """Parse a JSONL event log into a list of dicts.

    A torn trailing line (the signature of a killed writer) is skipped
    silently; a malformed line elsewhere raises, because the writers
    only ever append complete lines.
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if index == len(lines) - 1:
                break  # torn final line of a killed writer
            raise TelemetryError(
                f"corrupt telemetry log {path!r} at line {index + 1}: "
                f"{exc}"
            ) from exc
    return events


class EventSink:
    """A JSONL event writer bound to one file (append mode).

    The minimal streaming sink: ``emit`` validates and appends one
    line, flushed immediately so a kill loses at most the line being
    written.  Usable as a context manager.
    """

    def __init__(self, path, validate=True):
        self.path = str(path)
        self.validate = bool(validate)
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self.num_emitted = 0

    def emit(self, event):
        if self._handle is None:
            raise TelemetryError(
                f"event sink {self.path!r} is already closed"
            )
        if self.validate:
            validate_event(event)
        self._handle.write(_encode(event) + "\n")
        self._handle.flush()
        self.num_emitted += 1
        return event

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def __repr__(self):
        state = "closed" if self._handle is None else "open"
        return f"EventSink({self.path!r}, {state}, {self.num_emitted} events)"
