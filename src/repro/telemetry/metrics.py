"""Process-local metrics registry: named counters, gauges, histograms.

A :class:`MetricsRegistry` is the structured replacement for the ad-hoc
counter dicts that used to live on individual solvers
(``FactorizationCache.statistics()``-style shapes): every metric has a
name, one of three well-defined semantics, and a :meth:`MetricsRegistry.
merge` that mirrors :meth:`repro.uq.statistics.RunningStatistics.merge`,
so per-worker registries of a distributed campaign reduce without
revisiting any sample.

* **counter** -- monotonically accumulated float (``increment``); merge
  adds.
* **gauge** -- last-written value (``gauge``); merge takes the other
  registry's value when it has one (last writer wins across a merge
  chain).
* **histogram** -- streaming count/mean/variance/min/max over observed
  values (``observe``), implemented with the same Welford update and
  Chan parallel combination as :class:`~repro.uq.statistics.
  RunningStatistics`, so merging is order-robust and never revisits an
  observation.

The registry is deliberately plain-data: :meth:`as_dict` /
:meth:`from_dict` round-trip through JSON exactly (the Welford ``m2``
moment is preserved verbatim), which is how per-chunk metric deltas
travel from campaign workers back to the runner.
"""

import math

from ..errors import TelemetryError


class _Histogram:
    """Welford accumulator over scalar observations (see module doc)."""

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self, count=0, mean=0.0, m2=0.0,
                 minimum=math.inf, maximum=-math.inf):
        self.count = int(count)
        self.mean = float(mean)
        self.m2 = float(m2)
        self.minimum = float(minimum)
        self.maximum = float(maximum)

    def observe(self, value):
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other):
        """Chan parallel combination (RunningStatistics.merge's scalar
        twin)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * (other.count / total)
        self.m2 += other.m2 + delta * delta * (
            self.count * other.count / total
        )
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.count = total
        return self

    def std(self):
        if self.count < 2:
            return 0.0
        return math.sqrt(self.m2 / (self.count - 1))

    def as_dict(self):
        data = {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "total": self.mean * self.count,
            "std": self.std(),
        }
        if self.count:
            data["min"] = self.minimum
            data["max"] = self.maximum
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(
            count=data.get("count", 0),
            mean=data.get("mean", 0.0),
            m2=data.get("m2", 0.0),
            minimum=data.get("min", math.inf),
            maximum=data.get("max", -math.inf),
        )


class MetricsRegistry:
    """Named counters, gauges and histograms with a parallel ``merge``."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def increment(self, name, value=1):
        """Add ``value`` to the named counter (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + value
        return self._counters[name]

    def gauge(self, name, value):
        """Set the named gauge to ``value`` (last writer wins)."""
        self._gauges[name] = float(value)

    def observe(self, name, value):
        """Fold one observation into the named histogram."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = _Histogram()
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def counter_value(self, name, default=0):
        return self._counters.get(name, default)

    def gauge_value(self, name, default=None):
        return self._gauges.get(name, default)

    def histogram_stats(self, name):
        """The named histogram's stats dict, or ``None``."""
        histogram = self._histograms.get(name)
        return None if histogram is None else histogram.as_dict()

    def names(self):
        """Sorted names of every metric in the registry."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def __len__(self):
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    def clear(self):
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    # Merge / serialization
    # ------------------------------------------------------------------
    def merge(self, other):
        """Fold another registry (or its ``as_dict`` form) into this one.

        Counters add, gauges take the incoming value, histograms combine
        via the Chan/Welford parallel merge -- associative and
        independent of merge order up to float round-off, exactly like
        :meth:`repro.uq.statistics.RunningStatistics.merge`.  Returns
        ``self`` for chaining.
        """
        if isinstance(other, dict):
            other = MetricsRegistry.from_dict(other)
        if not isinstance(other, MetricsRegistry):
            raise TelemetryError(
                f"can only merge MetricsRegistry (or its dict form), got "
                f"{type(other).__name__}"
            )
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        self._gauges.update(other._gauges)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = _Histogram()
            mine.merge(histogram)
        return self

    def as_dict(self):
        """JSON-friendly snapshot (exact ``from_dict`` round trip)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in self._histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise TelemetryError(
                f"metrics dict expected, got {type(data).__name__}"
            )
        registry = cls()
        counters = data.get("counters", {})
        gauges = data.get("gauges", {})
        histograms = data.get("histograms", {})
        for section in (counters, gauges, histograms):
            if not isinstance(section, dict):
                raise TelemetryError(
                    "metrics sections must be dicts of name -> value"
                )
        registry._counters.update(counters)
        for name, value in gauges.items():
            registry._gauges[name] = float(value)
        for name, stats in histograms.items():
            registry._histograms[name] = _Histogram.from_dict(stats)
        return registry

    def __repr__(self):
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )
