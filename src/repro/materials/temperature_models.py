"""Scalar material property models as functions of temperature.

Each model maps an absolute temperature (kelvin, scalar or ``numpy`` array)
to a property value.  Models are immutable and vectorized: evaluating with an
array of temperatures returns an array of the same shape, which the FIT
assembly relies on when it evaluates conductivities for every cell at once.
"""

import numpy as np

from ..constants import T_REFERENCE
from ..errors import MaterialError


class PropertyModel:
    """Abstract base class of a scalar property as a function of temperature.

    Subclasses implement :meth:`__call__`.  The optional :meth:`derivative`
    returns the sensitivity d(property)/dT used by Newton-type couplings; the
    default implementation uses a central finite difference.
    """

    def __call__(self, temperature):
        raise NotImplementedError

    def derivative(self, temperature, step=1.0e-3):
        """Derivative with respect to temperature via central differences."""
        temperature = np.asarray(temperature, dtype=float)
        upper = self(temperature + step)
        lower = self(temperature - step)
        return (upper - lower) / (2.0 * step)

    def at_reference(self):
        """Property value at the 300 K reference temperature."""
        return self(T_REFERENCE)


class ConstantModel(PropertyModel):
    """Temperature-independent property: ``p(T) = value``."""

    def __init__(self, value):
        value = float(value)
        if not np.isfinite(value):
            raise MaterialError(f"constant property must be finite, got {value!r}")
        self.value = value

    def __call__(self, temperature):
        temperature = np.asarray(temperature, dtype=float)
        if temperature.ndim == 0:
            return self.value
        return np.full(temperature.shape, self.value)

    def derivative(self, temperature, step=1.0e-3):
        temperature = np.asarray(temperature, dtype=float)
        if temperature.ndim == 0:
            return 0.0
        return np.zeros(temperature.shape)

    def __repr__(self):
        return f"ConstantModel({self.value!r})"


class LinearModel(PropertyModel):
    """Linear-in-temperature property.

    ``p(T) = p0 * (1 + alpha * (T - T0))``, clipped at ``floor`` to keep the
    property physically positive outside the fitted range.
    """

    def __init__(self, value_at_reference, alpha, reference=T_REFERENCE, floor=0.0):
        self.value_at_reference = float(value_at_reference)
        self.alpha = float(alpha)
        self.reference = float(reference)
        self.floor = float(floor)
        if self.value_at_reference <= 0.0:
            raise MaterialError(
                "LinearModel reference value must be positive, "
                f"got {value_at_reference!r}"
            )

    def __call__(self, temperature):
        temperature = np.asarray(temperature, dtype=float)
        value = self.value_at_reference * (
            1.0 + self.alpha * (temperature - self.reference)
        )
        result = np.maximum(value, self.floor)
        if temperature.ndim == 0:
            return float(result)
        return result

    def __repr__(self):
        return (
            f"LinearModel({self.value_at_reference!r}, alpha={self.alpha!r}, "
            f"reference={self.reference!r})"
        )


class InverseLinearModel(PropertyModel):
    """Conductivity of a metal whose *resistivity* grows linearly with T.

    ``p(T) = p0 / (1 + alpha * (T - T0))``.  This is the standard model for
    the electrical conductivity of copper and the one through which the
    electrothermal feedback loop of the paper closes: hotter wire -> lower
    sigma -> (for voltage-driven wires) lower Joule power.
    """

    def __init__(self, value_at_reference, alpha, reference=T_REFERENCE):
        self.value_at_reference = float(value_at_reference)
        self.alpha = float(alpha)
        self.reference = float(reference)
        if self.value_at_reference <= 0.0:
            raise MaterialError(
                "InverseLinearModel reference value must be positive, "
                f"got {value_at_reference!r}"
            )
        if self.alpha < 0.0:
            raise MaterialError(
                f"InverseLinearModel alpha must be non-negative, got {alpha!r}"
            )

    def __call__(self, temperature):
        temperature = np.asarray(temperature, dtype=float)
        denominator = 1.0 + self.alpha * (temperature - self.reference)
        # Below T0 - 1/alpha the linear resistivity law extrapolates to a
        # non-physical non-positive resistivity; clamp the denominator.
        denominator = np.maximum(denominator, 1.0e-6)
        result = self.value_at_reference / denominator
        if temperature.ndim == 0:
            return float(result)
        return result

    def derivative(self, temperature, step=1.0e-3):
        temperature = np.asarray(temperature, dtype=float)
        denominator = 1.0 + self.alpha * (temperature - self.reference)
        denominator = np.maximum(denominator, 1.0e-6)
        result = -self.value_at_reference * self.alpha / denominator**2
        if temperature.ndim == 0:
            return float(result)
        return result

    def __repr__(self):
        return (
            f"InverseLinearModel({self.value_at_reference!r}, "
            f"alpha={self.alpha!r}, reference={self.reference!r})"
        )


class PolynomialModel(PropertyModel):
    """Polynomial in ``(T - T0)`` with coefficients in ascending order.

    ``p(T) = c0 + c1 (T - T0) + c2 (T - T0)^2 + ...``
    """

    def __init__(self, coefficients, reference=T_REFERENCE, floor=None):
        coefficients = [float(c) for c in coefficients]
        if not coefficients:
            raise MaterialError("PolynomialModel needs at least one coefficient")
        self.coefficients = tuple(coefficients)
        self.reference = float(reference)
        self.floor = None if floor is None else float(floor)

    def __call__(self, temperature):
        temperature = np.asarray(temperature, dtype=float)
        delta = temperature - self.reference
        result = np.zeros_like(delta)
        for power, coefficient in enumerate(self.coefficients):
            result = result + coefficient * delta**power
        if self.floor is not None:
            result = np.maximum(result, self.floor)
        if temperature.ndim == 0:
            return float(result)
        return result

    def __repr__(self):
        return (
            f"PolynomialModel({list(self.coefficients)!r}, "
            f"reference={self.reference!r})"
        )


class TabulatedModel(PropertyModel):
    """Piecewise-linear interpolation of tabulated (T, value) pairs.

    Values outside the tabulated range are clamped to the end points, which
    is the conservative choice for extrapolating measured material data.
    """

    def __init__(self, temperatures, values):
        temperatures = np.asarray(temperatures, dtype=float)
        values = np.asarray(values, dtype=float)
        if temperatures.ndim != 1 or values.ndim != 1:
            raise MaterialError("TabulatedModel expects 1D arrays")
        if temperatures.size != values.size:
            raise MaterialError(
                "TabulatedModel temperature and value arrays must have equal "
                f"length, got {temperatures.size} and {values.size}"
            )
        if temperatures.size < 2:
            raise MaterialError("TabulatedModel needs at least two points")
        if not np.all(np.diff(temperatures) > 0.0):
            raise MaterialError("TabulatedModel temperatures must be increasing")
        self.temperatures = temperatures
        self.values = values

    def __call__(self, temperature):
        temperature = np.asarray(temperature, dtype=float)
        result = np.interp(temperature, self.temperatures, self.values)
        if temperature.ndim == 0:
            return float(result)
        return result

    def __repr__(self):
        return (
            f"TabulatedModel({self.temperatures.tolist()!r}, "
            f"{self.values.tolist()!r})"
        )
