"""Library of ready-made materials.

The copper and epoxy resin entries reproduce Table I of the paper exactly at
300 K; their temperature dependence follows standard handbook models (linear
resistivity growth for metals, the Wiedemann-Franz-consistent mild decrease
of the thermal conductivity).  The remaining materials are provided for
wire-sizing studies (gold and aluminium are the other two common bonding
wire materials) and for alternative package stacks.
"""

from ..constants import (
    ALPHA_COPPER,
    LAMBDA_COPPER_300K,
    LAMBDA_EPOXY,
    SIGMA_COPPER_300K,
    SIGMA_EPOXY,
)
from ..errors import MaterialError
from .base import Material
from .temperature_models import ConstantModel, InverseLinearModel, LinearModel


def copper():
    """Copper: Table I values at 300 K with standard temperature laws.

    sigma(T) = 5.80e7 / (1 + 3.93e-3 (T - 300)) S/m,
    lambda(T) = 398 (1 - 1.0e-4 (T - 300)) W/K/m,
    rho*c = 8960 kg/m^3 * 385 J/kg/K = 3.45e6 J/K/m^3.
    """
    return Material(
        name="copper",
        electrical_conductivity=InverseLinearModel(SIGMA_COPPER_300K, ALPHA_COPPER),
        thermal_conductivity=LinearModel(
            LAMBDA_COPPER_300K, -1.0e-4, floor=100.0
        ),
        volumetric_heat_capacity=8960.0 * 385.0,
    )


def gold():
    """Gold bonding wire material (sigma 4.52e7 S/m, lambda 318 W/K/m)."""
    return Material(
        name="gold",
        electrical_conductivity=InverseLinearModel(4.52e7, 3.4e-3),
        thermal_conductivity=LinearModel(318.0, -6.0e-5, floor=100.0),
        volumetric_heat_capacity=19300.0 * 129.0,
    )


def aluminium():
    """Aluminium bonding wire material (sigma 3.77e7 S/m, lambda 237 W/K/m)."""
    return Material(
        name="aluminium",
        electrical_conductivity=InverseLinearModel(3.77e7, 3.9e-3),
        thermal_conductivity=LinearModel(237.0, -5.0e-5, floor=80.0),
        volumetric_heat_capacity=2700.0 * 897.0,
    )


def epoxy_resin():
    """Epoxy resin mold compound: Table I values, temperature independent."""
    return Material(
        name="epoxy_resin",
        electrical_conductivity=ConstantModel(SIGMA_EPOXY),
        thermal_conductivity=ConstantModel(LAMBDA_EPOXY),
        volumetric_heat_capacity=1200.0 * 1100.0,
        relative_permittivity=4.0,
    )


def silicon():
    """Intrinsic-ish silicon die material (weak electrical conduction)."""
    return Material(
        name="silicon",
        electrical_conductivity=ConstantModel(1.0e-3),
        thermal_conductivity=LinearModel(148.0, -2.0e-3, floor=30.0),
        volumetric_heat_capacity=2329.0 * 700.0,
        relative_permittivity=11.7,
    )


def fr4():
    """FR-4 laminate (insulating substrate)."""
    return Material(
        name="fr4",
        electrical_conductivity=ConstantModel(1.0e-9),
        thermal_conductivity=ConstantModel(0.3),
        volumetric_heat_capacity=1850.0 * 1100.0,
        relative_permittivity=4.4,
    )


def air():
    """Still air (used when a cavity package is modeled)."""
    return Material(
        name="air",
        electrical_conductivity=ConstantModel(1.0e-12),
        thermal_conductivity=ConstantModel(0.026),
        volumetric_heat_capacity=1.204 * 1005.0,
    )


#: Mapping of canonical names to factory functions.
MATERIAL_LIBRARY = {
    "copper": copper,
    "gold": gold,
    "aluminium": aluminium,
    "aluminum": aluminium,
    "epoxy_resin": epoxy_resin,
    "epoxy": epoxy_resin,
    "silicon": silicon,
    "fr4": fr4,
    "air": air,
}


def get_material(name):
    """Look up a material in the library by (case-insensitive) name."""
    key = str(name).strip().lower()
    if key not in MATERIAL_LIBRARY:
        known = ", ".join(sorted(set(MATERIAL_LIBRARY)))
        raise MaterialError(f"unknown material {name!r}; known materials: {known}")
    return MATERIAL_LIBRARY[key]()
