"""The :class:`Material` aggregate.

A material bundles the three properties the electrothermal problem needs:

* electrical conductivity ``sigma(T)`` [S/m],
* thermal conductivity ``lambda(T)`` [W/K/m],
* volumetric heat capacity ``rho*c`` [J/K/m^3] (temperature independent, as
  assumed in Section II of the paper).
"""

import numpy as np

from ..constants import T_REFERENCE
from ..errors import MaterialError
from .temperature_models import ConstantModel, PropertyModel


def _as_model(value, name):
    """Coerce ``value`` into a :class:`PropertyModel`."""
    if isinstance(value, PropertyModel):
        return value
    try:
        return ConstantModel(float(value))
    except (TypeError, ValueError) as exc:
        raise MaterialError(
            f"{name} must be a number or a PropertyModel, got {value!r}"
        ) from exc


class Material:
    """An isotropic material with temperature-dependent conductivities.

    Parameters
    ----------
    name:
        Human readable identifier, e.g. ``"copper"``.
    electrical_conductivity:
        ``sigma(T)`` in S/m; a number (constant) or a
        :class:`~repro.materials.temperature_models.PropertyModel`.
    thermal_conductivity:
        ``lambda(T)`` in W/K/m; a number or a model.
    volumetric_heat_capacity:
        ``rho*c`` in J/K/m^3; a number or a model.  The paper neglects its
        temperature dependence, but a model is accepted for generality.
    relative_permittivity:
        ``eps_r`` (dimensionless, default 1).  Only used by the
        electroquasistatic extension (Section II-A: "a generalization to
        electroquasistatics is straightforward"); the paper's stationary
        current model ignores it.
    """

    #: Vacuum permittivity [F/m].
    EPSILON_0 = 8.8541878128e-12

    def __init__(
        self,
        name,
        electrical_conductivity,
        thermal_conductivity,
        volumetric_heat_capacity,
        relative_permittivity=1.0,
    ):
        if not name or not isinstance(name, str):
            raise MaterialError(
                f"material name must be a non-empty string, got {name!r}"
            )
        self.name = name
        self._sigma = _as_model(electrical_conductivity, "electrical_conductivity")
        self._lambda = _as_model(thermal_conductivity, "thermal_conductivity")
        self._rhoc = _as_model(volumetric_heat_capacity, "volumetric_heat_capacity")
        relative_permittivity = float(relative_permittivity)
        if relative_permittivity < 1.0:
            raise MaterialError(
                f"relative permittivity of {name!r} must be >= 1, got "
                f"{relative_permittivity!r}"
            )
        self.relative_permittivity = relative_permittivity
        for label, model in (
            ("electrical conductivity", self._sigma),
            ("thermal conductivity", self._lambda),
            ("volumetric heat capacity", self._rhoc),
        ):
            value = model(T_REFERENCE)
            if not np.isfinite(value) or value < 0.0:
                raise MaterialError(
                    f"{label} of {name!r} evaluates to non-physical value "
                    f"{value!r} at {T_REFERENCE} K"
                )

    def electrical_conductivity(self, temperature=T_REFERENCE):
        """Electrical conductivity sigma(T) [S/m]."""
        return self._sigma(temperature)

    def thermal_conductivity(self, temperature=T_REFERENCE):
        """Thermal conductivity lambda(T) [W/K/m]."""
        return self._lambda(temperature)

    def volumetric_heat_capacity(self, temperature=T_REFERENCE):
        """Volumetric heat capacity rho*c [J/K/m^3]."""
        return self._rhoc(temperature)

    def permittivity(self):
        """Absolute permittivity ``eps_0 * eps_r`` [F/m]."""
        return self.EPSILON_0 * self.relative_permittivity

    def electrical_conductivity_derivative(self, temperature):
        """d(sigma)/dT [S/m/K]."""
        return self._sigma.derivative(temperature)

    def thermal_conductivity_derivative(self, temperature):
        """d(lambda)/dT [W/K^2/m]."""
        return self._lambda.derivative(temperature)

    def is_electrically_conducting(self, threshold=1.0):
        """``True`` if sigma at 300 K exceeds ``threshold`` (default 1 S/m)."""
        return self.electrical_conductivity(T_REFERENCE) > threshold

    def frozen(self, temperature=T_REFERENCE):
        """A copy of this material with all properties frozen at ``temperature``.

        Used by the "linear materials" ablation that switches the
        electrothermal feedback off.
        """
        return Material(
            name=f"{self.name}@{float(temperature):g}K",
            electrical_conductivity=float(self._sigma(temperature)),
            thermal_conductivity=float(self._lambda(temperature)),
            volumetric_heat_capacity=float(self._rhoc(temperature)),
            relative_permittivity=self.relative_permittivity,
        )

    def __repr__(self):
        return (
            f"Material({self.name!r}, sigma={self._sigma!r}, "
            f"lambda={self._lambda!r}, rhoc={self._rhoc!r}, "
            f"eps_r={self.relative_permittivity!r})"
        )

    def __eq__(self, other):
        if not isinstance(other, Material):
            return NotImplemented
        return repr(self) == repr(other)

    def __hash__(self):
        return hash(repr(self))
