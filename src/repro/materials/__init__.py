"""Temperature-dependent material models and a library of common materials.

The electrothermal coupling of the paper enters through the temperature
dependence of the electrical conductivity ``sigma(T)`` and the thermal
conductivity ``lambda(T)`` (Section II).  This package provides

* :mod:`repro.materials.temperature_models` -- small composable models for a
  scalar property as a function of temperature (constant, linear-in-T
  resistivity, polynomial, tabulated),
* :mod:`repro.materials.base` -- the :class:`Material` aggregate combining
  electrical conductivity, thermal conductivity and volumetric heat capacity,
* :mod:`repro.materials.library` -- ready-made materials matching Table I of
  the paper (copper, epoxy resin) plus common alternatives (gold, aluminium,
  silicon, FR-4, air).
"""

from .base import Material
from .library import (
    MATERIAL_LIBRARY,
    air,
    aluminium,
    copper,
    epoxy_resin,
    fr4,
    get_material,
    gold,
    silicon,
)
from .temperature_models import (
    ConstantModel,
    InverseLinearModel,
    LinearModel,
    PolynomialModel,
    PropertyModel,
    TabulatedModel,
)

__all__ = [
    "Material",
    "MATERIAL_LIBRARY",
    "get_material",
    "copper",
    "gold",
    "aluminium",
    "epoxy_resin",
    "silicon",
    "fr4",
    "air",
    "PropertyModel",
    "ConstantModel",
    "LinearModel",
    "InverseLinearModel",
    "PolynomialModel",
    "TabulatedModel",
]
