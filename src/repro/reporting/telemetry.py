"""Telemetry reports: per-chunk timings, worker utilization, traces.

Renders what an :class:`~repro.campaign.store.ArtifactStore`'s
``telemetry/`` layer recorded -- the ``repro-campaign report --timings``
and ``repro-campaign trace`` output.  All formatters accept the plain
``store.read_telemetry()`` dict so they work on any store, including one
produced on another machine, and degrade gracefully (a short notice)
when the store carries no telemetry at all.
"""

from .tables import format_table


def _seconds(value):
    return f"{float(value):.4g}"


def _chunk_records(telemetry):
    """The ``chunk`` summary event of every chunk file, chunk-ordered."""
    records = []
    for index in sorted(telemetry.get("chunks", {})):
        for event in telemetry["chunks"][index]:
            if event.get("event") == "chunk":
                records.append(event)
                break
    return records


def format_timings_report(telemetry, top=None):
    """Ranked per-chunk timing table plus straggler/utilization summary.

    ``telemetry`` is ``store.read_telemetry()``.  Chunks are ranked by
    wall time (slowest first, ``top`` limits the table); the summary
    lines quantify straggler spread (max/median wall), per-worker
    utilization (busy seconds and chunk counts) and -- when the solver
    stack emitted cache counters -- the factorization-cache hit rate.
    """
    records = _chunk_records(telemetry)
    if not records:
        return (
            "No telemetry recorded in this store (run with telemetry "
            "enabled to collect per-chunk timings)."
        )

    ranked = sorted(records, key=lambda r: -float(r.get("wall_s", 0.0)))
    if top is not None:
        ranked = ranked[: int(top)]
    rows = [
        (
            record["chunk"],
            record.get("samples", "-"),
            _seconds(record.get("wall_s", 0.0)),
            _seconds(record["queue_wait_s"])
            if "queue_wait_s" in record else "-",
            record.get("worker", "-"),
        )
        for record in ranked
    ]
    lines = [
        format_table(
            ("Chunk", "Samples", "Wall [s]", "Queue wait [s]", "Worker"),
            rows,
            title="Per-chunk timings (slowest first)",
        )
    ]

    walls = sorted(
        float(record.get("wall_s", 0.0)) for record in records
    )
    median = walls[len(walls) // 2]
    straggler = walls[-1] / median if median > 0 else float("inf")
    lines.append("")
    lines.append(
        f"Chunks: {len(records)}  total busy {_seconds(sum(walls))} s  "
        f"median {_seconds(median)} s  max {_seconds(walls[-1])} s  "
        f"straggler ratio {straggler:.2f}x"
    )

    workers = {}
    for record in records:
        worker = record.get("worker", "?")
        busy, count = workers.get(worker, (0.0, 0))
        workers[worker] = (
            busy + float(record.get("wall_s", 0.0)), count + 1
        )
    if workers:
        total_busy = sum(busy for busy, _ in workers.values()) or 1.0
        worker_rows = [
            (
                worker,
                count,
                _seconds(busy),
                f"{100.0 * busy / total_busy:.1f}%",
            )
            for worker, (busy, count) in sorted(
                workers.items(), key=lambda item: -item[1][0]
            )
        ]
        lines.append("")
        lines.append(
            format_table(
                ("Worker", "Chunks", "Busy [s]", "Share"),
                worker_rows,
                title="Worker utilization",
            )
        )

    cache_line = _cache_hit_rate_line(telemetry)
    if cache_line:
        lines.append("")
        lines.append(cache_line)
    blocked_line = _blocked_evaluation_line(telemetry)
    if blocked_line:
        lines.append("")
        lines.append(blocked_line)
    fault_line = _fault_tolerance_line(telemetry)
    if fault_line:
        lines.append("")
        lines.append(fault_line)
    return "\n".join(lines)


def _fault_tolerance_line(telemetry):
    """Retry/quarantine counters, or ``None`` on fail-fast campaigns.

    ``campaign.chunk_retries`` counts re-submissions of failed chunks
    in the most recent run; ``campaign.chunks_quarantined`` counts
    chunks that exhausted their retries and were excluded from the
    reduction.
    """
    metrics = telemetry.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if ("campaign.chunk_retries" not in counters
            and "campaign.chunks_quarantined" not in counters):
        return None
    retries = counters.get("campaign.chunk_retries", 0)
    quarantined = counters.get("campaign.chunks_quarantined", 0)
    return (
        f"Fault tolerance: {int(retries)} chunk retries, "
        f"{int(quarantined)} chunk(s) quarantined"
    )


def _cache_hit_rate_line(telemetry):
    """One-line cache hit rate from the merged metrics, or ``None``."""
    metrics = telemetry.get("metrics") or {}
    counters = metrics.get("counters") or {}
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    total = hits + misses
    if total <= 0:
        return None
    return (
        f"Factorization cache: {int(hits)} hits / {int(misses)} misses "
        f"({100.0 * hits / total:.1f}% hit rate)"
    )


def _blocked_evaluation_line(telemetry):
    """Blocked vs. per-sample fallback split, or ``None`` when untracked.

    ``campaign.blocked_solves`` counts samples that went through a
    model's sample-blocked ``evaluate_block`` fast path;
    ``campaign.loop_solves`` counts per-row fallback evaluations.  The
    ``campaign.batch_size`` gauge records the latest block size.
    """
    metrics = telemetry.get("metrics") or {}
    counters = metrics.get("counters") or {}
    blocked = counters.get("campaign.blocked_solves", 0)
    fallback = counters.get("campaign.loop_solves", 0)
    total = blocked + fallback
    if total <= 0:
        return None
    line = (
        f"Blocked evaluation: {int(blocked)} samples blocked / "
        f"{int(fallback)} per-sample fallback "
        f"({100.0 * blocked / total:.1f}% blocked)"
    )
    batch = (metrics.get("gauges") or {}).get("campaign.batch_size")
    if batch is not None:
        line += f", last batch size {int(batch)}"
    return line


def format_trace_summary(telemetry):
    """Event inventory plus span duration statistics for one store.

    The ``repro-campaign trace`` default view: how many events of each
    kind the store holds, then per-span-name duration statistics
    (count / total / mean / max) aggregated over every chunk file.
    """
    chunk_events = [
        event
        for index in sorted(telemetry.get("chunks", {}))
        for event in telemetry["chunks"][index]
    ]
    run_events = telemetry.get("run", [])
    all_events = run_events + chunk_events
    if not all_events:
        return "No telemetry recorded in this store."

    kinds = {}
    for event in all_events:
        kind = event.get("event", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
    lines = [
        format_table(
            ("Event", "Count"),
            sorted(kinds.items()),
            title="Event inventory",
        )
    ]

    spans = {}
    for event in chunk_events:
        if event.get("event") != "span":
            continue
        name = event.get("name", "?")
        count, total, longest = spans.get(name, (0, 0.0, 0.0))
        wall = float(event.get("wall_s", 0.0))
        spans[name] = (count + 1, total + wall, max(longest, wall))
    if spans:
        span_rows = [
            (
                name,
                count,
                _seconds(total),
                _seconds(total / count),
                _seconds(longest),
            )
            for name, (count, total, longest) in sorted(
                spans.items(), key=lambda item: -item[1][1]
            )
        ]
        lines.append("")
        lines.append(
            format_table(
                ("Span", "Count", "Total [s]", "Mean [s]", "Max [s]"),
                span_rows,
                title="Span durations",
            )
        )

    counters = (telemetry.get("metrics") or {}).get("counters") or {}
    if counters:
        lines.append("")
        lines.append(
            format_table(
                ("Counter", "Value"),
                [(name, int(counters[name])) for name in sorted(counters)],
                title="Campaign counters",
            )
        )
    return "\n".join(lines)
