"""Ranked Sobol-index tables (the ``repro-campaign sobol report`` output)."""

from .tables import format_table

#: Header rows of the sensitivity summary; keys match
#: :meth:`repro.campaign.sensitivity.SensitivityResult.summary`.
_HEADER_ROWS = (
    ("campaign", "Campaign"),
    ("problem", "Problem"),
    ("qoi", "Quantity of interest"),
    ("sampler", "Sampler"),
    ("num_base_samples", "Base samples M"),
    ("dimension", "Inputs d"),
    ("num_evaluations", "Evaluations M(d+2)"),
    ("num_chunks", "Checkpoint chunks"),
    ("output_size", "Output entries"),
    ("argmax_output", "Reported output (max variance)"),
    ("variance", "Output variance"),
)


def _format_value(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_sensitivity_summary(summary, title=None):
    """Header table plus the ranked per-input Sobol-index table.

    ``summary`` is the JSON dict persisted by a sensitivity campaign
    (``summary.json`` of the store).  Inputs are ranked by decreasing
    total index; bootstrap confidence bounds appear when the summary
    carries them, and first-order estimates that were clipped to their
    total index are marked with ``*``.
    """
    summary = dict(summary)
    header_rows = [
        (label, _format_value(summary[key]))
        for key, label in _HEADER_ROWS
        if key in summary
    ]
    header = format_table(
        ("Quantity", "Value"), header_rows,
        title=title or "Sensitivity campaign",
    )

    first = summary.get("first_order", [])
    total = summary.get("total", [])
    clipped = summary.get("clipped_first_order", [False] * len(first))
    ranking = summary.get("ranking", sorted(
        range(len(total)), key=lambda i: -total[i]
    ))
    has_interval = "total_lower" in summary

    columns = ["rank", "input", "S_i"]
    if has_interval:
        confidence = summary.get("confidence", 0.95)
        level = f"{100.0 * confidence:.0f}%"
        columns += [f"S_i {level} CI"]
    columns += ["S_T,i"]
    if has_interval:
        columns += [f"S_T,i {level} CI"]

    rows = []
    for rank, i in enumerate(ranking, start=1):
        first_text = f"{first[i]:.4f}" + ("*" if clipped[i] else "")
        row = [str(rank), f"x{i:02d}", first_text]
        if has_interval:
            row.append(
                f"[{summary['first_order_lower'][i]:.4f}, "
                f"{summary['first_order_upper'][i]:.4f}]"
            )
        row.append(f"{total[i]:.4f}")
        if has_interval:
            row.append(
                f"[{summary['total_lower'][i]:.4f}, "
                f"{summary['total_upper'][i]:.4f}]"
            )
        rows.append(row)

    ranked = format_table(
        columns, rows,
        title="Sobol indices (ranked by total index)",
    )
    footnotes = []
    if any(clipped):
        footnotes.append(
            "* first-order estimate exceeded its total index at finite M "
            "and was clipped"
        )
    if "bootstrap_replicates" in summary:
        footnotes.append(
            f"CIs: percentile bootstrap, "
            f"B={summary['bootstrap_replicates']} replicates"
        )
    text = header + "\n\n" + ranked
    if footnotes:
        text += "\n" + "\n".join(footnotes)
    return text
