"""Ranked Sobol-index tables (the ``repro-campaign report`` output for
sensitivity and PCE-surrogate campaigns)."""

from .tables import format_table

#: Header rows of the sensitivity summary; keys match
#: :meth:`repro.campaign.sensitivity.SensitivityResult.summary`.
_HEADER_ROWS = (
    ("campaign", "Campaign"),
    ("problem", "Problem"),
    ("qoi", "Quantity of interest"),
    ("sampler", "Sampler"),
    ("num_base_samples", "Base samples M"),
    ("dimension", "Inputs d"),
    ("num_evaluations", "Evaluations"),
    ("num_chunks", "Checkpoint chunks"),
    ("output_size", "Output entries"),
    ("argmax_output", "Reported output (max variance)"),
    ("variance", "Output variance"),
)


def _format_value(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _interval_column(summary, lower_key, upper_key, index):
    return (
        f"[{summary[lower_key][index]:.4f}, "
        f"{summary[upper_key][index]:.4f}]"
    )


def _first_order_table(summary, level):
    first = summary.get("first_order", [])
    total = summary.get("total", [])
    clipped = summary.get("clipped_first_order", [False] * len(first))
    ranking = summary.get("ranking", sorted(
        range(len(total)), key=lambda i: -total[i]
    ))
    has_interval = "total_lower" in summary

    columns = ["rank", "input", "S_i"]
    if has_interval:
        columns += [f"S_i {level} CI"]
    columns += ["S_T,i"]
    if has_interval:
        columns += [f"S_T,i {level} CI"]

    rows = []
    for rank, i in enumerate(ranking, start=1):
        first_text = f"{first[i]:.4f}" + ("*" if clipped[i] else "")
        row = [str(rank), f"x{i:02d}", first_text]
        if has_interval:
            row.append(_interval_column(
                summary, "first_order_lower", "first_order_upper", i
            ))
        row.append(f"{total[i]:.4f}")
        if has_interval:
            row.append(_interval_column(
                summary, "total_lower", "total_upper", i
            ))
        rows.append(row)
    return format_table(
        columns, rows,
        title="Sobol indices (ranked by total index)",
    ), any(clipped)


def _interaction_table(summary, level):
    """Ranked pair table: closed second-order and pure interaction."""
    pairs = summary["pairs"]
    closed = summary["closed_second_order"]
    interaction = summary["second_order"]
    ranking = summary.get("interaction_ranking", sorted(
        range(len(pairs)), key=lambda p: -interaction[p]
    ))
    has_interval = "second_order_lower" in summary

    columns = ["rank", "pair", "S^c_ij"]
    if has_interval:
        columns += [f"S^c_ij {level} CI"]
    columns += ["S_ij"]
    if has_interval:
        columns += [f"S_ij {level} CI"]

    rows = []
    for rank, p in enumerate(ranking, start=1):
        i, j = pairs[p]
        row = [str(rank), f"x{i:02d}*x{j:02d}", f"{closed[p]:.4f}"]
        if has_interval:
            row.append(_interval_column(
                summary, "closed_second_order_lower",
                "closed_second_order_upper", p,
            ))
        row.append(f"{interaction[p]:.4f}")
        if has_interval:
            row.append(_interval_column(
                summary, "second_order_lower", "second_order_upper", p
            ))
        rows.append(row)
    return format_table(
        columns, rows,
        title="Pair interactions (ranked by second-order index)",
    )


def _group_table(summary, level):
    """Ranked grouped-factor table: closed and total group indices."""
    groups = summary["groups"]
    closed = summary["group_closed"]
    total = summary["group_total"]
    ranking = summary.get("group_ranking", sorted(
        range(len(groups)), key=lambda g: -total[g]
    ))
    has_interval = "group_total_lower" in summary

    columns = ["rank", "group", "S^c_G"]
    if has_interval:
        columns += [f"S^c_G {level} CI"]
    columns += ["S_T,G"]
    if has_interval:
        columns += [f"S_T,G {level} CI"]

    rows = []
    for rank, g in enumerate(ranking, start=1):
        label = "{" + ",".join(f"x{i:02d}" for i in groups[g]) + "}"
        row = [str(rank), label, f"{closed[g]:.4f}"]
        if has_interval:
            row.append(_interval_column(
                summary, "group_closed_lower", "group_closed_upper", g
            ))
        row.append(f"{total[g]:.4f}")
        if has_interval:
            row.append(_interval_column(
                summary, "group_total_lower", "group_total_upper", g
            ))
        rows.append(row)
    return format_table(
        columns, rows,
        title="Factor groups (ranked by total group index)",
    )


def format_sensitivity_summary(summary, title=None):
    """Header table plus the ranked per-input Sobol-index table.

    ``summary`` is the JSON dict persisted by a sensitivity campaign
    (``summary.json`` of the store).  Inputs are ranked by decreasing
    total index; when the campaign carried second-order (``AB_ij``) or
    grouped-factor blocks, a ranked interaction table and a group table
    follow.  Bootstrap confidence bounds appear when the summary
    carries them, and first-order estimates that were clipped to their
    total index are marked with ``*``.
    """
    summary = dict(summary)
    header_rows = [
        (label, _format_value(summary[key]))
        for key, label in _HEADER_ROWS
        if key in summary
    ]
    if "pairs" in summary:
        header_rows.append(("Pair blocks AB_ij", str(len(summary["pairs"]))))
    if "groups" in summary:
        header_rows.append(("Group blocks", str(len(summary["groups"]))))
    header = format_table(
        ("Quantity", "Value"), header_rows,
        title=title or "Sensitivity campaign",
    )

    confidence = summary.get("confidence", 0.95)
    level = f"{100.0 * confidence:.0f}%"
    ranked, any_clipped = _first_order_table(summary, level)

    sections = [header, ranked]
    if "pairs" in summary:
        sections.append(_interaction_table(summary, level))
    if "groups" in summary:
        sections.append(_group_table(summary, level))

    footnotes = []
    if any_clipped:
        footnotes.append(
            "* first-order estimate exceeded its total index at finite M "
            "and was clipped"
        )
    if "bootstrap_replicates" in summary:
        footnotes.append(
            f"CIs: percentile bootstrap, "
            f"B={summary['bootstrap_replicates']} replicates"
        )
    text = "\n\n".join(sections)
    if footnotes:
        text += "\n" + "\n".join(footnotes)
    return text


#: Header rows of the PCE-surrogate summary; keys match
#: :meth:`repro.campaign.reducer.SurrogateResult.summary`.
_PCE_HEADER_ROWS = (
    ("campaign", "Campaign"),
    ("problem", "Problem"),
    ("qoi", "Quantity of interest"),
    ("sampler", "Sampler"),
    ("num_samples", "Samples M"),
    ("num_chunks", "Checkpoint chunks"),
    ("dimension", "Inputs d"),
    ("degree", "PCE total degree"),
    ("num_terms", "Basis terms"),
    ("basis", "Germ basis"),
    ("output_size", "Output entries"),
    ("argmax_output", "Reported output (max variance)"),
    ("variance", "Surrogate variance"),
    ("mean_max", "max E [K]"),
    ("std_max", "max sigma [K]"),
)


def format_pce_summary(summary, title=None):
    """Header table plus the surrogate's ranked analytic Sobol indices.

    ``summary`` is the JSON dict persisted by a PCE-reduced campaign
    (``summary.json`` of the store).  The indices are partial sums of
    squared surrogate coefficients -- analytic, no bootstrap -- so the
    table carries no confidence columns.
    """
    summary = dict(summary)
    header_rows = [
        (label, _format_value(summary[key]))
        for key, label in _PCE_HEADER_ROWS
        if key in summary
    ]
    header = format_table(
        ("Quantity", "Value"), header_rows,
        title=title or "PCE surrogate campaign",
    )
    first = summary.get("first_order", [])
    total = summary.get("total", [])
    ranking = summary.get("ranking", sorted(
        range(len(total)), key=lambda i: -total[i]
    ))
    rows = [
        [str(rank), f"x{i:02d}", f"{first[i]:.4f}", f"{total[i]:.4f}"]
        for rank, i in enumerate(ranking, start=1)
    ]
    ranked = format_table(
        ("rank", "input", "S_i", "S_T,i"), rows,
        title="Surrogate Sobol indices (ranked by total index)",
    )
    return header + "\n\n" + ranked
