"""Figure-data generators: the arrays behind Figs. 5, 7 and 8."""

import numpy as np

from ..errors import ReproError


def fig5_data(dataset=None, num_bins=6, num_pdf_points=200):
    """Data behind Fig. 5: elongation histogram plus fitted normal pdf.

    Returns a dict with ``bin_edges``, ``bin_density``, ``pdf_x``,
    ``pdf_y``, ``mu`` and ``sigma``.
    """
    from ..package3d.measurements import date16_xray_measurements

    if dataset is None:
        dataset = date16_xray_measurements()
    edges, density = dataset.elongation_histogram(num_bins=num_bins)
    fit = dataset.fit_elongation_distribution()
    x = np.linspace(0.0, 0.4, int(num_pdf_points))
    return {
        "bin_edges": edges,
        "bin_density": density,
        "pdf_x": x,
        "pdf_y": fit.pdf(x),
        "mu": fit.mu,
        "sigma": fit.sigma,
        "deltas": dataset.deltas(),
    }


def fig7_data(times, mean_trace, std_trace, num_samples, t_critical=523.0,
              band_multiple=6.0):
    """Data behind Fig. 7: E(t) of the hottest wire with the 6-sigma band.

    Also computes the scalar results quoted in Section V-D: sigma_MC at the
    end time, error_MC = sigma_MC / sqrt(M), and the first time the upper
    band crosses the critical temperature (None if never).
    """
    from ..bondwire.failure import first_crossing_time

    times = np.asarray(times, dtype=float)
    mean_trace = np.asarray(mean_trace, dtype=float)
    std_trace = np.asarray(std_trace, dtype=float)
    if not times.shape == mean_trace.shape == std_trace.shape:
        raise ReproError("times/mean/std must share a shape")
    upper = mean_trace + band_multiple * std_trace
    lower = mean_trace - band_multiple * std_trace
    sigma_end = float(std_trace[-1])
    return {
        "times": times,
        "mean": mean_trace,
        "upper": upper,
        "lower": lower,
        "sigma_mc": sigma_end,
        "error_mc": sigma_end / np.sqrt(int(num_samples)),
        "t_critical": float(t_critical),
        "band_crossing_time": first_crossing_time(times, upper, t_critical),
        "mean_crossing_time": first_crossing_time(times, mean_trace, t_critical),
    }


def field_slice(grid, node_values, axis="z", position=None):
    """Extract a 2D slice of a node field for Fig. 8-style heat maps.

    Returns ``(coords_a, coords_b, values_2d)`` where the 2D array is
    indexed ``[a, b]`` over the two remaining axes.
    """
    from ..grid.indexing import GridIndexing

    indexing = GridIndexing(grid)
    field = indexing.node_field_as_array(node_values)
    axes = {"x": 0, "y": 1, "z": 2}
    if axis not in axes:
        raise ReproError(f"axis must be x, y or z, got {axis!r}")
    coordinates = {"x": grid.x, "y": grid.y, "z": grid.z}[axis]
    if position is None:
        index = coordinates.size // 2
    else:
        index = int(np.argmin(np.abs(coordinates - float(position))))
    slicer = [slice(None)] * 3
    slicer[axes[axis]] = index
    values = field[tuple(slicer)]
    remaining = [name for name in ("x", "y", "z") if name != axis]
    coords = [getattr(grid, name) for name in remaining]
    return coords[0], coords[1], values


def fig8_data(grid, final_temperatures, z_position=None):
    """Data behind Fig. 8: the temperature field slice at the metal layer.

    Returns the slice plus hot-spot metadata (location and value).
    """
    grid_values = np.asarray(final_temperatures, dtype=float)[: grid.num_nodes]
    xs, ys, values = field_slice(grid, grid_values, axis="z",
                                 position=z_position)
    hot_flat = int(np.argmax(grid_values))
    from ..grid.indexing import GridIndexing

    indexing = GridIndexing(grid)
    i, j, k = indexing.node_ijk(hot_flat)
    return {
        "x": xs,
        "y": ys,
        "temperature": values,
        "t_max": float(np.max(grid_values)),
        "t_min": float(np.min(grid_values)),
        "hot_spot": (float(grid.x[i]), float(grid.y[j]), float(grid.z[k])),
    }


def ascii_heatmap(values, levels=" .:-=+*#%@"):
    """Render a 2D array as a coarse ASCII heat map (bench stdout)."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ReproError("heatmap expects a 2D array")
    lo = float(np.min(values))
    hi = float(np.max(values))
    span = hi - lo if hi > lo else 1.0
    normalized = (values - lo) / span
    indices = np.minimum(
        (normalized * len(levels)).astype(int), len(levels) - 1
    )
    rows = []
    # Transpose so x runs horizontally; flip so y increases upward.
    for row in indices.T[::-1]:
        rows.append("".join(levels[i] for i in row))
    return "\n".join(rows)
