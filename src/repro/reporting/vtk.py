"""Legacy-ASCII VTK export of node fields on tensor grids.

Writes `.vtk` RECTILINEAR_GRID files readable by ParaView/VisIt without
any third-party dependency -- the natural way to look at the Fig. 8
temperature field in 3D.
"""

import os

import numpy as np

from ..errors import ReproError


def write_rectilinear_vtk(path, grid, point_fields):
    """Write node fields to a legacy VTK rectilinear-grid file.

    Parameters
    ----------
    path:
        Output file path (parent directories are created).
    grid:
        The :class:`~repro.grid.tensor_grid.TensorGrid`.
    point_fields:
        Mapping ``name -> flat node array`` (our x-fastest ordering, which
        is exactly VTK's point ordering for rectilinear grids).

    Returns
    -------
    The written path.
    """
    if not point_fields:
        raise ReproError("need at least one point field to export")
    arrays = {}
    for name, values in point_fields.items():
        values = np.asarray(values, dtype=float).ravel()
        if values.size != grid.num_nodes:
            raise ReproError(
                f"field {name!r} has {values.size} values, grid has "
                f"{grid.num_nodes} nodes"
            )
        if not np.all(np.isfinite(values)):
            raise ReproError(f"field {name!r} contains non-finite values")
        arrays[str(name)] = values

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    nx, ny, nz = grid.shape
    with open(path, "w", encoding="ascii") as handle:
        handle.write("# vtk DataFile Version 3.0\n")
        handle.write("repro electrothermal field export\n")
        handle.write("ASCII\n")
        handle.write("DATASET RECTILINEAR_GRID\n")
        handle.write(f"DIMENSIONS {nx} {ny} {nz}\n")
        for label, coords in (
            ("X_COORDINATES", grid.x),
            ("Y_COORDINATES", grid.y),
            ("Z_COORDINATES", grid.z),
        ):
            handle.write(f"{label} {coords.size} double\n")
            handle.write(" ".join(f"{v:.12g}" for v in coords) + "\n")
        handle.write(f"POINT_DATA {grid.num_nodes}\n")
        for name, values in arrays.items():
            safe = name.replace(" ", "_")
            handle.write(f"SCALARS {safe} double 1\n")
            handle.write("LOOKUP_TABLE default\n")
            for start in range(0, values.size, 9):
                chunk = values[start:start + 9]
                handle.write(" ".join(f"{v:.9g}" for v in chunk) + "\n")
    return path


def read_rectilinear_vtk_header(path):
    """Parse dimensions back from a written file (round-trip checking)."""
    with open(path, encoding="ascii") as handle:
        for line in handle:
            if line.startswith("DIMENSIONS"):
                parts = line.split()
                return int(parts[1]), int(parts[2]), int(parts[3])
    raise ReproError(f"no DIMENSIONS line found in {path!r}")
