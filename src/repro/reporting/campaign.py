"""Campaign summary tables (the ``repro-campaign report`` output)."""

from .tables import format_table

#: Row order and labels of the summary table; keys match
#: :meth:`repro.campaign.runner.CampaignResult.summary`.
_SUMMARY_ROWS = (
    ("campaign", "Campaign"),
    ("problem", "Problem"),
    ("qoi", "Quantity of interest"),
    ("num_samples", "Samples M"),
    ("num_chunks", "Checkpoint chunks"),
    ("output_size", "Output entries"),
    ("mean_max", "max E [K]"),
    ("mean_min", "min E [K]"),
    ("std_max", "max sigma_MC [K]"),
    ("error_mc_max", "max sigma_MC/sqrt(M) [K]"),
    ("argmax_output", "Hottest output index"),
    ("num_quarantined_chunks", "Quarantined chunks"),
    ("num_quarantined_samples", "Quarantined samples"),
)


def _format_value(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_campaign_summary(summary, title=None):
    """ASCII table of one campaign summary dict.

    Unknown keys are appended verbatim after the well-known rows, so
    problem-specific summaries still report everything they carry.
    """
    summary = dict(summary)
    rows = []
    for key, label in _SUMMARY_ROWS:
        if key in summary:
            rows.append((label, _format_value(summary.pop(key))))
    for key in sorted(summary):
        rows.append((key, _format_value(summary[key])))
    if title is None:
        title = "Campaign summary"
    return format_table(("Quantity", "Value"), rows, title=title)


#: Extra rows a partial (in-progress / killed) summary carries on top
#: of the well-known scalars; keys match
#: :func:`repro.service.status.partial_summary`.
_PARTIAL_ROWS = (
    ("chunks_completed", "Chunks completed"),
    ("chunks_folded", "Chunks folded (frontier)"),
    ("rate_chunks_per_s", "Chunk rate [1/s]"),
)


def format_partial_summary(summary, title=None):
    """ASCII table of a partial campaign summary.

    The ``report --partial`` rendering: same table as
    :func:`format_campaign_summary` (the synthesized summary reuses the
    well-known keys, so mean/std rows land in their usual places) plus
    the progress rows, under a title that cannot be mistaken for a
    completed campaign.
    """
    summary = dict(summary)
    summary.pop("partial", None)
    rows = []
    for key, label in _SUMMARY_ROWS + _PARTIAL_ROWS:
        if key in summary:
            rows.append((label, _format_value(summary.pop(key))))
    for key in sorted(summary):
        rows.append((key, _format_value(summary[key])))
    if title is None:
        title = "Campaign summary (PARTIAL -- in progress)"
    return format_table(("Quantity", "Value"), rows, title=title)


#: Row order and labels of the adaptive-stepping table; keys match
#: :meth:`repro.solvers.adaptive.AdaptiveStepResult.statistics` merged
#: with :meth:`repro.coupled.electrothermal.CoupledSolver
#: .solver_statistics`.
_ADAPTIVE_ROWS = (
    ("accepted", "Accepted steps"),
    ("rejected", "Rejected steps"),
    ("num_solves", "Coupled solves"),
    ("num_distinct_solver_dts", "Distinct solver dt"),
    ("dt_min", "min dt [s]"),
    ("dt_max", "max dt [s]"),
    ("num_min_dt_violations", "min_dt violations"),
    ("thermal_solver_builds", "Thermal solver builds"),
    ("thermal_solvers_cached", "Thermal solvers cached"),
    ("factorization_cache_entries", "LU cache entries"),
    ("factorization_cache_hits", "LU cache hits"),
    ("factorization_cache_misses", "LU cache misses"),
)


def format_adaptive_summary(result, title=None):
    """ASCII cost table of one adaptive integration.

    ``result`` is an :class:`~repro.solvers.adaptive.AdaptiveStepResult`
    (with ``solver_stats`` attached by the study, when available) or an
    already-built statistics dict.  The table is what makes the dt
    quantization visible: the factorization count (thermal solver
    builds / LU cache misses) stays at the ladder-rung count instead of
    growing with the solve count.
    """
    stats = dict(result) if isinstance(result, dict) else result.statistics()
    rows = []
    for key, label in _ADAPTIVE_ROWS:
        if key in stats:
            rows.append((label, _format_value(stats.pop(key))))
    for key in sorted(stats):
        rows.append((key, _format_value(stats[key])))
    return format_table(
        ("Quantity", "Value"), rows, title=title or "Adaptive stepping"
    )


def format_campaign_comparison(summaries, title=None):
    """Side-by-side table of several campaign summaries.

    ``summaries`` is an iterable of summary dicts (e.g. a worker-count
    scaling sweep); columns are campaigns, rows the well-known scalars.
    """
    summaries = [dict(s) for s in summaries]
    if not summaries:
        raise ValueError("need at least one summary to compare")
    headers = ["Quantity"] + [
        str(s.get("campaign", f"run {i}")) for i, s in enumerate(summaries)
    ]
    rows = []
    for key, label in _SUMMARY_ROWS:
        if key == "campaign" or not any(key in s for s in summaries):
            continue
        rows.append(
            [label] + [
                _format_value(s[key]) if key in s else "-"
                for s in summaries
            ]
        )
    return format_table(
        headers, rows, title=title or "Campaign comparison"
    )
