"""Plain-text table formatting for benchmark output."""

from ..constants import T_REFERENCE


def format_table(headers, rows, title=None):
    """Fixed-width ASCII table from header strings and row tuples."""
    headers = [str(h) for h in headers]
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_table1(materials_by_region=None):
    """Regenerate Table I: material properties at 300 K.

    ``materials_by_region`` maps region name -> Material; defaults to the
    paper's assignment (epoxy compound, copper everywhere else).
    """
    from ..materials.library import copper, epoxy_resin

    if materials_by_region is None:
        materials_by_region = {
            "Compound": epoxy_resin(),
            "Contact pad": copper(),
            "Chip": copper(),
            "Bonding wire": copper(),
        }
    rows = []
    for region, material in materials_by_region.items():
        rows.append(
            (
                region,
                material.name.replace("_", " "),
                f"{material.thermal_conductivity(T_REFERENCE):.4g}",
                f"{material.electrical_conductivity(T_REFERENCE):.3e}",
            )
        )
    return format_table(
        ["Region", "Material", "lambda [W/K/m]", "sigma [S/m]"],
        rows,
        title=f"TABLE I: MATERIAL PROPERTIES @ T = {T_REFERENCE:g} K",
    )


def format_table2(parameters=None):
    """Regenerate Table II: simulation parameters."""
    from ..package3d.chip_example import Date16Parameters, date16_layout
    import numpy as np

    p = parameters if parameters is not None else Date16Parameters()
    rows = list(p.as_table())
    layout = date16_layout(p)
    directs = layout.all_direct_distances()
    mean_length = float(
        np.mean(directs / (1.0 - p.elongation_mean))
    )
    rows.insert(5, ("Average wires' length L", f"{mean_length * 1e3:.3g} mm"))
    return format_table(
        ["Parameter", "Value"],
        rows,
        title="TABLE II: SIMULATION PARAMETERS",
    )
