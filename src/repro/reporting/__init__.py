"""Reporting: ASCII tables, CSV series export, figure-data generators.

The benchmark harness regenerates every table and figure of the paper as
text/CSV artifacts; this package holds the shared formatting code.
"""

from .campaign import (
    format_adaptive_summary,
    format_campaign_comparison,
    format_campaign_summary,
)
from .figures import field_slice, fig5_data, fig7_data, fig8_data
from .sensitivity import format_pce_summary, format_sensitivity_summary
from .series import write_csv, write_series
from .tables import format_table, format_table1, format_table2
from .telemetry import format_timings_report, format_trace_summary
from .vtk import write_rectilinear_vtk

__all__ = [
    "format_adaptive_summary",
    "format_campaign_summary",
    "format_campaign_comparison",
    "format_sensitivity_summary",
    "format_pce_summary",
    "format_table",
    "format_table1",
    "format_table2",
    "format_timings_report",
    "format_trace_summary",
    "write_csv",
    "write_series",
    "fig5_data",
    "fig7_data",
    "fig8_data",
    "field_slice",
    "write_rectilinear_vtk",
]
