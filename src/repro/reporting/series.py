"""CSV/series export helpers."""

import os

import numpy as np

from ..errors import ReproError


def write_csv(path, headers, columns):
    """Write named columns to a CSV file; returns the path.

    Creates parent directories as needed.  All columns must share a
    length.
    """
    columns = [np.asarray(column).ravel() for column in columns]
    if len(headers) != len(columns):
        raise ReproError(
            f"{len(headers)} headers for {len(columns)} columns"
        )
    lengths = {column.size for column in columns}
    if len(lengths) > 1:
        raise ReproError(f"columns have mixed lengths: {sorted(lengths)}")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(",".join(str(h) for h in headers) + "\n")
        for row in zip(*columns):
            handle.write(",".join(f"{value:.10g}" for value in row) + "\n")
    return path


def write_series(path, times, values, value_name="value"):
    """Write a single (t, value) series to CSV."""
    return write_csv(path, ["time_s", value_name], [times, values])


def format_series(times, values, max_rows=12, time_name="t [s]",
                  value_name="value"):
    """Compact textual preview of a time series (for bench stdout)."""
    times = np.asarray(times, dtype=float).ravel()
    values = np.asarray(values, dtype=float).ravel()
    if times.size != values.size:
        raise ReproError("times and values must have the same length")
    if times.size <= max_rows:
        indices = np.arange(times.size)
    else:
        indices = np.unique(
            np.linspace(0, times.size - 1, max_rows).astype(int)
        )
    lines = [f"{time_name:>10}  {value_name}"]
    for index in indices:
        lines.append(f"{times[index]:>10.3f}  {values[index]:.4f}")
    return "\n".join(lines)
