"""The DATE'16 application example, assembled end to end (Sections IV-V).

``build_date16_problem`` returns a ready-to-solve
:class:`~repro.coupled.problem.ElectrothermalProblem` configured with

* the 28-pad / 12-wire package layout (Section V-A dimensions: pad width
  0.311 mm, 24 pads of 1.01 mm, 4 long pads of 1.261 mm, copper
  everywhere conducting, epoxy mold),
* Table II parameters: V_bw = 40 mV over each wire pair, wire diameter
  25.4 um, ambient 300 K, h = 25 W/m^2/K, emissivity 0.2475,
* PEC Dirichlet contacts at +-20 mV on the outer pad ends,
* convection + radiation on all boundaries.

The body height and pad/chip thicknesses are not stated in the paper; the
values chosen here are typical for such packages and recorded in
EXPERIMENTS.md together with their effect on absolute temperatures.
"""

import numpy as np

from ..bondwire.geometry import length_from_elongation
from ..bondwire.lumped import LumpedBondWire
from ..constants import (
    EMISSIVITY_DEFAULT,
    HEAT_TRANSFER_COEFFICIENT_DEFAULT,
    T_AMBIENT_DEFAULT,
    T_CRITICAL_DEFAULT,
)
from ..coupled.problem import ElectrothermalProblem
from ..errors import PackageLayoutError
from ..fit.boundary import ConvectionBC, DirichletBC, RadiationBC
from ..materials.library import copper
from .layout import ChipDie, ContactPad, PackageLayout, WireAttachment
from .meshing import build_package_mesh

MM = 1.0e-3
UM = 1.0e-6


class Date16Parameters:
    """Table II of the paper plus the geometry constants of Section V-A.

    Instances are plain parameter records; ``build_date16_problem``
    consumes one.  Defaults reproduce the paper exactly where stated.
    """

    def __init__(
        self,
        pair_voltage=0.040,
        end_time=50.0,
        num_time_points=51,
        num_mc_samples=1000,
        wire_diameter=25.4 * UM,
        t_ambient=T_AMBIENT_DEFAULT,
        heat_transfer_coefficient=HEAT_TRANSFER_COEFFICIENT_DEFAULT,
        emissivity=EMISSIVITY_DEFAULT,
        t_critical=T_CRITICAL_DEFAULT,
        elongation_mean=0.17,
        elongation_std=0.048,
        # --- geometry not stated in the paper (recorded assumptions) ---
        body_side=5.4 * MM,
        body_height=0.8 * MM,
        pad_width=0.311 * MM,
        pad_length=1.01 * MM,
        pad_length_long=1.261 * MM,
        pad_thickness=0.05 * MM,
        pad_pitch=0.5 * MM,
        pads_per_side=7,
        chip_size=0.8 * MM,
        chip_thickness=0.1 * MM,
        metal_z_bottom=0.25 * MM,
    ):
        self.pair_voltage = float(pair_voltage)
        self.end_time = float(end_time)
        self.num_time_points = int(num_time_points)
        self.num_mc_samples = int(num_mc_samples)
        self.wire_diameter = float(wire_diameter)
        self.t_ambient = float(t_ambient)
        self.heat_transfer_coefficient = float(heat_transfer_coefficient)
        self.emissivity = float(emissivity)
        self.t_critical = float(t_critical)
        self.elongation_mean = float(elongation_mean)
        self.elongation_std = float(elongation_std)
        self.body_side = float(body_side)
        self.body_height = float(body_height)
        self.pad_width = float(pad_width)
        self.pad_length = float(pad_length)
        self.pad_length_long = float(pad_length_long)
        self.pad_thickness = float(pad_thickness)
        self.pad_pitch = float(pad_pitch)
        self.pads_per_side = int(pads_per_side)
        self.chip_size = float(chip_size)
        self.chip_thickness = float(chip_thickness)
        self.metal_z_bottom = float(metal_z_bottom)

    @property
    def contact_voltage(self):
        """Per-contact PEC potential: +-V_bw / 2 (Section V-B)."""
        return 0.5 * self.pair_voltage

    def as_table(self):
        """(parameter, value) rows mirroring Table II of the paper."""
        return [
            ("Bonding wire voltage Vbw", f"{self.pair_voltage * 1e3:g} mV"),
            ("End time", f"{self.end_time:g} s"),
            ("No. of time steps", f"{self.num_time_points}"),
            ("No. of MC samples", f"{self.num_mc_samples}"),
            ("Wires' diameter", f"{self.wire_diameter * 1e6:g} um"),
            ("Ambient temperature", f"{self.t_ambient:g} K"),
            (
                "Heat transfer coefficient",
                f"{self.heat_transfer_coefficient:g} W/m^2/K",
            ),
            ("Emissivity", f"{self.emissivity:g}"),
        ]


#: Wires sit on pads 1, 3 and 5 of every side (pad 3 is the long one).
WIRE_PAD_SLOTS = (1, 3, 5)


def date16_layout(parameters=None):
    """The 28-pad / 12-wire package layout of the paper's example."""
    p = parameters if parameters is not None else Date16Parameters()
    if p.pads_per_side * 4 != 28:
        # The paper's chip has exactly 28 contacts; other counts are
        # allowed for parameter studies but flagged for the default.
        pass
    center = 0.5 * p.body_side
    span_start = center - 0.5 * (p.pads_per_side - 1) * p.pad_pitch
    pads = []
    for side in ("x-", "x+", "y-", "y+"):
        for slot in range(p.pads_per_side):
            is_long = slot == p.pads_per_side // 2
            pads.append(
                ContactPad(
                    side=side,
                    lateral_center=span_start + slot * p.pad_pitch,
                    width=p.pad_width,
                    length=p.pad_length_long if is_long else p.pad_length,
                    thickness=p.pad_thickness,
                    z_bottom=p.metal_z_bottom,
                    name=f"pad-{side}-{slot}",
                )
            )
    chip = ChipDie(
        center_x=center,
        center_y=center,
        size_x=p.chip_size,
        size_y=p.chip_size,
        thickness=p.chip_thickness,
        z_bottom=p.metal_z_bottom,
    )
    wires = []
    wire_index = 0
    for side_index, side in enumerate(("x-", "x+", "y-", "y+")):
        for slot in WIRE_PAD_SLOTS:
            pad_index = side_index * p.pads_per_side + slot
            polarity = +1 if wire_index % 2 == 0 else -1
            wires.append(
                WireAttachment(
                    pad_index=pad_index,
                    polarity=polarity,
                    name=f"wire{wire_index:02d}",
                )
            )
            wire_index += 1
    return PackageLayout(
        body_x=p.body_side,
        body_y=p.body_side,
        height=p.body_height,
        pads=pads,
        chip=chip,
        wires=wires,
    )


def wire_lengths_from_deltas(deltas, layout=None):
    """Map relative elongations to wire lengths via ``L = d / (1 - delta)``.

    This is the Monte Carlo input mapping: sampled deltas plus the layout's
    direct distances give the per-sample wire lengths.
    """
    if layout is None:
        layout = date16_layout()
    deltas = np.asarray(deltas, dtype=float).ravel()
    directs = layout.all_direct_distances()
    if deltas.size != directs.size:
        raise PackageLayoutError(
            f"expected {directs.size} deltas, got {deltas.size}"
        )
    return np.asarray(
        [
            length_from_elongation(d, delta)
            for d, delta in zip(directs, deltas)
        ]
    )


def build_date16_problem(
    parameters=None,
    resolution="default",
    wire_lengths=None,
    wire_deltas=None,
    num_segments=1,
    mold_material=None,
    conductor_material=None,
    mesh=None,
):
    """Assemble the paper's coupled problem.

    Parameters
    ----------
    parameters:
        A :class:`Date16Parameters` record (defaults to Table II).
    resolution:
        Mesh preset or ``(lateral, vertical)`` spacing tuple.
    wire_lengths:
        Explicit wire lengths [m]; default: nominal lengths from the mean
        elongation (``delta = 0.17`` for every wire).
    wire_deltas:
        Alternative to ``wire_lengths``: per-wire relative elongations.
    num_segments:
        Lumped elements per wire (1 = the paper's model).
    mesh:
        Optional pre-built :class:`~repro.package3d.meshing.PackageMesh`
        to reuse across Monte Carlo samples (grid and materials are
        sample-independent).

    Returns
    -------
    (problem, mesh):
        The :class:`~repro.coupled.problem.ElectrothermalProblem` and the
        mesh it lives on (pass the mesh back in for the next sample).
    """
    p = parameters if parameters is not None else Date16Parameters()
    layout = mesh.layout if mesh is not None else date16_layout(p)
    if mesh is None:
        mesh = build_package_mesh(
            layout,
            resolution=resolution,
            mold_material=mold_material,
            conductor_material=conductor_material,
        )

    if wire_lengths is not None and wire_deltas is not None:
        raise PackageLayoutError(
            "pass either wire_lengths or wire_deltas, not both"
        )
    if wire_deltas is not None:
        wire_lengths = wire_lengths_from_deltas(wire_deltas, layout)
    if wire_lengths is None:
        wire_lengths = wire_lengths_from_deltas(
            np.full(layout.num_wires, p.elongation_mean), layout
        )
    wire_lengths = np.asarray(wire_lengths, dtype=float).ravel()
    if wire_lengths.size != layout.num_wires:
        raise PackageLayoutError(
            f"expected {layout.num_wires} wire lengths, got {wire_lengths.size}"
        )

    wire_material = (
        conductor_material if conductor_material is not None else copper()
    )
    wires = []
    for index, (attachment, (pad_node, chip_node)) in enumerate(
        zip(layout.wires, mesh.wire_nodes)
    ):
        wires.append(
            LumpedBondWire(
                start_node=pad_node,
                end_node=chip_node,
                material=wire_material,
                diameter=p.wire_diameter,
                length=wire_lengths[index],
                num_segments=num_segments,
                name=attachment.name,
            )
        )

    dirichlet = []
    for attachment in layout.wires:
        nodes = mesh.pad_contact_nodes[attachment.pad_index]
        dirichlet.append(
            DirichletBC(
                nodes,
                attachment.polarity * p.contact_voltage,
                label=f"PEC-{attachment.name}",
            )
        )

    convection = ConvectionBC(p.heat_transfer_coefficient, p.t_ambient)
    radiation = RadiationBC(p.emissivity, p.t_ambient)

    problem = ElectrothermalProblem(
        grid=mesh.grid,
        materials=mesh.materials,
        wires=wires,
        electrical_dirichlet=dirichlet,
        convection=convection,
        radiation=radiation,
        t_initial=p.t_ambient,
        name="date16-package",
    )
    return problem, mesh
