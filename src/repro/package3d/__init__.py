"""The chip package model of the paper's application example (Section IV-A).

* :mod:`repro.package3d.layout` -- parametric QFP-like package layout: 28
  contact pads around the perimeter, a central chip, epoxy mold compound,
* :mod:`repro.package3d.measurements` -- the (synthetic, statistics-matched)
  X-ray measurement dataset of the 12 bonding wires,
* :mod:`repro.package3d.meshing` -- layout -> snapped tensor grid with cell
  material assignment (the paper's Fig. 6 mesh),
* :mod:`repro.package3d.chip_example` -- the full DATE'16 study assembly:
  Table I materials, Table II parameters, PEC contacts, 12 wires,
* :mod:`repro.package3d.scenarios` -- campaign registry entries (the
  ``"date16"`` problem builder and its QoIs) plus spec factories.
"""

from .chip_example import (
    Date16Parameters,
    build_date16_problem,
    date16_layout,
    wire_lengths_from_deltas,
)
from .layout import ChipDie, ContactPad, PackageLayout, WireAttachment
from .measurements import (
    MeasurementDataset,
    WireMeasurement,
    date16_xray_measurements,
)
from .meshing import PackageMesh, build_package_mesh
from .uq_study import Date16StudyResult, Date16UncertaintyStudy
from .scenarios import date16_campaign_spec, date16_elongation_distribution

__all__ = [
    "date16_campaign_spec",
    "date16_elongation_distribution",
    "PackageLayout",
    "ContactPad",
    "ChipDie",
    "WireAttachment",
    "MeasurementDataset",
    "WireMeasurement",
    "date16_xray_measurements",
    "PackageMesh",
    "build_package_mesh",
    "Date16Parameters",
    "date16_layout",
    "build_date16_problem",
    "wire_lengths_from_deltas",
    "Date16UncertaintyStudy",
    "Date16StudyResult",
]
