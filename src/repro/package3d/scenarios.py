"""Campaign registry entries for the DATE'16 package example.

Importing this module registers the ``"date16"`` problem builder and its
quantities of interest with :mod:`repro.campaign.registry` (the campaign
registry imports it lazily, so spec resolution works in freshly spawned
worker processes too).

The builder constructs one
:class:`~repro.package3d.uq_study.Date16UncertaintyStudy` per call --
i.e. once per worker process -- with the fast coupled solver, so the
mesh, the Dirichlet reduction and both Woodbury base factorizations are
paid once and every sample is pure solve cost.  The per-process shared
:func:`~repro.solvers.cache.shared_cache` additionally lets any rebuild
in the same worker (resume, second time-step size) reuse the LUs.
"""

import inspect

from ..campaign.registry import (
    _qoi_final,
    _qoi_identity,
    _qoi_max,
    register_problem,
    register_qoi,
)
from ..errors import CampaignError
from ..solvers.cache import shared_cache
from .chip_example import Date16Parameters
from .uq_study import Date16UncertaintyStudy

#: Builder options understood by :func:`build_date16_model` beyond the
#: :class:`Date16Parameters` overrides nested under ``"parameters"``.
#: ``time_stepping: "adaptive"`` switches the transient to step-doubling
#: implicit Euler (``adaptive_tolerance`` kelvin of local error per
#: step), interpolated back onto the paper's fixed 51-point grid;
#: ``quantize_dt`` (default true) snaps the controller onto the
#: geometric dt ladder so per-dt factorizations amortize, and the nested
#: ``adaptive_options`` dict forwards the remaining controller knobs
#: (``initial_dt``, ``min_dt``, ``max_dt``, ``safety``,
#: ``accept_min_dt_steps``).
#: ``array_backend`` names the :mod:`repro.backends` substrate the
#: worker's blocked solvers run on (default ``numpy``); it is part of
#: the serialized scenario, so a resumed campaign is pinned to the
#: backend that produced its checkpoints.
_STUDY_OPTIONS = (
    "resolution", "mode", "num_segments", "truncate_elongation", "tolerance",
    "time_stepping", "adaptive_tolerance", "quantize_dt", "adaptive_options",
    "array_backend",
)


def build_date16_model(scenario):
    """``ScenarioSpec -> model`` for the paper's package problem.

    Recognized ``scenario.options``: ``resolution`` (default
    ``"coarse"``), ``mode`` (default ``"fast"``), ``num_segments``,
    ``truncate_elongation``, ``tolerance`` and a nested ``parameters``
    dict of :class:`~repro.package3d.chip_example.Date16Parameters`
    overrides (e.g. ``{"pair_voltage": 0.05}``).
    """
    options = dict(scenario.options)
    overrides = options.pop("parameters", None) or {}
    unknown = set(options) - set(_STUDY_OPTIONS)
    if unknown:
        raise CampaignError(
            f"date16 scenario got unknown options {sorted(unknown)}; "
            f"expected {sorted(_STUDY_OPTIONS)} or 'parameters'"
        )
    try:
        parameters = Date16Parameters(**overrides)
    except TypeError as exc:
        raise CampaignError(
            f"invalid date16 parameter overrides {sorted(overrides)}: {exc}"
        ) from exc
    options.setdefault("resolution", "coarse")
    options.setdefault("mode", "fast")
    options.setdefault("tolerance", 1.0e-3)
    study = Date16UncertaintyStudy(
        parameters=parameters,
        waveform=scenario.build_waveform(),
        factorization_cache=shared_cache(),
        **options,
    )
    # The blocked model evaluates a whole campaign chunk as one blocked
    # transient when the study supports it (fixed stepping, fast mode,
    # single-segment wires); otherwise the plain per-sample callable
    # keeps the executor on the row loop.
    return study.block_model()


register_problem("date16", build_date16_model)
# Aliases onto the generic extractors (one implementation to maintain):
# traces pass through, "end temperatures" is the last trace row, "max
# temperature" the global maximum as a length-1 array.
register_qoi("date16_traces", _qoi_identity)
register_qoi("date16_end_temperatures", _qoi_final)
register_qoi("date16_max_temperature", _qoi_max)


def date16_parameter_overrides(parameters):
    """The JSON-serializable override dict equivalent to ``parameters``.

    :class:`~repro.package3d.chip_example.Date16Parameters` stores every
    constructor argument under the same attribute name, so the full
    record round-trips through ``Date16Parameters(**overrides)``.
    """
    names = inspect.signature(Date16Parameters).parameters
    return {name: getattr(parameters, name) for name in names}


def date16_elongation_distribution(parameters=None, truncate=True):
    """Spec dict of the paper's fitted elongation distribution."""
    p = parameters if parameters is not None else Date16Parameters()
    if truncate:
        return {
            "kind": "truncated_normal",
            "mu": p.elongation_mean,
            "sigma": p.elongation_std,
            "lower": 0.0,
            "upper": 0.9,
        }
    return {"kind": "normal", "mu": p.elongation_mean,
            "sigma": p.elongation_std}


def date16_campaign_spec(
    num_samples=64,
    seed=0,
    chunk_size=8,
    resolution="coarse",
    qoi="identity",
    name=None,
    parameters=None,
    waveform=None,
    time_stepping=None,
    adaptive_tolerance=None,
    quantize_dt=None,
    adaptive_options=None,
    reducer=None,
    array_backend=None,
):
    """A ready-to-run :class:`~repro.campaign.spec.CampaignSpec`.

    Defaults reproduce the paper's Monte Carlo study (full wire
    temperature traces as QoI) at a campaign-friendly sample count.
    Custom ``parameters`` shape both the sampling distribution *and*
    the worker-side problem (serialized into the scenario options).
    ``time_stepping="adaptive"`` switches the workers to the adaptive
    transient (quantized onto the dt ladder by default;
    ``quantize_dt=False`` opts back into the raw controller, and
    ``adaptive_tolerance`` / ``adaptive_options`` tune it); ``reducer``
    pins a reduction into the spec (e.g. ``{"kind": "pce", "degree":
    3}`` for the surrogate mode); ``array_backend`` pins the workers'
    solver substrate (see :mod:`repro.backends`).
    """
    from ..campaign.spec import CampaignSpec, ScenarioSpec

    p = parameters if parameters is not None else Date16Parameters()
    options = {"resolution": resolution}
    if time_stepping is not None:
        options["time_stepping"] = str(time_stepping)
    if adaptive_tolerance is not None:
        options["adaptive_tolerance"] = float(adaptive_tolerance)
    if quantize_dt is not None:
        options["quantize_dt"] = bool(quantize_dt)
    if adaptive_options is not None:
        options["adaptive_options"] = dict(adaptive_options)
    if array_backend is not None:
        options["array_backend"] = str(array_backend)
    if parameters is not None:
        options["parameters"] = date16_parameter_overrides(p)
    scenario = ScenarioSpec(
        problem="date16",
        qoi=qoi,
        options=options,
        waveform=waveform,
    )
    layout_wires = 12
    return CampaignSpec(
        name=name or f"date16-mc-{num_samples}",
        scenario=scenario,
        distribution=date16_elongation_distribution(p),
        dimension=layout_wires,
        num_samples=num_samples,
        seed=seed,
        chunk_size=chunk_size,
        reducer=reducer,
    )


def date16_sensitivity_spec(
    num_base_samples=64,
    seed=0,
    chunk_size=8,
    resolution="coarse",
    qoi="final",
    name=None,
    parameters=None,
    waveform=None,
    sampler="random",
    second_order=False,
    groups=None,
):
    """A ready-to-run Sobol sensitivity campaign for the paper's problem.

    Answers the paper's Section I question -- which wire's elongation
    uncertainty drives the temperature variance -- over the 12-wire
    layout at a cost of ``M (d + 2)`` coupled solves.  The default QoI
    ``"final"`` is the vector of per-wire end temperatures, so the
    report ranks wires by their contribution to the hottest wire's
    variance; ``sampler="random"`` makes the campaign reproduce the
    in-process :func:`repro.uq.sensitivity.sobol_indices` bit for bit.

    ``second_order=True`` adds every ``AB_ij`` pair block (66 for the
    12-wire layout -- the cost grows to ``M (d + 2 + 66)``) so the
    report separates wire-pair interactions from main effects;
    ``groups`` (e.g. the two six-wire banks ``[[0, 1, 2, 3, 4, 5],
    [6, 7, 8, 9, 10, 11]]``) adds one grouped block per bank at
    marginal cost.
    """
    from ..campaign.sensitivity import SensitivitySpec
    from ..campaign.spec import ScenarioSpec

    p = parameters if parameters is not None else Date16Parameters()
    options = {"resolution": resolution}
    if parameters is not None:
        options["parameters"] = date16_parameter_overrides(p)
    scenario = ScenarioSpec(
        problem="date16",
        qoi=qoi,
        options=options,
        waveform=waveform,
    )
    layout_wires = 12
    return SensitivitySpec(
        name=name or f"date16-sobol-{num_base_samples}",
        scenario=scenario,
        distribution=date16_elongation_distribution(p),
        dimension=layout_wires,
        num_base_samples=num_base_samples,
        seed=seed,
        chunk_size=chunk_size,
        sampler=sampler,
        second_order=second_order,
        groups=groups,
    )
