"""The paper's Monte Carlo study, end to end (Sections IV-C, V-C, V-D).

``Date16UncertaintyStudy`` wires together the package problem, the fast
coupled solver and the UQ stack:

1. sample 12 iid relative elongations from the fitted N(0.17, 0.048^2),
2. map them to wire lengths ``L_j = d_j / (1 - delta_j)``,
3. run the coupled transient (implicit Euler, 50 s, 51 points),
4. record every wire's temperature trace,
5. report ``E_j(t)``, ``E_max(t)`` (eq. (7)), ``sigma_MC``, the
   ``sigma/sqrt(M)`` error (eq. (6)) and the 6-sigma band crossing of the
   critical temperature.

The same model callable feeds the sampling ablations (LHS/QMC), the sparse
collocation estimator and the Sobol sensitivity analysis.
"""

import numpy as np

from ..bondwire.failure import first_crossing_time
from ..coupled.electrothermal import BlockedCoupledSolver, CoupledSolver
from ..backends import get_array_backend
from ..errors import SamplingError
from ..solvers.time_integration import TimeGrid
from ..uq.collocation import StochasticCollocation
from ..uq.distributions import NormalDistribution, TruncatedNormalDistribution
from ..uq.monte_carlo import BlockedModel, MonteCarloStudy
from ..uq.sensitivity import sobol_indices
from .chip_example import (
    Date16Parameters,
    build_date16_problem,
    wire_lengths_from_deltas,
)


class Date16StudyResult:
    """Statistics of the wire-temperature traces over the MC samples.

    Attributes
    ----------
    times:
        Time axis, length ``P``.
    mean, std:
        ``(P, W)`` per-wire expectation and standard deviation traces.
    num_samples:
        Sample count ``M``.
    t_critical:
        The failure threshold used for crossing analysis [K].
    """

    def __init__(self, times, mean, std, num_samples, t_critical,
                 wire_names, mc_result=None):
        self.times = np.asarray(times, dtype=float)
        self.mean = np.asarray(mean, dtype=float)
        self.std = np.asarray(std, dtype=float)
        self.num_samples = int(num_samples)
        self.t_critical = float(t_critical)
        self.wire_names = list(wire_names)
        #: The raw :class:`~repro.uq.monte_carlo.MonteCarloResult` (if any).
        self.mc_result = mc_result

    @property
    def hottest_wire_index(self):
        """Wire whose expected end temperature is highest."""
        return int(np.argmax(self.mean[-1]))

    def expectation_max_trace(self):
        """``E_max(t) = max_j E_j(t)`` -- eq. (7) of the paper."""
        return np.max(self.mean, axis=1)

    def hottest_wire_traces(self):
        """``(E(t), sigma(t))`` of the hottest wire (the Fig. 7 curves)."""
        j = self.hottest_wire_index
        return self.mean[:, j], self.std[:, j]

    @property
    def sigma_mc(self):
        """End-time standard deviation of the hottest wire (Section V-D)."""
        return float(self.std[-1, self.hottest_wire_index])

    @property
    def error_mc(self):
        """``sigma_MC / sqrt(M)`` -- eq. (6)."""
        return self.sigma_mc / np.sqrt(self.num_samples)

    def band_crossing_time(self, multiple=6.0):
        """First time ``E + multiple * sigma`` of the hottest wire crosses
        the critical temperature (None if never) -- the Fig. 7 claim."""
        mean, std = self.hottest_wire_traces()
        return first_crossing_time(
            self.times, mean + multiple * std, self.t_critical
        )

    def steady_state_time(self, tolerance=0.01):
        """First time the hottest-wire expectation is within ``tolerance``
        (relative to the total rise) of its final value."""
        mean, _ = self.hottest_wire_traces()
        rise = mean[-1] - mean[0]
        if rise <= 0.0:
            return float(self.times[0])
        settled = np.abs(mean - mean[-1]) <= tolerance * rise
        for index in range(settled.size):
            if np.all(settled[index:]):
                return float(self.times[index])
        return float(self.times[-1])

    def summary(self):
        """The Section V-D scalars as a dict."""
        mean, _ = self.hottest_wire_traces()
        return {
            "hottest_wire": self.wire_names[self.hottest_wire_index],
            "num_samples": self.num_samples,
            "E_end": float(mean[-1]),
            "sigma_mc": self.sigma_mc,
            "error_mc": self.error_mc,
            "band_crossing_time": self.band_crossing_time(),
            "steady_state_time": self.steady_state_time(),
            "t_critical": self.t_critical,
        }

    def __repr__(self):
        s = self.summary()
        return (
            f"Date16StudyResult(M={s['num_samples']}, hottest "
            f"{s['hottest_wire']}: E_end={s['E_end']:.2f} K, "
            f"sigma_MC={s['sigma_mc']:.3f} K, error_MC={s['error_mc']:.4f} K)"
        )


class Date16UncertaintyStudy:
    """Reusable model wrapper: elongation sample -> wire temperature traces.

    Parameters
    ----------
    parameters:
        :class:`~repro.package3d.chip_example.Date16Parameters` (defaults
        to Table II; override e.g. ``pair_voltage`` for stress studies).
    resolution:
        Mesh preset (``"coarse"`` recommended for MC).
    mode:
        Coupled solver mode; ``"fast"`` reuses all factorizations across
        samples and retains the wire nonlinearities exactly.
    truncate_elongation:
        When ``True`` (default) the fitted normal is truncated to
        [0, 0.9] -- geometrically admissible elongations; the plain
        normal's tail mass outside is ~2e-4.
    tolerance:
        Fixed-point tolerance [K] per time step.
    waveform:
        Optional drive waveform passed to every transient solve (the
        paper's study uses the constant drive; campaign scenarios may
        pulse or ramp the load).
    factorization_cache:
        Optional shared :class:`~repro.solvers.cache.FactorizationCache`
        for the fast-path base LUs (campaign worker reuse).
    time_stepping:
        ``"fixed"`` (default: the paper's uniform 51-point grid) or
        ``"adaptive"`` -- step-doubling implicit Euler
        (:func:`repro.solvers.adaptive.adaptive_implicit_euler`)
        controlled by ``adaptive_tolerance``, with the accepted states
        interpolated back onto the fixed grid so every QoI keeps its
        ``(P, W)`` shape.  Adaptive stepping supports the constant
        drive only (the step controller owns the time axis).
    adaptive_tolerance:
        Local-error tolerance [K] per adaptive step (default 1.0 -- the
        ROADMAP's operating point: ~1 K of local error keeps the
        interpolated traces within a fraction of a kelvin of the fixed
        grid at roughly half its solve count).
    quantize_dt:
        Adaptive mode only: snap every proposed step onto the geometric
        ladder :func:`repro.solvers.adaptive.dt_ladder` (default
        ``True``), so the per-dt thermal factorizations stay O(#ladder
        rungs) and the adaptive path beats the fixed grid on wall-clock
        even on a cold factorization cache.  ``False`` restores the raw
        controller (one fresh dt -- and factorization -- per update).
    adaptive_options:
        Optional dict of further :func:`adaptive_implicit_euler`
        controls: ``initial_dt`` (default: twice the fixed grid's dt,
        so the first-step doubling's half step lands ON the grid dt's
        ladder rung), ``min_dt`` (default 1e-3 s), ``max_dt``,
        ``safety``,
        ``accept_min_dt_steps`` and ``error_estimate`` (default
        ``"predictor"``: one coupled solve per attempted step with the
        divided-difference LTE estimate and a warm-started fixed point;
        ``"doubling"`` restores the three-solves-per-step doubling
        estimate).
    array_backend:
        Array backend name (or instance) for the fast-path solvers --
        see :mod:`repro.backends`.  ``None`` picks the process default
        (``numpy``, bitwise-identical to the historic path); the
        campaign layer threads a scenario's ``options["array_backend"]``
        through here.
    """

    #: ``adaptive_options`` keys forwarded to
    #: :func:`repro.solvers.adaptive.adaptive_implicit_euler`.
    _ADAPTIVE_OPTIONS = (
        "initial_dt", "min_dt", "max_dt", "safety", "accept_min_dt_steps",
        "error_estimate",
    )

    def __init__(
        self,
        parameters=None,
        resolution="coarse",
        mode="fast",
        num_segments=1,
        truncate_elongation=True,
        tolerance=1.0e-3,
        waveform=None,
        factorization_cache=None,
        time_stepping="fixed",
        adaptive_tolerance=1.0,
        quantize_dt=True,
        adaptive_options=None,
        array_backend=None,
    ):
        self.parameters = parameters if parameters is not None else Date16Parameters()
        problem, mesh = build_date16_problem(
            parameters=self.parameters,
            resolution=resolution,
            num_segments=num_segments,
        )
        self.problem = problem
        self.mesh = mesh
        self.waveform = waveform
        self.array_backend = get_array_backend(array_backend)
        self.solver = CoupledSolver(
            problem, mode=mode, tolerance=tolerance,
            factorization_cache=factorization_cache,
            array_backend=self.array_backend,
        )
        self.time_grid = TimeGrid.from_num_points(
            self.parameters.end_time, self.parameters.num_time_points
        )
        mu = self.parameters.elongation_mean
        sigma = self.parameters.elongation_std
        if truncate_elongation:
            self.elongation_distribution = TruncatedNormalDistribution(
                mu, sigma, 0.0, 0.9
            )
        else:
            self.elongation_distribution = NormalDistribution(mu, sigma)
        self.num_wires = len(problem.wires)
        self.evaluations = 0
        self.time_stepping = str(time_stepping)
        if self.time_stepping not in ("fixed", "adaptive"):
            raise SamplingError(
                f"time_stepping must be 'fixed' or 'adaptive', got "
                f"{time_stepping!r}"
            )
        if self.time_stepping == "adaptive" and waveform is not None:
            raise SamplingError(
                "adaptive time stepping supports the constant drive only "
                "(the step controller owns the time axis); drop the "
                "waveform or use fixed stepping"
            )
        self.adaptive_tolerance = float(adaptive_tolerance)
        self.quantize_dt = bool(quantize_dt)
        options = dict(adaptive_options) if adaptive_options else {}
        unknown = set(options) - set(self._ADAPTIVE_OPTIONS)
        if unknown:
            raise SamplingError(
                f"unknown adaptive_options {sorted(unknown)}; expected a "
                f"subset of {sorted(self._ADAPTIVE_OPTIONS)}"
            )
        # Starting two grid-steps up keeps the first-step doubling's
        # half step ON the fixed grid's dt, so the quantized ladder
        # visits one rung fewer on a cold cache.
        options.setdefault("initial_dt", 2.0 * self.time_grid.dt)
        options.setdefault("min_dt", 1.0e-3)
        options.setdefault("error_estimate", "predictor")
        self.adaptive_options = options
        #: The :class:`~repro.solvers.adaptive.AdaptiveStepResult` of the
        #: most recent adaptive solve (``None`` before the first one) --
        #: step/solve counts and solver reuse statistics for cost
        #: comparisons against the fixed grid.
        self.last_adaptive_result = None
        self._blocked_solver = None

    # ------------------------------------------------------------------
    # The model callable
    # ------------------------------------------------------------------
    def evaluate_traces(self, deltas):
        """Wire-temperature traces ``(P, W)`` for one elongation sample."""
        deltas = np.asarray(deltas, dtype=float).ravel()
        if deltas.size != self.num_wires:
            raise SamplingError(
                f"expected {self.num_wires} elongations, got {deltas.size}"
            )
        lengths = wire_lengths_from_deltas(deltas, self.mesh.layout)
        self.solver.set_wire_lengths(lengths)
        if self.time_stepping == "adaptive":
            traces = self._solve_adaptive_traces()
        else:
            result = self.solver.solve_transient(
                self.time_grid, waveform=self.waveform
            )
            traces = result.wire_temperatures
        self.evaluations += 1
        return traces

    def _solve_adaptive_traces(self):
        """One adaptive transient, interpolated onto the fixed grid.

        Integrates with controller-driven implicit Euler (the default
        predictor estimate costs one coupled solve per attempted step;
        step doubling three) and linearly interpolates the accepted
        wire temperatures onto the paper's 51-point axis, so downstream
        statistics see the exact same shapes as the fixed-grid path.
        Wire lengths must already be set on the solver.

        The coupled fixed point runs at ``max(tolerance,
        adaptive_tolerance / 100)`` inside the integration: iterating
        the nonlinear coupling to far below the local error the
        controller deliberately admits wastes iterations on noise the
        step controller cannot see.
        """
        from ..solvers.adaptive import adaptive_implicit_euler

        base_tolerance = self.solver.tolerance
        self.solver.tolerance = max(base_tolerance,
                                    0.01 * self.adaptive_tolerance)
        self.solver.begin_statistics_window()
        try:
            result = adaptive_implicit_euler(
                self.solver.step_once,
                self.problem.initial_temperatures(),
                end_time=self.parameters.end_time,
                tolerance=self.adaptive_tolerance,
                quantize_dt=self.quantize_dt,
                **self.adaptive_options,
            )
        finally:
            self.solver.tolerance = base_tolerance
        # ``solver_statistics()`` reports the statistics window opened
        # above, so this is exactly one integration's cost -- stable
        # across repeated evaluations and shared caches.
        result.solver_stats = self.solver.solver_statistics()
        self.last_adaptive_result = result
        wire_traces = np.stack([
            self.solver.topology.wire_temperatures(state)
            for state in result.states
        ])
        times = self.time_grid.times
        return np.column_stack([
            np.interp(times, result.times, wire_traces[:, wire])
            for wire in range(wire_traces.shape[1])
        ])

    def evaluate_end_max(self, deltas):
        """Scalar model for sensitivity studies: hottest end temperature."""
        return float(np.max(self.evaluate_traces(deltas)[-1]))

    # ------------------------------------------------------------------
    # Sample-blocked evaluation (the chunk fast path)
    # ------------------------------------------------------------------
    @property
    def supports_block_evaluation(self):
        """Whether :meth:`evaluate_traces_block` applies to this study.

        The blocked fast path needs the fast (Woodbury) solver mode,
        single-segment wires and fixed time stepping -- the adaptive
        controller gives every sample its own solution-dependent time
        axis, which cannot share one blocked grid.
        """
        return (
            self.time_stepping == "fixed"
            and self.solver.mode == "fast"
            and self.solver.topology.num_extra_nodes == 0
        )

    def evaluate_traces_block(self, deltas_block):
        """Wire-temperature traces ``(S, P, W)`` for a block of samples.

        The sample-blocked counterpart of :meth:`evaluate_traces`: all
        ``S`` elongation rows advance through the transient together via
        :class:`~repro.coupled.electrothermal.BlockedCoupledSolver`, so
        the per-step cost is batched linear algebra instead of ``S``
        Python-level solves.  Row ``s`` of the result matches
        ``evaluate_traces(deltas_block[s])`` within floating-point
        summation-order differences.
        """
        deltas_block = np.asarray(deltas_block, dtype=float)
        if deltas_block.ndim != 2 or deltas_block.shape[1] != self.num_wires:
            raise SamplingError(
                f"expected an (S, {self.num_wires}) elongation block, got "
                f"shape {deltas_block.shape}"
            )
        if not self.supports_block_evaluation:
            raise SamplingError(
                "blocked evaluation needs fast mode, single-segment wires "
                "and fixed time stepping; use evaluate_traces per sample"
            )
        lengths = np.stack([
            wire_lengths_from_deltas(row, self.mesh.layout)
            for row in deltas_block
        ])
        if self._blocked_solver is None:
            self._blocked_solver = BlockedCoupledSolver(self.solver)
        self._blocked_solver.set_wire_lengths_block(lengths)
        result = self._blocked_solver.solve_transient_block(
            self.time_grid, waveform=self.waveform
        )
        self.evaluations += deltas_block.shape[0]
        return result.wire_temperatures

    def block_model(self):
        """The campaign-facing model callable for this study.

        A :class:`~repro.uq.monte_carlo.BlockedModel` pairing
        :meth:`evaluate_traces` with :meth:`evaluate_traces_block` when
        the blocked fast path applies; the plain bound method otherwise
        (callers fall back to the per-sample loop).
        """
        if self.supports_block_evaluation:
            return BlockedModel(
                self.evaluate_traces, self.evaluate_traces_block,
                array_backend=self.array_backend.name,
            )
        return self.evaluate_traces

    # ------------------------------------------------------------------
    # Studies
    # ------------------------------------------------------------------
    def run_monte_carlo(self, num_samples=None, seed=0, uniform_points=None,
                        keep_samples=False, block_size=None):
        """The paper's study; returns a :class:`Date16StudyResult`.

        ``block_size`` opts into the sample-blocked fast path: samples
        are evaluated ``block_size`` at a time through
        :meth:`evaluate_traces_block` (requires fixed stepping / fast
        mode / single-segment wires) and still folded one by one in
        sample order, so the statistics match the per-sample loop within
        the blocked path's floating-point tolerance.
        """
        if num_samples is None:
            num_samples = self.parameters.num_mc_samples
        study = MonteCarloStudy(
            self.block_model() if block_size is not None
            else self.evaluate_traces,
            self.elongation_distribution, self.num_wires,
        )
        mc = study.run(
            num_samples,
            seed=seed,
            uniform_points=uniform_points,
            keep_samples=keep_samples,
            block_size=block_size,
        )
        return Date16StudyResult(
            times=self.time_grid.times,
            mean=mc.mean,
            std=mc.std,
            num_samples=mc.num_samples,
            t_critical=self.parameters.t_critical,
            wire_names=self.problem.wire_names(),
            mc_result=mc,
        )

    def run_collocation(self, level=2):
        """Sparse-grid collocation alternative (2d+1 runs at level 2)."""
        collocation = StochasticCollocation(
            self.evaluate_traces,
            self.elongation_distribution,
            self.num_wires,
            level=level,
        )
        return collocation.run()

    def run_sensitivity(self, num_base_samples=64, seed=0):
        """Sobol indices of the hottest end temperature w.r.t. each wire."""
        return sobol_indices(
            self.evaluate_end_max,
            self.elongation_distribution,
            self.num_wires,
            num_base_samples=num_base_samples,
            seed=seed,
        )

    def run_pce(self, degree=1, num_samples=None, seed=0):
        """Polynomial chaos surrogate of the hottest end temperature.

        Degree 1 needs only ~2 (d + 1) = 26 model runs and already carries
        per-wire Sobol indices; use degree 2 (about 180 runs) when
        interactions matter.
        """
        from ..uq.pce import PolynomialChaosExpansion

        pce = PolynomialChaosExpansion(
            lambda deltas: np.array([self.evaluate_end_max(deltas)]),
            self.elongation_distribution,
            self.num_wires,
            degree=degree,
        )
        return pce.fit(num_samples=num_samples, seed=seed)

    def nominal_result(self, store_fields=False):
        """One solve at the nominal (mean-elongation) lengths."""
        deltas = np.full(self.num_wires, self.parameters.elongation_mean)
        lengths = wire_lengths_from_deltas(deltas, self.mesh.layout)
        self.solver.set_wire_lengths(lengths)
        return self.solver.solve_transient(
            self.time_grid, store_fields=store_fields, waveform=self.waveform
        )
