"""The bonding wire measurement dataset (Section IV-B, Fig. 3-5).

The paper measures 12 wires on one chip from two X-ray photographs: the
direct distance ``d``, the misplacement offset on the contact pad (giving
the elongation ``delta_s``) and -- for only 6 wires, because of the camera
angle -- the bending elongation ``delta_h``.  For the remaining wires the
average of the 6 measured values is assumed.  The relative elongations
``delta = (L - d)/L`` of all 12 wires are then fitted with a normal
distribution, N(0.17, 0.048^2).

We do not have the physical chip or its X-ray photographs.  The dataset
below is **synthetic but statistics-matched**: the direct distances come
from the reproduced package layout, and the six measured bending
elongations were solved (see DESIGN.md, substitutions) so that after the
paper's imputation procedure the sample mean and standard deviation of the
12 relative elongations are exactly the published 0.17 and 0.048.  Every
downstream computation consumes only these per-wire tuples, so the code
path is identical to one fed by real measurements.
"""

import numpy as np

from ..bondwire.geometry import WireLengthModel, misplacement_elongation
from ..errors import MeasurementError
from ..uq.distributions import fit_normal
from ..uq.statistics import histogram_data

MM = 1.0e-3


class WireMeasurement:
    """Raw X-ray readings for one wire.

    ``bending_elongation`` is ``None`` when the camera angle hid the loop
    (6 of the paper's 12 wires).
    """

    def __init__(self, name, direct_distance, lateral_offset,
                 bending_elongation=None):
        self.name = name
        self.direct_distance = float(direct_distance)
        self.lateral_offset = float(lateral_offset)
        self.bending_elongation = (
            None if bending_elongation is None else float(bending_elongation)
        )
        if self.direct_distance <= 0.0:
            raise MeasurementError(
                f"direct distance of {name!r} must be positive"
            )
        if self.lateral_offset < 0.0:
            raise MeasurementError(
                f"lateral offset of {name!r} must be non-negative"
            )
        if self.bending_elongation is not None and self.bending_elongation < 0.0:
            raise MeasurementError(
                f"bending elongation of {name!r} must be non-negative"
            )

    @property
    def misplacement_elongation(self):
        """``delta_s`` from the lateral offset (Fig. 4b geometry)."""
        return misplacement_elongation(self.direct_distance, self.lateral_offset)

    @property
    def has_bending_measurement(self):
        """Whether ``delta_h`` could be read off the X-ray."""
        return self.bending_elongation is not None


class MeasurementDataset:
    """All wire measurements of one chip plus the imputation procedure."""

    def __init__(self, measurements):
        self.measurements = list(measurements)
        if not self.measurements:
            raise MeasurementError("dataset must contain at least one wire")
        if not any(m.has_bending_measurement for m in self.measurements):
            raise MeasurementError(
                "at least one wire needs a measured bending elongation"
            )

    @property
    def num_wires(self):
        """Number of wires in the dataset (paper: 12)."""
        return len(self.measurements)

    @property
    def num_bending_measured(self):
        """Wires with a direct ``delta_h`` reading (paper: 6)."""
        return sum(m.has_bending_measurement for m in self.measurements)

    def mean_measured_bending(self):
        """Average of the measured bending elongations (imputation value)."""
        measured = [
            m.bending_elongation
            for m in self.measurements
            if m.has_bending_measurement
        ]
        return float(np.mean(measured))

    def imputed_length_models(self):
        """Per-wire :class:`WireLengthModel` after the paper's imputation.

        Wires without a bending reading receive the average of the measured
        ones ("the average value of these 6 measurements has been assumed").
        """
        fallback = self.mean_measured_bending()
        models = []
        for m in self.measurements:
            bending = (
                m.bending_elongation if m.has_bending_measurement else fallback
            )
            models.append(
                WireLengthModel(
                    m.direct_distance,
                    misplacement=m.misplacement_elongation,
                    bending=bending,
                    name=m.name,
                )
            )
        return models

    def lengths(self):
        """Total lengths ``L_j`` after imputation [m]."""
        return np.asarray([model.length for model in self.imputed_length_models()])

    def deltas(self):
        """Relative elongations ``delta_j`` after imputation."""
        return np.asarray([model.delta for model in self.imputed_length_models()])

    def direct_distances(self):
        """Direct distances ``d_j`` [m]."""
        return np.asarray([m.direct_distance for m in self.measurements])

    def fit_elongation_distribution(self):
        """Normal fit of the deltas -- the paper's Fig. 5 distribution."""
        return fit_normal(self.deltas())

    def elongation_histogram(self, num_bins=6):
        """``(bin_edges, densities)`` of the deltas (Fig. 5 histogram)."""
        return histogram_data(self.deltas(), num_bins=num_bins, density=True)

    def __repr__(self):
        return (
            f"MeasurementDataset({self.num_wires} wires, "
            f"{self.num_bending_measured} with measured bending)"
        )


def date16_xray_measurements():
    """The DATE'16 chip's 12-wire dataset (synthetic, statistics-matched).

    Direct distances follow the reproduced layout (three wires per package
    side: two outer wires at 1.4236 mm, one central at 1.0402 mm -- the
    central pads are the long 1.261 mm ones, hence the shortest wires).
    Bending elongations were measured for the six wires on the two x-sides
    (the synthetic "camera" faced those); the y-side wires get the imputed
    average.  After imputation the relative elongations have sample mean
    0.1700 and sample standard deviation 0.0480 -- the published Fig. 5 fit.
    """
    d_outer = 1.4236 * MM
    d_center = 1.0402 * MM
    directs = [d_outer, d_center, d_outer] * 4
    offsets = [
        0.09, 0.05, 0.11, 0.04, 0.10, 0.06, 0.08, 0.03, 0.12, 0.05, 0.07, 0.10,
    ]
    # Solved so that the post-imputation deltas match N(0.17, 0.048^2).
    bendings = [
        1.0525189e-4,
        1.6793488e-4,
        2.3061788e-4,
        2.9330090e-4,
        3.5598390e-4,
        4.1866691e-4,
        None,
        None,
        None,
        None,
        None,
        None,
    ]
    measurements = [
        WireMeasurement(
            name=f"wire{i:02d}",
            direct_distance=directs[i],
            lateral_offset=offsets[i] * MM,
            bending_elongation=bendings[i],
        )
        for i in range(12)
    ]
    return MeasurementDataset(measurements)
