"""Layout -> snapped tensor-product mesh with material assignment (Fig. 6).

The FIT staircase approximation is exact for the layout's axis-aligned
boxes only when every box face coincides with a grid plane, so the mesher
collects all pad/chip/body interface coordinates as *required* grid lines
and subdivides between them to meet the resolution target.
"""


from ..errors import PackageLayoutError
from ..fit.material_field import MaterialField
from ..grid.indexing import GridIndexing
from ..grid.refinement import snap_coordinates
from ..grid.tensor_grid import TensorGrid
from ..materials.library import copper, epoxy_resin

#: Named resolution presets: lateral / vertical target spacings [m].
RESOLUTIONS = {
    "coarse": (0.45e-3, 0.20e-3),
    "default": (0.30e-3, 0.12e-3),
    "fine": (0.16e-3, 0.07e-3),
}


class PackageMesh:
    """A meshed package: grid, materials and node lookups for the solver.

    Attributes
    ----------
    grid, materials:
        The :class:`~repro.grid.tensor_grid.TensorGrid` and its
        :class:`~repro.fit.material_field.MaterialField`.
    layout:
        The source :class:`~repro.package3d.layout.PackageLayout`.
    pad_contact_nodes:
        Per pad: flat node indices of the PEC outer-face region.
    wire_nodes:
        Per declared wire: ``(pad_node, chip_node)`` flat indices.
    """

    def __init__(self, grid, materials, layout, pad_contact_nodes, wire_nodes):
        self.grid = grid
        self.materials = materials
        self.layout = layout
        self.pad_contact_nodes = pad_contact_nodes
        self.wire_nodes = wire_nodes

    def statistics(self):
        """Mesh statistics for reporting (the Fig. 6 bench)."""
        nx, ny, nz = self.grid.shape
        return {
            "nodes": self.grid.num_nodes,
            "cells": self.grid.num_cells,
            "edges": self.grid.num_edges,
            "shape": (nx, ny, nz),
            "min_spacing": float(
                min(self.grid.dx.min(), self.grid.dy.min(), self.grid.dz.min())
            ),
            "max_spacing": float(
                max(self.grid.dx.max(), self.grid.dy.max(), self.grid.dz.max())
            ),
            "volume_fractions": self.materials.volume_fractions(),
        }

    def __repr__(self):
        nx, ny, nz = self.grid.shape
        return (
            f"PackageMesh(shape=({nx}, {ny}, {nz}), "
            f"nodes={self.grid.num_nodes})"
        )


def _required_lines(layout):
    """Collect interface coordinates per axis."""
    xs = {0.0, layout.body_x}
    ys = {0.0, layout.body_y}
    zs = {0.0, layout.height}
    for pad in layout.pads:
        (x0, x1), (y0, y1), (z0, z1) = pad.box(layout)
        xs.update((x0, x1))
        ys.update((y0, y1))
        zs.update((z0, z1))
    (x0, x1), (y0, y1), (z0, z1) = layout.chip.box()
    xs.update((x0, x1))
    ys.update((y0, y1))
    zs.update((z0, z1))
    return sorted(xs), sorted(ys), sorted(zs)


def build_package_mesh(
    layout,
    resolution="default",
    mold_material=None,
    conductor_material=None,
):
    """Mesh a :class:`~repro.package3d.layout.PackageLayout`.

    Parameters
    ----------
    resolution:
        Preset name (``"coarse"``, ``"default"``, ``"fine"``) or a tuple
        ``(lateral_spacing, vertical_spacing)`` in metres.
    mold_material, conductor_material:
        Override Table I's epoxy resin / copper.

    Returns
    -------
    :class:`PackageMesh`
    """
    if isinstance(resolution, str):
        if resolution not in RESOLUTIONS:
            raise PackageLayoutError(
                f"unknown resolution {resolution!r}; presets: "
                f"{sorted(RESOLUTIONS)}"
            )
        lateral, vertical = RESOLUTIONS[resolution]
    else:
        lateral, vertical = (float(resolution[0]), float(resolution[1]))

    mold = mold_material if mold_material is not None else epoxy_resin()
    conductor = (
        conductor_material if conductor_material is not None else copper()
    )

    xs, ys, zs = _required_lines(layout)
    grid = TensorGrid(
        snap_coordinates(xs, lateral, extent=(0.0, layout.body_x)),
        snap_coordinates(ys, lateral, extent=(0.0, layout.body_y)),
        snap_coordinates(zs, vertical, extent=(0.0, layout.height)),
    )

    materials = MaterialField(grid, mold)
    for pad in layout.pads:
        claimed = materials.fill_box(pad.box(layout), conductor)
        if claimed == 0:
            raise PackageLayoutError(
                f"pad {pad.name!r} claimed no cells; mesh too coarse"
            )
    claimed = materials.fill_box(layout.chip.box(), conductor)
    if claimed == 0:
        raise PackageLayoutError("chip claimed no cells; mesh too coarse")

    indexing = GridIndexing(grid)
    pad_contact_nodes = []
    for pad in layout.pads:
        nodes = indexing.nodes_in_box(pad.outer_face_box(layout))
        if nodes.size == 0:
            raise PackageLayoutError(
                f"pad {pad.name!r} has no outer-face (PEC) nodes"
            )
        pad_contact_nodes.append(nodes)

    wire_nodes = []
    for wire in layout.wires:
        pad_point, chip_point = layout.wire_endpoints(wire)
        pad_node = indexing.nearest_node(pad_point)
        chip_node = indexing.nearest_node(chip_point)
        if pad_node == chip_node:
            raise PackageLayoutError(
                f"wire {wire.name!r} endpoints collapse onto one node; "
                "mesh too coarse"
            )
        wire_nodes.append((pad_node, chip_node))

    return PackageMesh(grid, materials, layout, pad_contact_nodes, wire_nodes)
