"""Parametric chip-package layout (the paper's example, Section IV-A/V-A).

All structures are axis-aligned boxes (the paper: "all structures are
approximated using rectangular shapes").  The layout knows nothing about
grids; :mod:`repro.package3d.meshing` turns it into a mesh.

Coordinate convention: the package body spans ``[0, body_x] x [0, body_y]``
laterally and ``[0, height]`` vertically; pads and chip float inside.
"""

import numpy as np

from ..errors import PackageLayoutError

_SIDES = ("x-", "x+", "y-", "y+")


class ContactPad:
    """One contact pad: a copper box reaching in from a package side.

    Parameters
    ----------
    side:
        Which package side the pad's outer end touches.
    lateral_center:
        Absolute coordinate of the pad center along the side direction.
    width:
        Lateral width (paper: 0.311 mm for all 28 pads).
    length:
        How far the pad reaches inward (paper: 1.01 mm, 4 pads 1.261 mm).
    thickness, z_bottom:
        Vertical extent.
    """

    def __init__(self, side, lateral_center, width, length, thickness, z_bottom,
                 name=""):
        if side not in _SIDES:
            raise PackageLayoutError(
                f"side must be one of {_SIDES}, got {side!r}"
            )
        for label, value in (
            ("width", width),
            ("length", length),
            ("thickness", thickness),
        ):
            if float(value) <= 0.0:
                raise PackageLayoutError(f"pad {label} must be positive")
        self.side = side
        self.lateral_center = float(lateral_center)
        self.width = float(width)
        self.length = float(length)
        self.thickness = float(thickness)
        self.z_bottom = float(z_bottom)
        self.name = name

    def box(self, layout):
        """Axis-aligned bounding box ``((x0,x1),(y0,y1),(z0,z1))``."""
        half = 0.5 * self.width
        z = (self.z_bottom, self.z_bottom + self.thickness)
        lo = self.lateral_center - half
        hi = self.lateral_center + half
        if self.side == "x-":
            return ((0.0, self.length), (lo, hi), z)
        if self.side == "x+":
            return ((layout.body_x - self.length, layout.body_x), (lo, hi), z)
        if self.side == "y-":
            return ((lo, hi), (0.0, self.length), z)
        return ((lo, hi), (layout.body_y - self.length, layout.body_y), z)

    def inner_tip(self, layout):
        """Bond point on the pad: inner-end center, top surface."""
        z = self.z_bottom + self.thickness
        if self.side == "x-":
            return (self.length, self.lateral_center, z)
        if self.side == "x+":
            return (layout.body_x - self.length, self.lateral_center, z)
        if self.side == "y-":
            return (self.lateral_center, self.length, z)
        return (self.lateral_center, layout.body_y - self.length, z)

    def outer_face_box(self, layout):
        """Thin box on the package boundary face: the PEC contact region."""
        (x0, x1), (y0, y1), z = self.box(layout)
        if self.side == "x-":
            return ((0.0, 0.0), (y0, y1), z)
        if self.side == "x+":
            return ((layout.body_x, layout.body_x), (y0, y1), z)
        if self.side == "y-":
            return ((x0, x1), (0.0, 0.0), z)
        return ((x0, x1), (layout.body_y, layout.body_y), z)


class ChipDie:
    """The central chip die (copper in the paper's Table I)."""

    def __init__(self, center_x, center_y, size_x, size_y, thickness, z_bottom):
        for label, value in (
            ("size_x", size_x),
            ("size_y", size_y),
            ("thickness", thickness),
        ):
            if float(value) <= 0.0:
                raise PackageLayoutError(f"chip {label} must be positive")
        self.center_x = float(center_x)
        self.center_y = float(center_y)
        self.size_x = float(size_x)
        self.size_y = float(size_y)
        self.thickness = float(thickness)
        self.z_bottom = float(z_bottom)

    def box(self):
        """Axis-aligned bounding box of the die."""
        hx = 0.5 * self.size_x
        hy = 0.5 * self.size_y
        return (
            (self.center_x - hx, self.center_x + hx),
            (self.center_y - hy, self.center_y + hy),
            (self.z_bottom, self.z_bottom + self.thickness),
        )

    def edge_point_towards(self, x, y):
        """Nearest point on the die's top-face boundary to ``(x, y)``.

        This is where a wire coming from that direction lands on the chip.
        """
        (x0, x1), (y0, y1), (_, z1) = self.box()
        px = min(max(float(x), x0), x1)
        py = min(max(float(y), y0), y1)
        # Project onto the nearest edge of the rectangle (a wire lands on
        # the rim of the die, not in its middle).
        distances = {
            "x0": abs(px - x0),
            "x1": abs(px - x1),
            "y0": abs(py - y0),
            "y1": abs(py - y1),
        }
        nearest = min(distances, key=distances.get)
        if nearest == "x0":
            px = x0
        elif nearest == "x1":
            px = x1
        elif nearest == "y0":
            py = y0
        else:
            py = y1
        return (px, py, z1)


class WireAttachment:
    """Declares one bonding wire: which pad it connects to the chip."""

    def __init__(self, pad_index, polarity, name=""):
        self.pad_index = int(pad_index)
        polarity = int(polarity)
        if polarity not in (-1, +1):
            raise PackageLayoutError(
                f"polarity must be +1 or -1, got {polarity!r}"
            )
        self.polarity = polarity
        self.name = name


class PackageLayout:
    """The complete package: body, pads, chip, wire attachments.

    Parameters
    ----------
    body_x, body_y, height:
        Outer mold dimensions [m].
    pads:
        List of :class:`ContactPad` (paper: 28).
    chip:
        The :class:`ChipDie`.
    wires:
        List of :class:`WireAttachment` (paper: 12).
    """

    def __init__(self, body_x, body_y, height, pads, chip, wires):
        for label, value in (
            ("body_x", body_x),
            ("body_y", body_y),
            ("height", height),
        ):
            if float(value) <= 0.0:
                raise PackageLayoutError(f"{label} must be positive")
        self.body_x = float(body_x)
        self.body_y = float(body_y)
        self.height = float(height)
        self.pads = list(pads)
        self.chip = chip
        self.wires = list(wires)
        self._validate()

    def _validate(self):
        for pad in self.pads:
            (x0, x1), (y0, y1), (z0, z1) = pad.box(self)
            if x0 < -1e-12 or y0 < -1e-12 or z0 < -1e-12:
                raise PackageLayoutError(f"pad {pad.name!r} leaves the body")
            if (
                x1 > self.body_x + 1e-12
                or y1 > self.body_y + 1e-12
                or z1 > self.height + 1e-12
            ):
                raise PackageLayoutError(f"pad {pad.name!r} leaves the body")
        (cx0, cx1), (cy0, cy1), (cz0, cz1) = self.chip.box()
        if cx0 < 0 or cy0 < 0 or cz0 < 0:
            raise PackageLayoutError("chip leaves the body")
        if cx1 > self.body_x or cy1 > self.body_y or cz1 > self.height:
            raise PackageLayoutError("chip leaves the body")
        for wire in self.wires:
            if not 0 <= wire.pad_index < len(self.pads):
                raise PackageLayoutError(
                    f"wire {wire.name!r} references pad {wire.pad_index}, "
                    f"but only {len(self.pads)} pads exist"
                )
        for pad, box in self._pad_boxes():
            if _boxes_overlap(box, self.chip.box()):
                raise PackageLayoutError(
                    f"pad {pad.name!r} overlaps the chip"
                )

    def _pad_boxes(self):
        return [(pad, pad.box(self)) for pad in self.pads]

    # ------------------------------------------------------------------
    # Wire geometry
    # ------------------------------------------------------------------
    def wire_endpoints(self, wire):
        """``(pad_point, chip_point)`` of one wire attachment."""
        pad = self.pads[wire.pad_index]
        pad_point = pad.inner_tip(self)
        chip_point = self.chip.edge_point_towards(pad_point[0], pad_point[1])
        return pad_point, chip_point

    def wire_direct_distance(self, wire):
        """Straight pad-to-chip distance ``d`` (Fig. 4a of the paper) [m]."""
        pad_point, chip_point = self.wire_endpoints(wire)
        return float(
            np.linalg.norm(np.subtract(pad_point, chip_point))
        )

    def all_direct_distances(self):
        """``d_j`` for every declared wire."""
        return np.asarray(
            [self.wire_direct_distance(wire) for wire in self.wires]
        )

    @property
    def num_pads(self):
        """Number of contact pads (paper: 28)."""
        return len(self.pads)

    @property
    def num_wires(self):
        """Number of bonding wires (paper: 12)."""
        return len(self.wires)

    def __repr__(self):
        return (
            f"PackageLayout({self.body_x * 1e3:.2f} x {self.body_y * 1e3:.2f}"
            f" x {self.height * 1e3:.2f} mm, {self.num_pads} pads, "
            f"{self.num_wires} wires)"
        )


def _boxes_overlap(box_a, box_b):
    """True when two axis-aligned boxes share interior volume."""
    for (a0, a1), (b0, b1) in zip(box_a, box_b):
        if a1 <= b0 + 1e-15 or b1 <= a0 + 1e-15:
            return False
    return True
