"""Array-backend registry: names to lazily constructed singletons.

Mirrors the executor/reducer registries (``register_backend``,
``register_reducer``): register a zero-argument factory under a name,
resolve it anywhere a backend is named -- ``WoodburySolver(backend=...)``,
``CoupledSolver(array_backend=...)``, scenario ``options``, the CLI's
``--array-backend``, service job options.

Backends are process singletons: the first ``get_array_backend(name)``
constructs the instance, later calls return the same object, so
telemetry state (``transfer_count``) accumulates coherently and the
factorization cache can key handles by ``backend.name`` alone.  A
factory that *raises* (the CuPy backend without the ``[gpu]`` extra)
is not cached -- installing the extra and retrying works within one
process.

The default backend is ``numpy`` unless the ``REPRO_ARRAY_BACKEND``
environment variable names another registered backend -- that is how
CI runs the whole blocked-equivalence suite under ``devicesim`` without
touching the tests' construction sites.  An explicit selection always
wins over the environment.
"""

import os

from ..errors import SolverError
from .base import ArrayBackend

#: Environment variable overriding the default backend name.
ENV_DEFAULT = "REPRO_ARRAY_BACKEND"

_FACTORIES = {}
_INSTANCES = {}


def register_array_backend(name, factory=None):
    """Register ``factory() -> ArrayBackend`` under ``name``.

    Usable directly or as a decorator (the executor-registry idiom)::

        @register_array_backend("mybackend")
        def _mybackend():
            return MyBackend()
    """
    if factory is None:
        def decorator(func):
            _FACTORIES[str(name)] = func
            return func
        return decorator
    _FACTORIES[str(name)] = factory
    return factory


def registered_array_backends():
    """Sorted names of every registered array backend."""
    return sorted(_FACTORIES)


def default_array_backend_name():
    """``numpy``, unless ``REPRO_ARRAY_BACKEND`` overrides it."""
    return os.environ.get(ENV_DEFAULT) or "numpy"


def get_array_backend(backend=None):
    """Resolve a backend selection to its process-singleton instance.

    ``backend`` may be ``None`` (the default backend), a registered
    name, or an :class:`~repro.backends.base.ArrayBackend` instance
    (returned as-is).  Unknown names raise :class:`SolverError` listing
    what is registered; a backend whose construction fails (missing
    optional dependency) propagates its own error.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    if backend is None:
        backend = default_array_backend_name()
    name = str(backend)
    if name not in _FACTORIES:
        raise SolverError(
            f"unknown array backend {name!r}; registered backends: "
            f"{registered_array_backends()}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]
