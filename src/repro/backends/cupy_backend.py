"""CuPy array backend behind the ``[gpu]`` optional extra.

Import-guarded: constructing the backend (the first
``get_array_backend("cupy")``) raises a :class:`SolverError` naming the
missing extra when CuPy is not importable, so ``--array-backend cupy``
on a CPU-only host fails fast with an actionable message instead of an
``ImportError`` from deep inside a worker.

The cost model mirrors ``devicesim`` (which is this backend's CI test
double): the base factorization stays on the host (SuperLU -- sparse LU
is latency-bound and the factorization happens once), its factors are
mirrored to the device lazily on the first blocked backsolve, and the
hot loop's algebra -- the multi-RHS backsolve, the stacked core solves,
the gemm-ordered corrections -- runs on the device with exactly two
counted transfers per solve_batch call (RHS up, solution down) plus the
per-step cores upload and the one-time operator uploads.

``correction_mode = "gemm"``: per-column gemvs would serialize kernel
launches; the BLAS-3 correction reorders summations, hence the declared
``rtol`` equivalence tier (same argument as ``devicesim``, DESIGN.md
"Array backends").
"""

from ..errors import SolverError
from .base import ArrayBackend, EquivalenceTier, FactorizationHandle
from .registry import register_array_backend


def _import_cupy():
    try:
        import cupy
        import cupyx.scipy.sparse as cusparse
        import cupyx.scipy.sparse.linalg as cusolve
    except ImportError as exc:
        raise SolverError(
            "array backend 'cupy' requires CuPy, which is not "
            "installed; install the optional extra with "
            "`pip install 'repro-date16[gpu]'` (or pick "
            "--array-backend numpy / devicesim)"
        ) from exc
    return cupy, cusparse, cusolve


class CupyFactorization(FactorizationHandle):
    """Host SuperLU handle with a lazily mirrored device factorization."""

    def __init__(self, lu, backend, base_csc):
        super().__init__(lu)
        self._backend = backend
        self._base_csc = base_csc
        self._device_lu = None

    def backsolve(self, rhs):
        if self._device_lu is None:
            cupy, cusparse, cusolve = self._backend._cupy
            # One-time factor mirror: counted as a single transfer (it
            # is one bulk upload of the base system).
            self._backend._count_transfer()
            self._device_lu = cusolve.splu(
                cusparse.csc_matrix(self._base_csc)
            )
            self._base_csc = None
        return self._device_lu.solve(rhs)


class CupyBackend(ArrayBackend):
    """GPU backend over CuPy (requires the ``[gpu]`` extra)."""

    name = "cupy"
    equivalence = EquivalenceTier("rtol", 1e-6)
    correction_mode = "gemm"

    def __init__(self):
        super().__init__()
        self._cupy = _import_cupy()

    def to_device(self, array):
        cupy, _, _ = self._cupy
        self._count_transfer()
        return cupy.asarray(array, dtype=cupy.float64)

    def from_device(self, array):
        cupy, _, _ = self._cupy
        self._count_transfer()
        return cupy.asnumpy(array)

    def factorize(self, base_matrix, symmetric=False):
        from ..solvers.cache import checked_splu

        base_csc = base_matrix.tocsc()
        return CupyFactorization(
            checked_splu(base_csc, symmetric=symmetric), self, base_csc
        )

    def batched_core_solve(self, cores, rhs):
        cupy, _, _ = self._cupy
        cores_device = self.to_device(cores)
        return cupy.linalg.solve(cores_device, rhs[..., None])[..., 0]

    def broadcast_columns(self, vector, num_columns):
        cupy, _, _ = self._cupy
        return cupy.broadcast_to(
            vector[:, None], (vector.shape[0], num_columns)
        )

    def broadcast_rows(self, vector, num_rows):
        cupy, _, _ = self._cupy
        return cupy.broadcast_to(vector, (num_rows, vector.shape[0]))


@register_array_backend("cupy")
def _cupy_backend():
    return CupyBackend()
