"""The reference CPU backend: scipy ``splu`` + numpy, bitwise tier.

This is the pre-refactor solver stack verbatim behind the protocol:
"device" arrays are host ndarrays, transfers are identities (and are
*not* counted -- there is no memory boundary to account for), the
batched core solve is ``numpy.linalg.solve`` over the stacked cores,
and ``correction_mode = "columns"`` keeps the order-preserving
per-column corrections that make blocked results bitwise identical to
the per-sample path (the PR 7 contract).
"""

import numpy as np

from .base import BITWISE, ArrayBackend, FactorizationHandle
from .registry import register_array_backend


class NumpyFactorization(FactorizationHandle):
    """Host SuperLU handle; host and "device" solves coincide."""

    def backsolve(self, rhs):
        return self.lu.solve(rhs)


class NumpyBackend(ArrayBackend):
    """scipy/numpy reference backend (the default)."""

    name = "numpy"
    equivalence = BITWISE
    correction_mode = "columns"

    def to_device(self, array):
        # No memory boundary: the host array *is* the device array.
        # Deliberately not counted as a transfer.
        return np.asarray(array, dtype=float)

    def from_device(self, array):
        return np.asarray(array, dtype=float)

    def factorize(self, base_matrix, symmetric=False):
        from ..solvers.cache import checked_splu

        return NumpyFactorization(
            checked_splu(base_matrix, symmetric=symmetric)
        )

    def batched_core_solve(self, cores, rhs):
        # Batched per-matrix-exact solves: numpy broadcasts the (S,k,k)
        # stack and solves each kxk system independently, so sample s
        # matches a standalone solve of its core bit for bit.
        return np.linalg.solve(cores, rhs[..., None])[..., 0]

    def broadcast_columns(self, vector, num_columns):
        return np.broadcast_to(
            vector[:, None], (vector.shape[0], num_columns)
        )

    def broadcast_rows(self, vector, num_rows):
        return np.broadcast_to(vector, (num_rows, vector.shape[0]))


@register_array_backend("numpy")
def _numpy_backend():
    return NumpyBackend()
