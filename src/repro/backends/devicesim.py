"""``devicesim``: a CPU test double that enforces device semantics.

CI has no GPU, but the seams a GPU backend must honor -- a separate
memory space, explicit accounted transfers, gemm-ordered corrections
with a relaxed equivalence tier -- are all checkable on a CPU.  This
backend simulates a device with three rules:

* **Separate memory space.**  Device data lives in :class:`DeviceArray`
  wrappers.  Mixing one with a host ndarray in ``@`` or ``-`` raises
  :class:`SolverError` instead of silently computing, and so does any
  implicit ``numpy`` coercion (``__array__``): code that would crash on
  a real device (or, worse, silently round-trip through the host)
  crashes here, in tests.
* **Accounted transfers.**  Every host->device and device->host copy
  goes through :meth:`to_device` / :meth:`from_device`, incrementing
  both the backend's ``transfer_count`` and the
  ``solver.device_transfers`` telemetry counter.  "Zero unaccounted
  transfers" is then a checkable equality between the two.
* **Device cost model.**  ``correction_mode = "gemm"``: the rank-k
  corrections are one BLAS-3 product, not per-column gemvs, which is
  why the declared equivalence tier is ``rtol`` (1e-6) rather than
  bitwise -- the gemm summation reorder is amplified by the Woodbury
  cancellation (DESIGN.md "Array backends").  The measured agreement on
  the paper's systems is far tighter; the declared tier is the
  *contract*, not the typical error.
"""

import numpy as np

from ..errors import SolverError
from .base import ArrayBackend, EquivalenceTier, FactorizationHandle
from .registry import register_array_backend


def _unwrap(array, context):
    if not isinstance(array, DeviceArray):
        raise SolverError(
            f"devicesim: {context} expected a device array, got "
            f"{type(array).__name__}; move host data across with "
            f"backend.to_device(...)"
        )
    return array._data


class DeviceArray:
    """An array in the simulated device memory space.

    Supports exactly the algebra the blocked Woodbury path needs
    (``.T``, ``@``, ``-``) between device arrays; any operation that
    would silently mix in a host ndarray raises :class:`SolverError`.
    """

    # Tell numpy to stand down so our reflected operators (and their
    # mixing errors) run instead of silent ndarray coercion.
    __array_ufunc__ = None

    def __init__(self, data):
        self._data = data

    @property
    def shape(self):
        return self._data.shape

    @property
    def ndim(self):
        return self._data.ndim

    @property
    def dtype(self):
        return self._data.dtype

    @property
    def T(self):  # noqa: N802 - mirrors the ndarray property
        return DeviceArray(self._data.T)

    def _coerce(self, other, op):
        if isinstance(other, DeviceArray):
            return other._data
        raise SolverError(
            f"devicesim: refusing to mix a device array with host data "
            f"({type(other).__name__}) in '{op}'; transfer explicitly "
            f"with backend.to_device(...) / backend.from_device(...)"
        )

    def __matmul__(self, other):
        return DeviceArray(self._data @ self._coerce(other, "@"))

    def __rmatmul__(self, other):
        return DeviceArray(self._coerce(other, "@") @ self._data)

    def __sub__(self, other):
        return DeviceArray(self._data - self._coerce(other, "-"))

    def __rsub__(self, other):
        return DeviceArray(self._coerce(other, "-") - self._data)

    def __array__(self, *args, **kwargs):
        raise SolverError(
            "devicesim: implicit device->host conversion; use "
            "backend.from_device(...) so the transfer is accounted"
        )

    def __repr__(self):
        return f"DeviceArray(shape={self.shape}, dtype={self.dtype})"


class DeviceSimFactorization(FactorizationHandle):
    """Host SuperLU factorization with a device-facing backsolve."""

    def backsolve(self, rhs):
        # The simulated device "owns" a copy of the factorization, so a
        # backsolve is a device-side operation: device in, device out,
        # no transfer.
        return DeviceArray(self.lu.solve(
            np.ascontiguousarray(_unwrap(rhs, "backsolve"))
        ))


class DeviceSimBackend(ArrayBackend):
    """The device-semantics test double (see the module docstring)."""

    name = "devicesim"
    equivalence = EquivalenceTier("rtol", 1e-6)
    correction_mode = "gemm"

    def to_device(self, array):
        self._count_transfer()
        # np.array copies: the "device" never aliases host memory.
        return DeviceArray(np.array(array, dtype=float))

    def from_device(self, array):
        self._count_transfer()
        return np.array(_unwrap(array, "from_device"))

    def factorize(self, base_matrix, symmetric=False):
        from ..solvers.cache import checked_splu

        return DeviceSimFactorization(
            checked_splu(base_matrix, symmetric=symmetric)
        )

    def batched_core_solve(self, cores, rhs):
        # The (S, k, k) cores are assembled on the host (cheap, data-
        # dependent) and uploaded here -- a counted transfer, exactly
        # like the cores upload a CuPy backend pays.
        cores_device = self.to_device(cores)
        rhs_data = _unwrap(rhs, "batched_core_solve")
        return DeviceArray(
            np.linalg.solve(cores_device._data, rhs_data[..., None])[..., 0]
        )

    def broadcast_columns(self, vector, num_columns):
        data = _unwrap(vector, "broadcast_columns")
        return DeviceArray(
            np.broadcast_to(data[:, None], (data.shape[0], num_columns))
        )

    def broadcast_rows(self, vector, num_rows):
        data = _unwrap(vector, "broadcast_rows")
        return DeviceArray(
            np.broadcast_to(data, (num_rows, data.shape[0]))
        )


@register_array_backend("devicesim")
def _devicesim_backend():
    return DeviceSimBackend()
