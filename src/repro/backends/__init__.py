"""Pluggable array backends for the solver stack.

See :mod:`repro.backends.base` for the protocol and DESIGN.md "Array
backends" for the architecture.  Three backends ship built in:

* ``numpy`` -- the scipy ``splu`` + numpy reference path, bitwise
  identical to the pre-backend solver stack (the default);
* ``cupy`` -- GPU execution behind the ``[gpu]`` optional extra,
  import-guarded with a clear error naming the extra when absent;
* ``devicesim`` -- a CPU test double enforcing device semantics
  (separate memory space, accounted transfers, gemm corrections) so CI
  exercises the device seams without GPU hardware.

Importing this package registers all three (the CuPy import guard fires
at *construction*, not registration, so listing backends never requires
a GPU).
"""

from .base import (
    BITWISE,
    ArrayBackend,
    EquivalenceTier,
    FactorizationHandle,
)
from .registry import (
    default_array_backend_name,
    get_array_backend,
    register_array_backend,
    registered_array_backends,
)

# Register the built-in backends (import order matters only for the
# registry side effect).
from . import cupy_backend  # noqa: E402,F401
from . import devicesim  # noqa: E402,F401
from . import numpy_backend  # noqa: E402,F401
from .devicesim import DeviceArray, DeviceSimBackend
from .numpy_backend import NumpyBackend

__all__ = [
    "ArrayBackend",
    "BITWISE",
    "DeviceArray",
    "DeviceSimBackend",
    "EquivalenceTier",
    "FactorizationHandle",
    "NumpyBackend",
    "default_array_backend_name",
    "get_array_backend",
    "register_array_backend",
    "registered_array_backends",
]
