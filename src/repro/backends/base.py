"""The :class:`ArrayBackend` protocol: the solver stack's linear-algebra
substrate as a declared, swappable dependency.

PR 7 reduced the Monte Carlo hot path to exactly two numerical seams --
the sparse base factorization behind :class:`~repro.solvers.woodbury.
WoodburySolver` (one multi-RHS backsolve per time step) and the stacked
``(S, k, k)`` batched core solve.  An :class:`ArrayBackend` owns both
seams plus the host/device memory boundary around them, so a device
runtime (CuPy) or a test double (``devicesim``) slots in without the
solver layer knowing which substrate it runs on.

Every backend *declares* its numerical contract instead of implying it:

``equivalence``
    An :class:`EquivalenceTier`.  The reference ``numpy`` backend is
    ``bitwise`` (blocked results equal the per-sample path bit for bit,
    the PR 7 contract); device backends declare an explicit ``rtol``
    tier because batched gemm corrections reorder floating-point sums
    (see DESIGN.md "Array backends" for the conditioning argument).

``correction_mode``
    ``"columns"`` applies the rank-k Woodbury corrections column by
    column (per-sample gemvs -- order-preserving, required for the
    bitwise tier); ``"gemm"`` applies them as one BLAS-3 product, the
    natural shape on devices where kernel-launch overhead dominates.
    The per-column-vs-gemm decision used to be a hard-coded loop in
    ``solve_batch``; it is a backend capability now, which turns the
    DESIGN.md conditioning argument into checked code.

Transfers between the host and the device memory space go through
:meth:`~ArrayBackend.to_device` / :meth:`~ArrayBackend.from_device`
*only*.  Each call increments the backend's :attr:`transfer_count` and
the ``solver.device_transfers`` telemetry counter together, so a test
(or an operator reading a campaign's metrics) can prove that zero
transfers happened outside the accounted seams.
"""

from collections import namedtuple

import numpy as np

from ..telemetry import tracing as telemetry

#: Declared numerical equivalence of a backend's blocked path against
#: the per-sample reference: ``kind`` is ``"bitwise"`` (``rtol == 0``)
#: or ``"rtol"`` with the guaranteed relative tolerance.
EquivalenceTier = namedtuple("EquivalenceTier", ("kind", "rtol"))

#: The bitwise tier of the CPU reference backend.
BITWISE = EquivalenceTier("bitwise", 0.0)


class FactorizationHandle:
    """A factorized base matrix with host and device solve entry points.

    ``lu`` is the underlying SuperLU object (exposed so the cache's
    legacy ``splu()`` accessor and identity-based tests keep working).
    ``solve_host`` takes and returns host ndarrays -- the scalar
    :meth:`~repro.solvers.woodbury.WoodburySolver.solve` path stays on
    the host under every backend.  ``backsolve`` takes and returns
    *device* arrays and is the blocked path's multi-RHS seam.
    """

    def __init__(self, lu):
        self.lu = lu

    def solve_host(self, rhs):
        """Solve on the host: ndarray in, ndarray out."""
        return self.lu.solve(rhs)

    def backsolve(self, rhs):
        """Multi-RHS solve in the backend's memory space."""
        raise NotImplementedError


class ArrayBackend:
    """Base class for array backends (see the module docstring).

    Concrete backends set :attr:`name`, :attr:`equivalence` and
    :attr:`correction_mode` and implement the factorization and
    transfer methods.  Device arrays only need ``.T``, ``@`` and ``-``
    (the blocked Woodbury algebra), so raw ndarrays qualify for CPU
    backends and wrapped/device arrays for the rest.
    """

    #: Registry name (also the cache-key component; see
    #: :meth:`repro.solvers.cache.FactorizationCache.factorize`).
    name = None
    #: Declared :class:`EquivalenceTier` against the per-sample path.
    equivalence = BITWISE
    #: ``"columns"`` (order-preserving gemvs) or ``"gemm"`` (BLAS-3).
    correction_mode = "columns"

    def __init__(self):
        self._transfer_count = 0

    @property
    def transfer_count(self):
        """Lifetime host<->device transfers through this backend."""
        return self._transfer_count

    def _count_transfer(self):
        # The backend-local count and the telemetry counter move in
        # lockstep; comparing them is how tests prove zero unaccounted
        # transfers.
        self._transfer_count += 1
        telemetry.increment("solver.device_transfers")

    # -- memory boundary ------------------------------------------------
    def to_device(self, array):
        """Copy a host ndarray into the backend's memory space."""
        raise NotImplementedError

    def from_device(self, array):
        """Copy a backend array back to a host ndarray."""
        raise NotImplementedError

    # -- the two numerical seams ---------------------------------------
    def factorize(self, base_matrix, symmetric=False):
        """Factorize a sparse base matrix into a
        :class:`FactorizationHandle`.  Prefer
        :meth:`repro.solvers.cache.FactorizationCache.factorize`, which
        memoizes per ``(fingerprint, symmetric, backend.name)``."""
        raise NotImplementedError

    def batched_core_solve(self, cores, rhs):
        """Solve the stacked ``(S, k, k)`` cores against ``(S, k)``
        right-hand sides.  ``cores`` is a host ndarray (assembled on the
        host either way); ``rhs`` lives in the backend's memory space
        and so does the ``(S, k)`` result."""
        raise NotImplementedError

    # -- broadcast helpers (shared-RHS fast path) -----------------------
    def broadcast_columns(self, vector, num_columns):
        """View an ``(n,)`` device vector as ``(n, num_columns)``."""
        raise NotImplementedError

    def broadcast_rows(self, vector, num_rows):
        """View a ``(k,)`` device vector as ``(num_rows, k)``."""
        raise NotImplementedError

    def __repr__(self):
        tier = self.equivalence
        return (
            f"<{type(self).__name__} name={self.name!r} "
            f"equivalence={tier.kind}:{tier.rtol:g} "
            f"correction_mode={self.correction_mode!r}>"
        )


def as_host_array(array):
    """Coerce to a host float ndarray (identity for ndarrays)."""
    return np.asarray(array, dtype=float)
