"""Structured tensor-product hexahedral grids and FIT topological operators.

The Finite Integration Technique (Section III of the paper) lives on a
staggered pair of grids: the *primary* grid carries potentials and
temperatures at its nodes, voltages and temperature drops on its edges; the
*dual* grid carries currents and heat fluxes through its facets.  For a
tensor-product primary grid the dual grid is again tensor-product and all
metric information reduces to per-direction half-widths, which is what
:mod:`repro.grid.dual` computes.

Flattening convention: x varies fastest, then y, then z (Fortran-like for
the (i, j, k) triple); edge sets are ordered x-edges, then y-edges, then
z-edges.
"""

from .dual import DualGeometry
from .indexing import GridIndexing
from .operators import (
    build_divergence,
    build_gradient,
    check_house_duality,
    directional_gradients,
)
from .refinement import geometric_spacing, refine_coordinates, snap_coordinates
from .tensor_grid import TensorGrid

__all__ = [
    "TensorGrid",
    "GridIndexing",
    "DualGeometry",
    "build_gradient",
    "build_divergence",
    "directional_gradients",
    "check_house_duality",
    "refine_coordinates",
    "snap_coordinates",
    "geometric_spacing",
]
