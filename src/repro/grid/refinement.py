"""Coordinate-array construction helpers: snapping, refinement, grading.

The package mesher needs grid lines that hit material interfaces exactly
(the FIT staircase approximation is exact for axis-aligned boxes only if
box faces coincide with grid planes).  These helpers build such coordinate
arrays.
"""

import numpy as np

from ..errors import GridError


def snap_coordinates(required, target_spacing, extent=None):
    """Build a 1D coordinate array containing all ``required`` positions.

    Between consecutive required positions the interval is subdivided
    uniformly so that no spacing exceeds ``target_spacing``.

    Parameters
    ----------
    required:
        Iterable of coordinates that must appear exactly in the result
        (material interfaces, contact positions).
    target_spacing:
        Upper bound for the spacing between neighbouring grid lines.
    extent:
        Optional ``(lo, hi)``; when given, ``lo`` and ``hi`` are added to
        the required set and values outside are rejected.
    """
    required = np.asarray(sorted(set(float(v) for v in required)), dtype=float)
    if target_spacing <= 0.0:
        raise GridError(f"target_spacing must be positive, got {target_spacing!r}")
    if extent is not None:
        lo, hi = float(extent[0]), float(extent[1])
        if np.any(required < lo - 1e-15) or np.any(required > hi + 1e-15):
            raise GridError(
                f"required coordinates {required} exceed extent ({lo}, {hi})"
            )
        required = np.asarray(sorted(set(required.tolist() + [lo, hi])))
    if required.size < 2:
        raise GridError("need at least two distinct coordinates to build an axis")
    # Merge positions closer than a ppm of the span; duplicated interfaces
    # (e.g. chip edge == pad edge) must not create zero-width cells.
    span = required[-1] - required[0]
    merged = [required[0]]
    for value in required[1:]:
        if value - merged[-1] > 1.0e-9 * span:
            merged.append(value)
    required = np.asarray(merged)

    pieces = []
    for left, right in zip(required[:-1], required[1:]):
        subdivisions = max(1, int(np.ceil((right - left) / target_spacing)))
        pieces.append(np.linspace(left, right, subdivisions + 1)[:-1])
    pieces.append(required[-1:])
    return np.concatenate(pieces)


def refine_coordinates(coordinates, factor=2):
    """Uniformly refine a coordinate array by splitting every interval.

    ``factor = 2`` inserts one midpoint per interval, etc.  Used by the
    mesh-convergence ablation.
    """
    coordinates = np.asarray(coordinates, dtype=float)
    factor = int(factor)
    if factor < 1:
        raise GridError(f"refinement factor must be >= 1, got {factor}")
    if factor == 1:
        return coordinates.copy()
    pieces = []
    for left, right in zip(coordinates[:-1], coordinates[1:]):
        pieces.append(np.linspace(left, right, factor + 1)[:-1])
    pieces.append(coordinates[-1:])
    return np.concatenate(pieces)


def geometric_spacing(start, stop, first_step, ratio, max_points=10_000):
    """Geometrically graded coordinates from ``start`` towards ``stop``.

    Each interval is ``ratio`` times the previous one; the last interval is
    shortened to land exactly on ``stop``.  Useful for boundary layers near
    heat sources.
    """
    start = float(start)
    stop = float(stop)
    if stop <= start:
        raise GridError("geometric_spacing needs stop > start")
    if first_step <= 0.0 or ratio <= 0.0:
        raise GridError("first_step and ratio must be positive")
    points = [start]
    step = float(first_step)
    for _ in range(max_points):
        nxt = points[-1] + step
        if nxt >= stop - 1e-12 * (stop - start):
            break
        points.append(nxt)
        step *= ratio
    points.append(stop)
    return np.asarray(points)
