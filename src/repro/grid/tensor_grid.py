"""The tensor-product hexahedral primary grid."""

import numpy as np

from ..errors import GridError


def _validate_axis(name, coordinates):
    coordinates = np.asarray(coordinates, dtype=float)
    if coordinates.ndim != 1:
        raise GridError(f"{name}-coordinates must be a 1D array")
    if coordinates.size < 2:
        raise GridError(f"{name}-axis needs at least 2 nodes, got {coordinates.size}")
    if not np.all(np.isfinite(coordinates)):
        raise GridError(f"{name}-coordinates contain non-finite values")
    if not np.all(np.diff(coordinates) > 0.0):
        raise GridError(f"{name}-coordinates must be strictly increasing")
    return coordinates


class TensorGrid:
    """A 3D tensor-product grid defined by three monotone coordinate arrays.

    Nodes are the Cartesian product of the coordinate arrays.  The node with
    integer coordinates ``(i, j, k)`` has the flat index
    ``i + nx * j + nx * ny * k`` (x fastest).

    Attributes
    ----------
    x, y, z:
        The 1D coordinate arrays (metres).
    shape:
        ``(nx, ny, nz)`` node counts per direction.
    """

    def __init__(self, x, y, z):
        self.x = _validate_axis("x", x)
        self.y = _validate_axis("y", y)
        self.z = _validate_axis("z", z)

    # ------------------------------------------------------------------
    # Counts
    # ------------------------------------------------------------------
    @property
    def shape(self):
        """Node counts ``(nx, ny, nz)``."""
        return (self.x.size, self.y.size, self.z.size)

    @property
    def cell_shape(self):
        """Cell counts ``(nx - 1, ny - 1, nz - 1)``."""
        return (self.x.size - 1, self.y.size - 1, self.z.size - 1)

    @property
    def num_nodes(self):
        """Total number of primary nodes."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def num_cells(self):
        """Total number of primary cells."""
        cx, cy, cz = self.cell_shape
        return cx * cy * cz

    @property
    def num_edges_per_direction(self):
        """Edge counts ``(n_ex, n_ey, n_ez)`` for the three directions."""
        nx, ny, nz = self.shape
        return ((nx - 1) * ny * nz, nx * (ny - 1) * nz, nx * ny * (nz - 1))

    @property
    def num_edges(self):
        """Total number of primary edges."""
        return sum(self.num_edges_per_direction)

    # ------------------------------------------------------------------
    # Spacings and coordinates
    # ------------------------------------------------------------------
    @property
    def dx(self):
        """Cell widths along x, shape ``(nx - 1,)``."""
        return np.diff(self.x)

    @property
    def dy(self):
        """Cell widths along y, shape ``(ny - 1,)``."""
        return np.diff(self.y)

    @property
    def dz(self):
        """Cell widths along z, shape ``(nz - 1,)``."""
        return np.diff(self.z)

    def node_coordinates(self):
        """All node coordinates, shape ``(num_nodes, 3)``, x fastest."""
        zz, yy, xx = np.meshgrid(self.z, self.y, self.x, indexing="ij")
        return np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])

    def cell_centers(self):
        """All cell-center coordinates, shape ``(num_cells, 3)``."""
        cx = 0.5 * (self.x[:-1] + self.x[1:])
        cy = 0.5 * (self.y[:-1] + self.y[1:])
        cz = 0.5 * (self.z[:-1] + self.z[1:])
        zz, yy, xx = np.meshgrid(cz, cy, cx, indexing="ij")
        return np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])

    def cell_volumes(self):
        """Primary cell volumes, shape ``(num_cells,)``."""
        vol = (
            self.dz[:, None, None] * self.dy[None, :, None] * self.dx[None, None, :]
        )
        return vol.ravel()

    @property
    def extent(self):
        """Bounding box ``((x0, x1), (y0, y1), (z0, z1))``."""
        return (
            (float(self.x[0]), float(self.x[-1])),
            (float(self.y[0]), float(self.y[-1])),
            (float(self.z[0]), float(self.z[-1])),
        )

    @property
    def total_volume(self):
        """Volume of the bounding box (equals the sum of cell volumes)."""
        (x0, x1), (y0, y1), (z0, z1) = self.extent
        return (x1 - x0) * (y1 - y0) * (z1 - z0)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, extent, shape):
        """Uniform grid over ``extent = ((x0, x1), (y0, y1), (z0, z1))``.

        ``shape`` is the node count per direction.
        """
        (x0, x1), (y0, y1), (z0, z1) = extent
        nx, ny, nz = shape
        return cls(
            np.linspace(x0, x1, int(nx)),
            np.linspace(y0, y1, int(ny)),
            np.linspace(z0, z1, int(nz)),
        )

    def __repr__(self):
        nx, ny, nz = self.shape
        return (
            f"TensorGrid(shape=({nx}, {ny}, {nz}), nodes={self.num_nodes}, "
            f"cells={self.num_cells})"
        )

    def __eq__(self, other):
        if not isinstance(other, TensorGrid):
            return NotImplemented
        return (
            np.array_equal(self.x, other.x)
            and np.array_equal(self.y, other.y)
            and np.array_equal(self.z, other.z)
        )
