"""Flat-index arithmetic for nodes, edges and cells of a tensor grid.

The flattening convention (x fastest, then y, then z) is fixed here and
shared by every operator builder.  Keeping the arithmetic in a single class
means the rest of the library never manipulates raw strides.
"""

import numpy as np

from ..errors import GridError


class GridIndexing:
    """Index helper bound to a :class:`~repro.grid.tensor_grid.TensorGrid`."""

    def __init__(self, grid):
        self.grid = grid
        self.nx, self.ny, self.nz = grid.shape

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def node_index(self, i, j, k):
        """Flat node index of integer coordinates ``(i, j, k)``.

        Accepts scalars or arrays; negative indices are rejected (they would
        silently wrap, which is never intended for grid arithmetic).
        """
        i = np.asarray(i)
        j = np.asarray(j)
        k = np.asarray(k)
        if (
            np.any(i < 0)
            or np.any(j < 0)
            or np.any(k < 0)
            or np.any(i >= self.nx)
            or np.any(j >= self.ny)
            or np.any(k >= self.nz)
        ):
            raise GridError(
                f"node index out of range: ({i}, {j}, {k}) for shape "
                f"({self.nx}, {self.ny}, {self.nz})"
            )
        result = i + self.nx * (j + self.ny * k)
        if result.ndim == 0:
            return int(result)
        return result.astype(np.int64)

    def node_ijk(self, flat):
        """Inverse of :meth:`node_index`."""
        flat = np.asarray(flat)
        if np.any(flat < 0) or np.any(flat >= self.grid.num_nodes):
            raise GridError(f"flat node index out of range: {flat}")
        k, rem = np.divmod(flat, self.nx * self.ny)
        j, i = np.divmod(rem, self.nx)
        if flat.ndim == 0:
            return (int(i), int(j), int(k))
        return i.astype(np.int64), j.astype(np.int64), k.astype(np.int64)

    def nearest_node(self, point):
        """Flat index of the grid node closest to ``point = (x, y, z)``."""
        x, y, z = point
        i = int(np.argmin(np.abs(self.grid.x - float(x))))
        j = int(np.argmin(np.abs(self.grid.y - float(y))))
        k = int(np.argmin(np.abs(self.grid.z - float(z))))
        return self.node_index(i, j, k)

    def nodes_in_box(self, box):
        """Flat indices of all nodes inside an axis-aligned box.

        ``box = ((x0, x1), (y0, y1), (z0, z1))``; boundaries are inclusive
        up to a relative tolerance so that nodes snapped exactly onto a
        material interface are found reliably.
        """
        (x0, x1), (y0, y1), (z0, z1) = box
        tol_x = 1.0e-9 * max(abs(x0), abs(x1), 1.0e-30)
        tol_y = 1.0e-9 * max(abs(y0), abs(y1), 1.0e-30)
        tol_z = 1.0e-9 * max(abs(z0), abs(z1), 1.0e-30)
        sel_x = np.nonzero(
            (self.grid.x >= x0 - tol_x) & (self.grid.x <= x1 + tol_x)
        )[0]
        sel_y = np.nonzero(
            (self.grid.y >= y0 - tol_y) & (self.grid.y <= y1 + tol_y)
        )[0]
        sel_z = np.nonzero(
            (self.grid.z >= z0 - tol_z) & (self.grid.z <= z1 + tol_z)
        )[0]
        if sel_x.size == 0 or sel_y.size == 0 or sel_z.size == 0:
            return np.empty(0, dtype=np.int64)
        ii, jj, kk = np.meshgrid(sel_x, sel_y, sel_z, indexing="ij")
        return self.node_index(ii.ravel(), jj.ravel(), kk.ravel())

    def boundary_nodes(self, face):
        """Flat node indices of one of the six boundary faces.

        ``face`` is one of ``"x-"``, ``"x+"``, ``"y-"``, ``"y+"``, ``"z-"``,
        ``"z+"``.
        """
        faces = {"x-", "x+", "y-", "y+", "z-", "z+"}
        if face not in faces:
            raise GridError(f"unknown face {face!r}; expected one of {sorted(faces)}")
        axis = face[0]
        side = face[1]
        ranges = {
            "x": np.arange(self.nx),
            "y": np.arange(self.ny),
            "z": np.arange(self.nz),
        }
        fixed = {"x": self.nx - 1, "y": self.ny - 1, "z": self.nz - 1}
        if side == "-":
            ranges[axis] = np.array([0])
        else:
            ranges[axis] = np.array([fixed[axis]])
        ii, jj, kk = np.meshgrid(ranges["x"], ranges["y"], ranges["z"], indexing="ij")
        return self.node_index(ii.ravel(), jj.ravel(), kk.ravel())

    def all_boundary_nodes(self):
        """Flat indices of every node on the grid boundary (deduplicated)."""
        faces = ["x-", "x+", "y-", "y+", "z-", "z+"]
        indices = np.concatenate([self.boundary_nodes(face) for face in faces])
        return np.unique(indices)

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    def cell_index(self, i, j, k):
        """Flat cell index of the cell with lowest corner ``(i, j, k)``."""
        cx, cy, cz = self.grid.cell_shape
        i = np.asarray(i)
        j = np.asarray(j)
        k = np.asarray(k)
        if (
            np.any(i < 0)
            or np.any(j < 0)
            or np.any(k < 0)
            or np.any(i >= cx)
            or np.any(j >= cy)
            or np.any(k >= cz)
        ):
            raise GridError(
                f"cell index out of range: ({i}, {j}, {k}) for cell shape "
                f"({cx}, {cy}, {cz})"
            )
        result = i + cx * (j + cy * k)
        if result.ndim == 0:
            return int(result)
        return result.astype(np.int64)

    def cells_in_box(self, box):
        """Flat indices of all cells whose *center* lies inside the box."""
        (x0, x1), (y0, y1), (z0, z1) = box
        cx = 0.5 * (self.grid.x[:-1] + self.grid.x[1:])
        cy = 0.5 * (self.grid.y[:-1] + self.grid.y[1:])
        cz = 0.5 * (self.grid.z[:-1] + self.grid.z[1:])
        sel_x = np.nonzero((cx >= x0) & (cx <= x1))[0]
        sel_y = np.nonzero((cy >= y0) & (cy <= y1))[0]
        sel_z = np.nonzero((cz >= z0) & (cz <= z1))[0]
        if sel_x.size == 0 or sel_y.size == 0 or sel_z.size == 0:
            return np.empty(0, dtype=np.int64)
        ii, jj, kk = np.meshgrid(sel_x, sel_y, sel_z, indexing="ij")
        return self.cell_index(ii.ravel(), jj.ravel(), kk.ravel())

    def node_field_as_array(self, values):
        """Reshape a flat node field to ``(nx, ny, nz)`` (index order i,j,k)."""
        values = np.asarray(values)
        if values.size != self.grid.num_nodes:
            raise GridError(
                f"field has {values.size} entries, expected {self.grid.num_nodes}"
            )
        return values.reshape(self.nz, self.ny, self.nx).transpose(2, 1, 0)
