"""Dual-grid metric quantities for a tensor-product primary grid.

For a mutually orthogonal staggered grid pair every primary edge pierces
exactly one dual facet and every primary node owns one dual cell.  All dual
metrics factorize into per-direction *half-width overlaps*:

* ``overlap_1d`` is the ``(n, n - 1)`` matrix whose entry ``(i, c)`` is the
  length of the overlap between node i's dual interval and primary cell c
  (half the cell width when c is adjacent to i, zero otherwise);
* row sums of ``overlap_1d`` are the dual interval widths;
* column sums recover the primary cell widths, which is the discrete
  partition-of-unity property that makes volume and power bookkeeping
  exactly conservative.
"""

import numpy as np
import scipy.sparse as sp

from ..errors import GridError


def overlap_1d(coordinates):
    """Node-cell overlap matrix for one coordinate direction.

    Shape ``(n, n - 1)``; entry ``(i, c)`` is ``dx_c / 2`` if ``c`` is the
    cell left (``c = i - 1``) or right (``c = i``) of node ``i``.
    """
    coordinates = np.asarray(coordinates, dtype=float)
    n = coordinates.size
    if n < 2:
        raise GridError("overlap matrix needs at least 2 nodes")
    widths = np.diff(coordinates)
    rows = []
    cols = []
    vals = []
    for i in range(n):
        if i - 1 >= 0:
            rows.append(i)
            cols.append(i - 1)
            vals.append(0.5 * widths[i - 1])
        if i <= n - 2:
            rows.append(i)
            cols.append(i)
            vals.append(0.5 * widths[i])
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n - 1))


def dual_widths(coordinates):
    """Dual interval widths per node (half-cell at each boundary node)."""
    coordinates = np.asarray(coordinates, dtype=float)
    widths = np.diff(coordinates)
    dual = np.zeros(coordinates.size)
    dual[:-1] += 0.5 * widths
    dual[1:] += 0.5 * widths
    return dual


class DualGeometry:
    """All dual-grid metrics of a :class:`~repro.grid.tensor_grid.TensorGrid`.

    The constructor precomputes the per-direction overlap matrices; the 3D
    operators (node-cell overlap volumes, edge-facet weights) are cached on
    first use because they are the building blocks of every material matrix.
    """

    def __init__(self, grid):
        self.grid = grid
        self.overlap_x = overlap_1d(grid.x)
        self.overlap_y = overlap_1d(grid.y)
        self.overlap_z = overlap_1d(grid.z)
        self.dual_dx = dual_widths(grid.x)
        self.dual_dy = dual_widths(grid.y)
        self.dual_dz = dual_widths(grid.z)
        self._node_cell_overlap = None
        self._facet_weights = None

    # ------------------------------------------------------------------
    # Dual cell volumes
    # ------------------------------------------------------------------
    def dual_volumes(self):
        """Dual cell volume per node, shape ``(num_nodes,)``.

        Sums to the total grid volume exactly.
        """
        vol = (
            self.dual_dz[:, None, None]
            * self.dual_dy[None, :, None]
            * self.dual_dx[None, None, :]
        )
        return vol.ravel()

    def node_cell_overlap(self):
        """Sparse node-by-cell overlap-volume operator ``O``.

        ``O[j, k]`` is the volume shared by node j's dual cell and primary
        cell k.  Column sums equal primary cell volumes; row sums equal dual
        cell volumes.  ``O @ q_cells`` therefore distributes a cell quantity
        to nodes conservatively, which is how both the heat capacitance
        matrix and the Joule power lumping are built.
        """
        if self._node_cell_overlap is None:
            self._node_cell_overlap = sp.kron(
                self.overlap_z, sp.kron(self.overlap_y, self.overlap_x)
            ).tocsr()
        return self._node_cell_overlap

    # ------------------------------------------------------------------
    # Dual facet areas and edge weights
    # ------------------------------------------------------------------
    def dual_facet_areas(self):
        """Dual facet area per primary edge, ordered like the gradient rows."""
        nx, ny, nz = self.grid.shape
        area_x = (
            self.dual_dz[:, None, None]
            * self.dual_dy[None, :, None]
            * np.ones((1, 1, nx - 1))
        ).ravel()
        area_y = (
            self.dual_dz[:, None, None]
            * np.ones((1, ny - 1, 1))
            * self.dual_dx[None, None, :]
        ).ravel()
        area_z = (
            np.ones((nz - 1, 1, 1))
            * self.dual_dy[None, :, None]
            * self.dual_dx[None, None, :]
        ).ravel()
        return np.concatenate([area_x, area_y, area_z])

    def facet_weight_operators(self):
        """Per-direction edge-by-cell area-overlap operators ``(W_x, W_y, W_z)``.

        ``W_x[e, k]`` is the area that primary cell k contributes to the
        dual facet of x-edge e; row sums equal the dual facet areas.  The
        conductivity seen by an edge is then the area-weighted average
        ``(W @ sigma_cells) / area``, exactly the "volumetric averaging of
        the primary cells touching the considered primary edge" of the
        paper.
        """
        if self._facet_weights is None:
            nx, ny, nz = self.grid.shape
            ix_cells = sp.identity(nx - 1, format="csr")
            iy_cells = sp.identity(ny - 1, format="csr")
            iz_cells = sp.identity(nz - 1, format="csr")
            w_x = sp.kron(self.overlap_z, sp.kron(self.overlap_y, ix_cells)).tocsr()
            w_y = sp.kron(self.overlap_z, sp.kron(iy_cells, self.overlap_x)).tocsr()
            w_z = sp.kron(iz_cells, sp.kron(self.overlap_y, self.overlap_x)).tocsr()
            self._facet_weights = (w_x, w_y, w_z)
        return self._facet_weights

    # ------------------------------------------------------------------
    # Boundary areas (for convection / radiation)
    # ------------------------------------------------------------------
    def boundary_areas(self, face):
        """Exposed dual areas of the nodes on one boundary face.

        Returns ``(node_indices, areas)``.  For face ``"z+"`` for example,
        the exposed area of a node is the product of its dual widths in x
        and y; corner nodes therefore get quarter areas automatically, and
        the per-face areas sum exactly to the face area.
        """
        from .indexing import GridIndexing

        indexing = GridIndexing(self.grid)
        nodes = indexing.boundary_nodes(face)
        i, j, k = indexing.node_ijk(nodes)
        axis = face[0]
        if axis == "x":
            areas = self.dual_dy[j] * self.dual_dz[k]
        elif axis == "y":
            areas = self.dual_dx[i] * self.dual_dz[k]
        else:
            areas = self.dual_dx[i] * self.dual_dy[j]
        return nodes, areas

    def all_boundary_areas(self):
        """Total exposed area per node over all six faces.

        Returns a dense array of length ``num_nodes``; interior nodes are
        zero, edge/corner nodes accumulate the areas of every face they lie
        on.  This is the area vector used by the convective and radiative
        boundary terms ``Q_bnd`` of the paper.
        """
        total = np.zeros(self.grid.num_nodes)
        for face in ("x-", "x+", "y-", "y+", "z-", "z+"):
            nodes, areas = self.boundary_areas(face)
            np.add.at(total, nodes, areas)
        return total
