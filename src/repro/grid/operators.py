"""FIT topological operators: discrete gradient and dual divergence.

Following Section III-A of the paper, voltages on primary edges are
``e = -G Phi`` and the dual divergence accumulates facet fluxes into dual
cells.  Grid duality gives ``G = -S_dual^T``, which is the *electrothermal
house* consistency property (Fig. 1 of the paper) and is checked by
:func:`check_house_duality`.

All operators are ``scipy.sparse`` matrices assembled from Kronecker
products of 1D incidence matrices, so assembly is O(number of edges).
"""

import numpy as np
import scipy.sparse as sp

from ..errors import GridError


def _difference_1d(n):
    """1D incidence matrix of shape ``(n - 1, n)``: row i = node i+1 - node i."""
    if n < 2:
        raise GridError(f"difference matrix needs n >= 2, got {n}")
    return sp.diags([-np.ones(n - 1), np.ones(n - 1)], [0, 1], shape=(n - 1, n)).tocsr()


def directional_gradients(grid):
    """The three per-direction gradient blocks ``(G_x, G_y, G_z)``.

    ``G_x`` maps node values to x-edge differences (value at the +x node
    minus value at the -x node); analogously for y and z.  Stacking them
    vertically yields the full discrete gradient.
    """
    nx, ny, nz = grid.shape
    ix = sp.identity(nx, format="csr")
    iy = sp.identity(ny, format="csr")
    iz = sp.identity(nz, format="csr")
    gx = sp.kron(iz, sp.kron(iy, _difference_1d(nx))).tocsr()
    gy = sp.kron(iz, sp.kron(_difference_1d(ny), ix)).tocsr()
    gz = sp.kron(_difference_1d(nz), sp.kron(iy, ix)).tocsr()
    # Kronecker products store explicit zeros; drop them so structural
    # invariants (two entries per row) hold exactly.
    for block in (gx, gy, gz):
        block.eliminate_zeros()
    return gx, gy, gz


def build_gradient(grid):
    """Full discrete gradient ``G`` of shape ``(num_edges, num_nodes)``.

    Rows are ordered x-edges, then y-edges, then z-edges, matching the
    flattening convention of :class:`~repro.grid.tensor_grid.TensorGrid`.
    """
    gx, gy, gz = directional_gradients(grid)
    return sp.vstack([gx, gy, gz], format="csr")


def build_divergence(grid):
    """Dual divergence ``S_dual`` of shape ``(num_nodes, num_edges)``.

    Constructed through the duality relation ``S_dual = -G^T`` so that the
    house property holds by construction; :func:`check_house_duality`
    verifies it independently entry-by-entry.
    """
    return (-build_gradient(grid).T).tocsr()


def check_house_duality(grid, tolerance=0.0):
    """Verify the discrete electrothermal house property ``G = -S_dual^T``.

    Returns the maximum absolute entry-wise deviation.  With exact integer
    incidence entries the deviation is exactly zero; ``tolerance`` exists
    for callers that want a boolean check.

    This is the structural content of Fig. 1 of the paper: the same
    topological operators serve the Maxwell house (left) and the thermal
    house (right).
    """
    gradient = build_gradient(grid)
    divergence = build_divergence(grid)
    deviation = (gradient + divergence.T).tocoo()
    if deviation.nnz == 0:
        max_deviation = 0.0
    else:
        max_deviation = float(np.max(np.abs(deviation.data)))
    if tolerance is not None and max_deviation > tolerance:
        raise GridError(
            f"house duality violated: max |G + S_dual^T| = {max_deviation}"
        )
    return max_deviation


def gradient_row_sums(grid):
    """Row sums of G (all exactly zero: constants lie in the kernel).

    The kernel property is what makes the pure-Neumann thermal stiffness
    singular, which in turn is why the thermal problem always needs either
    a capacitance term (transient) or a Robin/Dirichlet boundary.
    """
    gradient = build_gradient(grid)
    return np.asarray(gradient.sum(axis=1)).ravel()


def edge_lengths(grid):
    """Primary edge lengths, ordered like the gradient rows."""
    nx, ny, nz = grid.shape
    lx = np.tile(grid.dx, ny * nz)
    ly = np.tile(np.repeat(grid.dy, nx), nz)
    lz = np.repeat(grid.dz, nx * ny)
    return np.concatenate([lx, ly, lz])


def edge_directions(grid):
    """Integer direction label per edge: 0 for x, 1 for y, 2 for z."""
    n_ex, n_ey, n_ez = grid.num_edges_per_direction
    return np.concatenate(
        [np.zeros(n_ex, dtype=int), np.ones(n_ey, dtype=int),
         2 * np.ones(n_ez, dtype=int)]
    )
