"""Bonding wire models: geometry, lumped electrothermal elements, failure.

This package implements Section III-B (the lumped element wire model and
its stamps) and Section IV-B (the uncertain length geometry) of the paper,
plus the analytic steady-state baseline the paper cites (Noebauer & Moser
style) and a wire-sizing calculator ("bonding wire calculators allow to
estimate appropriate parameters by simulation", Section I).
"""

from .calculator import BondWireCalculator, SizingResult
from .degradation import ArrheniusDegradationModel, CycleCountingModel
from .failure import (
    FailureAssessment,
    assess_failure,
    first_crossing_time,
    preece_fusing_current,
)
from .geometry import (
    WireLengthModel,
    bending_elongation_arc,
    bending_elongation_triangle,
    misplacement_elongation,
    relative_elongation,
    total_length,
)
from .lumped import LumpedBondWire, WireStamp, stamp_conductance_matrix
from .models import AnalyticWireModel, FinWireSolution

__all__ = [
    "LumpedBondWire",
    "WireStamp",
    "stamp_conductance_matrix",
    "WireLengthModel",
    "relative_elongation",
    "total_length",
    "misplacement_elongation",
    "bending_elongation_arc",
    "bending_elongation_triangle",
    "AnalyticWireModel",
    "FinWireSolution",
    "BondWireCalculator",
    "SizingResult",
    "FailureAssessment",
    "assess_failure",
    "first_crossing_time",
    "preece_fusing_current",
    "ArrheniusDegradationModel",
    "CycleCountingModel",
]
