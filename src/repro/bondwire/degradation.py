"""Thermal degradation dynamics of bonding wires.

The paper's failure criterion is a static threshold: "a bonding wire fails
mainly due to the degradation of the surrounding mold", marked by
``T_critical = 523 K``.  Its conclusion announces "more sophisticated
bonding wire models" as future work.  This module provides that next step:
a kinetic damage-accumulation model on top of the simulated temperature
traces.

Model
-----
Mold/interface degradation is a thermally activated process, so the local
damage rate follows an Arrhenius law

``dD/dt = A exp(-E_a / (k_B T(t)))``

normalized such that holding the wire at the critical temperature
``T_ref`` consumes one lifetime in ``t_ref`` seconds.  Damage accumulates
monotonically (Miner's rule); the wire is considered failed when
``D >= 1``.  The classic static criterion is recovered in the limit of a
steep activation energy.

This stays a *model*: the constants are normalized to the paper's
threshold semantics, not fitted to proprietary reliability data (none is
published).  The API is deliberately trace-based so measured temperature
traces can be fed in unchanged -- the "comparison to bonding wire
measurements" hook of the paper's conclusion.
"""

import numpy as np

from ..constants import T_CRITICAL_DEFAULT
from ..errors import BondWireError

#: Boltzmann constant [eV/K].
BOLTZMANN_EV = 8.617333262e-5


class ArrheniusDegradationModel:
    """Arrhenius damage accumulation over a temperature trace.

    Parameters
    ----------
    activation_energy:
        ``E_a`` in eV.  Epoxy mold compounds degrade with activation
        energies around 0.7-1.2 eV; the default 0.8 eV is mid-range.
    reference_temperature:
        Temperature at which one lifetime is consumed in
        ``reference_lifetime`` seconds (default: the paper's 523 K).
    reference_lifetime:
        Lifetime at the reference temperature [s].
    """

    def __init__(
        self,
        activation_energy=0.8,
        reference_temperature=T_CRITICAL_DEFAULT,
        reference_lifetime=1.0,
    ):
        activation_energy = float(activation_energy)
        reference_temperature = float(reference_temperature)
        reference_lifetime = float(reference_lifetime)
        if activation_energy <= 0.0:
            raise BondWireError(
                f"activation energy must be positive, got {activation_energy!r}"
            )
        if reference_temperature <= 0.0:
            raise BondWireError("reference temperature must be positive")
        if reference_lifetime <= 0.0:
            raise BondWireError("reference lifetime must be positive")
        self.activation_energy = activation_energy
        self.reference_temperature = reference_temperature
        self.reference_lifetime = reference_lifetime
        # Prefactor normalized so rate(T_ref) = 1 / t_ref.
        self._prefactor = (
            np.exp(
                activation_energy
                / (BOLTZMANN_EV * reference_temperature)
            )
            / reference_lifetime
        )

    def damage_rate(self, temperature):
        """Instantaneous damage rate [1/s] at the given temperature(s)."""
        temperature = np.asarray(temperature, dtype=float)
        if np.any(temperature <= 0.0):
            raise BondWireError("temperatures must be positive")
        rate = self._prefactor * np.exp(
            -self.activation_energy / (BOLTZMANN_EV * temperature)
        )
        if temperature.ndim == 0:
            return float(rate)
        return rate

    def acceleration_factor(self, temperature, baseline=None):
        """Rate ratio vs. a baseline temperature (default: T_ref)."""
        if baseline is None:
            baseline = self.reference_temperature
        return self.damage_rate(temperature) / self.damage_rate(baseline)

    def accumulate(self, times, temperatures, initial_damage=0.0):
        """Integrate the damage over a temperature trace (trapezoid rule).

        Returns the damage trace ``D(t)`` (same length as ``times``),
        starting at ``initial_damage``.
        """
        times = np.asarray(times, dtype=float)
        temperatures = np.asarray(temperatures, dtype=float)
        if times.shape != temperatures.shape:
            raise BondWireError("times and temperatures must share a shape")
        if times.size < 1:
            raise BondWireError("need at least one time point")
        if np.any(np.diff(times) <= 0.0):
            raise BondWireError("times must be strictly increasing")
        rates = self.damage_rate(temperatures)
        damage = np.empty_like(times)
        damage[0] = float(initial_damage)
        if times.size > 1:
            increments = 0.5 * (rates[1:] + rates[:-1]) * np.diff(times)
            damage[1:] = damage[0] + np.cumsum(increments)
        return damage

    def time_to_failure(self, times, temperatures, threshold=1.0):
        """First time ``D(t)`` reaches ``threshold`` (None if never).

        Linear interpolation between trace points, mirroring the
        first-crossing semantics of the static criterion.
        """
        damage = self.accumulate(times, temperatures)
        from .failure import first_crossing_time

        return first_crossing_time(times, damage, float(threshold))

    def constant_temperature_lifetime(self, temperature):
        """Closed-form lifetime [s] when held at a constant temperature."""
        return 1.0 / self.damage_rate(temperature)

    def __repr__(self):
        return (
            f"ArrheniusDegradationModel(Ea={self.activation_energy!r} eV, "
            f"Tref={self.reference_temperature!r} K, "
            f"tref={self.reference_lifetime!r} s)"
        )


class CycleCountingModel:
    """Thermal-cycling damage via rainflow-free peak/valley counting.

    Wire-bond lifetime under cycling is commonly modeled with a
    Coffin-Manson law ``N_f = C * dT^(-m)``: the number of cycles to
    failure falls as a power of the temperature swing.  This class
    extracts swings from a temperature trace (successive local extrema)
    and accumulates ``sum 1/N_f(dT_i)``.
    """

    def __init__(self, coefficient=1.0e7, exponent=2.0, minimum_swing=1.0):
        coefficient = float(coefficient)
        exponent = float(exponent)
        minimum_swing = float(minimum_swing)
        if coefficient <= 0.0 or exponent <= 0.0:
            raise BondWireError(
                "Coffin-Manson coefficient and exponent must be positive"
            )
        if minimum_swing <= 0.0:
            raise BondWireError("minimum swing must be positive")
        self.coefficient = coefficient
        self.exponent = exponent
        self.minimum_swing = minimum_swing

    def cycles_to_failure(self, swing):
        """Coffin-Manson ``N_f = C * dT^-m`` for one swing [K]."""
        swing = float(swing)
        if swing <= 0.0:
            raise BondWireError(f"swing must be positive, got {swing!r}")
        return self.coefficient * swing ** (-self.exponent)

    def extract_swings(self, temperatures):
        """Temperature swings between successive local extrema.

        Swings below ``minimum_swing`` are ignored (measurement noise).
        """
        temperatures = np.asarray(temperatures, dtype=float).ravel()
        if temperatures.size < 2:
            return np.empty(0)
        extrema = [temperatures[0]]
        for index in range(1, temperatures.size - 1):
            left = temperatures[index] - temperatures[index - 1]
            right = temperatures[index + 1] - temperatures[index]
            if left * right < 0.0:
                extrema.append(temperatures[index])
        extrema.append(temperatures[-1])
        swings = np.abs(np.diff(extrema))
        return swings[swings >= self.minimum_swing]

    def damage(self, temperatures):
        """Accumulated cycling damage of one trace (Miner's rule)."""
        swings = self.extract_swings(temperatures)
        if swings.size == 0:
            return 0.0
        cycles = self.coefficient * swings ** (-self.exponent)
        return float(np.sum(1.0 / cycles))

    def __repr__(self):
        return (
            f"CycleCountingModel(C={self.coefficient!r}, "
            f"m={self.exponent!r})"
        )
