"""Wire length geometry (Section IV-B, Fig. 4 of the paper).

The true length of a bonded wire decomposes as

``L = d + delta_s + delta_h``

with ``d`` the direct pad-to-chip distance (Fig. 4a), ``delta_s`` the
elongation due to misplacement on the contact pad (Fig. 4b) and
``delta_h`` the elongation due to bending/looping (Fig. 4c).  The paper's
uncertain quantity is the *relative elongation*

``delta = (L - d) / L``,

fitted to N(0.17, 0.048^2) from 12 X-ray samples (Fig. 5).
"""

import numpy as np

from ..errors import BondWireError


def total_length(direct_distance, misplacement=0.0, bending=0.0):
    """Total wire length ``L = d + delta_s + delta_h`` [m]."""
    direct_distance = float(direct_distance)
    misplacement = float(misplacement)
    bending = float(bending)
    if direct_distance <= 0.0:
        raise BondWireError(
            f"direct distance must be positive, got {direct_distance!r}"
        )
    if misplacement < 0.0 or bending < 0.0:
        raise BondWireError("elongations must be non-negative")
    return direct_distance + misplacement + bending


def relative_elongation(direct_distance, length):
    """Relative elongation ``delta = (L - d) / L`` (dimensionless)."""
    direct_distance = float(direct_distance)
    length = float(length)
    if length <= 0.0 or direct_distance <= 0.0:
        raise BondWireError("lengths must be positive")
    if length < direct_distance:
        raise BondWireError(
            f"wire length {length} shorter than direct distance "
            f"{direct_distance}"
        )
    return (length - direct_distance) / length


def length_from_elongation(direct_distance, delta):
    """Invert ``delta = (L - d)/L`` to ``L = d / (1 - delta)``.

    This is how a sampled delta is turned back into a wire length inside
    the Monte Carlo loop.  ``delta`` must be below 1 (a delta of 1 would
    mean an infinitely long wire); negative deltas (wire shorter than the
    direct distance) are clipped to 0 because they are geometrically
    impossible -- the paper's normal distribution technically allows them
    with probability ~2e-4.
    """
    direct_distance = float(direct_distance)
    if direct_distance <= 0.0:
        raise BondWireError(
            f"direct distance must be positive, got {direct_distance!r}"
        )
    delta = np.asarray(delta, dtype=float)
    if np.any(delta >= 1.0):
        raise BondWireError(f"relative elongation must be < 1, got {delta}")
    delta = np.clip(delta, 0.0, None)
    result = direct_distance / (1.0 - delta)
    if result.ndim == 0:
        return float(result)
    return result


def misplacement_elongation(direct_distance, lateral_offset):
    """Elongation ``delta_s`` from a lateral bonding offset (Fig. 4b).

    The corrected distance is the hypotenuse
    ``D = sqrt(d^2 + offset^2)``; the elongation is ``D - d``.
    """
    direct_distance = float(direct_distance)
    lateral_offset = float(lateral_offset)
    if direct_distance <= 0.0:
        raise BondWireError("direct distance must be positive")
    corrected = np.hypot(direct_distance, lateral_offset)
    return corrected - direct_distance


def bending_elongation_triangle(span, peak_height):
    """Elongation ``delta_h`` of a triangular (tent) loop of given height.

    The wire goes straight up to height ``h`` at mid-span:
    ``L = 2 sqrt((D/2)^2 + h^2)``, elongation ``L - D``.
    """
    span = float(span)
    peak_height = float(peak_height)
    if span <= 0.0:
        raise BondWireError("span must be positive")
    if peak_height < 0.0:
        raise BondWireError("peak height must be non-negative")
    length = 2.0 * np.hypot(0.5 * span, peak_height)
    return length - span


def bending_elongation_arc(span, peak_height):
    """Elongation of a circular-arc loop with apex height ``h`` (Fig. 4c).

    The arc through the two end points with sagitta ``h`` has radius
    ``R = (h^2 + (D/2)^2) / (2h)`` and arc length ``2 R asin(D / (2R))``.
    For ``h -> 0`` this degenerates to the straight wire.
    """
    span = float(span)
    peak_height = float(peak_height)
    if span <= 0.0:
        raise BondWireError("span must be positive")
    if peak_height < 0.0:
        raise BondWireError("peak height must be non-negative")
    if peak_height < 1.0e-9 * span:
        # Small-sagitta asymptotics: elongation ~ 8 h^2 / (3 D); below a
        # ppb of the span the circle radius overflows, so use the limit.
        return 8.0 * peak_height**2 / (3.0 * span)
    half = 0.5 * span
    radius = (peak_height**2 + half**2) / (2.0 * peak_height)
    half_angle = np.arcsin(min(1.0, half / radius))
    if peak_height > half:
        # Sagitta beyond the radius: the apex lies past the semicircle,
        # so the wire follows the major arc.
        half_angle = np.pi - half_angle
    arc = 2.0 * radius * half_angle
    # Cancellation for h << span can leave a ~1 ulp negative result.
    return max(float(arc - span), 0.0)


class WireLengthModel:
    """Per-wire geometric length bookkeeping of the paper's example.

    Holds the measured components ``(d, delta_s, delta_h)`` of one wire and
    derives total length and relative elongation; the package measurement
    dataset is a list of these.
    """

    def __init__(self, direct_distance, misplacement=0.0, bending=0.0, name=""):
        self.direct_distance = float(direct_distance)
        self.misplacement = float(misplacement)
        self.bending = float(bending)
        self.name = name
        # Delegated for validation.
        total_length(direct_distance, misplacement, bending)

    @property
    def length(self):
        """Total length ``L = d + delta_s + delta_h`` [m]."""
        return total_length(self.direct_distance, self.misplacement, self.bending)

    @property
    def delta(self):
        """Relative elongation ``(L - d) / L``."""
        return relative_elongation(self.direct_distance, self.length)

    def with_delta(self, delta):
        """New model with the same ``d`` but length set from ``delta``.

        The extra length is attributed entirely to bending, which is how
        the sampled uncertainty re-enters the geometry.
        """
        new_length = length_from_elongation(self.direct_distance, delta)
        return WireLengthModel(
            self.direct_distance,
            misplacement=0.0,
            bending=new_length - self.direct_distance,
            name=self.name,
        )

    def __repr__(self):
        return (
            f"WireLengthModel(d={self.direct_distance!r}, "
            f"ds={self.misplacement!r}, dh={self.bending!r}, "
            f"L={self.length!r}, delta={self.delta:.4f})"
        )
