"""Bonding wire sizing calculator.

Section I of the paper: "When designing bonding wires ... the designer is
left with the choice of its material and its thickness. ... Bonding wire
calculators allow to estimate appropriate parameters by simulation."

This module is that calculator, built on the analytic steady-state model:
given material, length and a maximum allowed wire temperature it computes
the allowable current for a diameter or the minimum diameter for a current.
"""

import numpy as np

from ..constants import T_CRITICAL_DEFAULT
from ..errors import BondWireError
from .models import AnalyticWireModel


class SizingResult:
    """Result of one sizing query."""

    def __init__(self, diameter, current, peak_temperature, limit, satisfied):
        self.diameter = diameter
        self.current = current
        self.peak_temperature = peak_temperature
        self.limit = limit
        self.satisfied = satisfied

    def __repr__(self):
        status = "OK" if self.satisfied else "EXCEEDS LIMIT"
        return (
            f"SizingResult(d={self.diameter * 1e6:.1f} um, "
            f"I={self.current:.3f} A, Tpeak={self.peak_temperature:.1f} K, "
            f"limit={self.limit:.1f} K, {status})"
        )


class BondWireCalculator:
    """Sizing queries for one material / length / environment combination.

    Parameters
    ----------
    material:
        Wire material.
    length:
        Wire length [m].
    t_contact:
        Temperature of the two contacts [K] (chip operating temperature).
    t_limit:
        Maximum allowed wire temperature [K] (default: the paper's 523 K).
    heat_transfer_coefficient:
        Lateral convective coefficient; zero for molded wires.
    """

    def __init__(
        self,
        material,
        length,
        t_contact=300.0,
        t_limit=T_CRITICAL_DEFAULT,
        heat_transfer_coefficient=0.0,
        t_ambient=300.0,
    ):
        if float(length) <= 0.0:
            raise BondWireError(f"length must be positive, got {length!r}")
        if float(t_limit) <= float(t_contact):
            raise BondWireError(
                f"temperature limit {t_limit} must exceed the contact "
                f"temperature {t_contact}"
            )
        self.material = material
        self.length = float(length)
        self.t_contact = float(t_contact)
        self.t_limit = float(t_limit)
        self.h = float(heat_transfer_coefficient)
        self.t_ambient = float(t_ambient)

    def _model(self, diameter):
        return AnalyticWireModel(
            self.material,
            diameter,
            self.length,
            heat_transfer_coefficient=self.h,
            t_ambient=self.t_ambient,
        )

    def peak_temperature(self, diameter, current):
        """Steady-state peak wire temperature for one (d, I) pair [K].

        Thermal runaway (no steady state below the fusing regime) is
        reported as ``inf`` so that bisection treats it as a violated
        limit rather than an error.
        """
        from ..errors import ConvergenceError

        try:
            solution = self._model(diameter).solve_current_driven(
                current, self.t_contact
            )
        except ConvergenceError:
            return np.inf
        return solution.peak_temperature

    def check(self, diameter, current):
        """Evaluate one design point against the temperature limit."""
        peak = self.peak_temperature(diameter, current)
        return SizingResult(
            diameter=float(diameter),
            current=float(current),
            peak_temperature=peak,
            limit=self.t_limit,
            satisfied=peak <= self.t_limit,
        )

    def allowable_current(self, diameter, tolerance=1.0e-4, max_iterations=200):
        """Largest current keeping the peak below the limit (bisection) [A].

        The peak temperature is monotone increasing in the current, so
        bisection on [0, I_hi] is robust; the upper bracket is grown until
        it violates the limit.
        """
        diameter = float(diameter)
        lo = 0.0
        hi = 1.0e-3
        for _ in range(200):
            if self.peak_temperature(diameter, hi) > self.t_limit:
                break
            lo = hi
            hi *= 2.0
        else:
            raise BondWireError(
                "failed to bracket the allowable current; the limit seems "
                "unreachable for this configuration"
            )
        for _ in range(max_iterations):
            mid = 0.5 * (lo + hi)
            if hi - lo < tolerance * max(hi, 1.0e-12):
                break
            if self.peak_temperature(diameter, mid) > self.t_limit:
                hi = mid
            else:
                lo = mid
        return 0.5 * (lo + hi)

    def required_diameter(
        self, current, d_min=1.0e-6, d_max=1.0e-3, tolerance=1.0e-4
    ):
        """Smallest diameter keeping the peak below the limit (bisection) [m].

        Raises when even ``d_max`` cannot carry the current within the
        limit (the caller should then change material or shorten the wire,
        exactly the design trade-off the paper's introduction discusses).
        """
        current = float(current)
        if self.peak_temperature(d_max, current) > self.t_limit:
            raise BondWireError(
                f"even diameter {d_max} m exceeds the temperature limit at "
                f"{current} A"
            )
        if self.peak_temperature(d_min, current) <= self.t_limit:
            return d_min
        lo, hi = d_min, d_max
        for _ in range(200):
            mid = np.sqrt(lo * hi)  # geometric bisection across decades
            if hi / lo - 1.0 < tolerance:
                break
            if self.peak_temperature(mid, current) > self.t_limit:
                lo = mid
            else:
                hi = mid
        return hi

    def sweep_diameters(self, diameters, current):
        """Peak temperatures over a diameter sweep (for tables/plots)."""
        return [self.check(d, current) for d in diameters]
