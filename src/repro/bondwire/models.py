"""Analytic steady-state wire models (the phenomenological baseline).

The paper cites analytic bonding-wire temperature models (Noebauer & Moser
2000; Section I "there are phenomenological models ... derived
analytically").  This module implements the 1D steady-state heat balance of
a current-carrying wire with clamped end temperatures and optional lateral
convective loss (fin equation):

``lambda A T''(x) + I^2 / (sigma A) = h p (T(x) - T_inf)``

with perimeter ``p = pi d``.  Without lateral loss the profile is the
classic parabola; with loss it is the cosh fin solution.  Temperature
dependence of ``sigma`` and ``lambda`` is resolved by a fixed-point
iteration on the average wire temperature.

These closed forms serve three purposes: a fast wire-sizing calculator, a
cross-check of the lumped FIT coupling on matched configurations, and the
comparison baseline required for the wire-failure benches.
"""

import numpy as np

from ..errors import BondWireError
from ..solvers.newton import fixed_point


class FinWireSolution:
    """Closed-form steady temperature profile of one wire.

    Attributes
    ----------
    peak_temperature:
        Maximum temperature along the wire [K].
    average_temperature:
        Mean of the profile over the length [K].
    dissipated_power:
        Total Joule power in the wire [W].
    current:
        The (converged) wire current [A].
    resistance:
        The (converged) wire resistance [Ohm].
    """

    def __init__(
        self,
        length,
        profile,
        peak_temperature,
        average_temperature,
        dissipated_power,
        current,
        resistance,
    ):
        self.length = length
        self._profile = profile
        self.peak_temperature = peak_temperature
        self.average_temperature = average_temperature
        self.dissipated_power = dissipated_power
        self.current = current
        self.resistance = resistance

    def temperature(self, position):
        """Temperature at position(s) ``x`` in [0, L] [K]."""
        position = np.asarray(position, dtype=float)
        if np.any(position < -1e-12) or np.any(position > self.length + 1e-12):
            raise BondWireError(
                f"position outside wire [0, {self.length}]: {position}"
            )
        return self._profile(np.clip(position, 0.0, self.length))

    def sample(self, num_points=101):
        """``(x, T(x))`` arrays for plotting/export."""
        x = np.linspace(0.0, self.length, int(num_points))
        return x, self.temperature(x)

    def __repr__(self):
        return (
            f"FinWireSolution(peak={self.peak_temperature:.2f} K, "
            f"I={self.current:.4f} A, P={self.dissipated_power:.4e} W)"
        )


def _constant_property_profile(
    length, area, lam, heating_per_length, h_per_length, t_ambient, t_a, t_b
):
    """Analytic profile for fixed material properties.

    Returns a vectorized callable ``T(x)``.
    """
    if h_per_length <= 0.0:
        # Pure conduction: linear + parabola.
        def profile(x):
            linear = t_a + (t_b - t_a) * x / length
            parabola = heating_per_length / (2.0 * lam * area) * x * (length - x)
            return linear + parabola

        return profile

    m = np.sqrt(h_per_length / (lam * area))
    theta_p = heating_per_length / h_per_length
    theta_a = t_a - t_ambient - theta_p
    theta_b = t_b - t_ambient - theta_p
    sinh_ml = np.sinh(m * length)
    if sinh_ml == 0.0:
        raise BondWireError("degenerate fin solution (m L = 0)")

    def profile(x):
        c = (theta_b - theta_a * np.cosh(m * length)) / sinh_ml
        return (
            t_ambient
            + theta_p
            + theta_a * np.cosh(m * x)
            + c * np.sinh(m * x)
        )

    return profile


class AnalyticWireModel:
    """Steady-state analytic model of a single bonding wire.

    Parameters
    ----------
    material:
        Wire :class:`~repro.materials.base.Material`.
    diameter, length:
        Wire geometry [m].
    heat_transfer_coefficient:
        Lateral convective coefficient h [W/m^2/K]; zero for a wire fully
        embedded in mold (the paper's situation -- the wire then only
        conducts heat to its two ends).
    t_ambient:
        Ambient temperature for the lateral loss [K].
    """

    def __init__(
        self,
        material,
        diameter,
        length,
        heat_transfer_coefficient=0.0,
        t_ambient=300.0,
    ):
        diameter = float(diameter)
        length = float(length)
        if diameter <= 0.0 or length <= 0.0:
            raise BondWireError("diameter and length must be positive")
        if heat_transfer_coefficient < 0.0:
            raise BondWireError("heat transfer coefficient must be >= 0")
        self.material = material
        self.diameter = diameter
        self.length = length
        self.h = float(heat_transfer_coefficient)
        self.t_ambient = float(t_ambient)

    @property
    def area(self):
        """Cross section [m^2]."""
        return 0.25 * np.pi * self.diameter**2

    @property
    def perimeter(self):
        """Circumference [m]."""
        return np.pi * self.diameter

    def _solve(self, current_of_t, t_end_a, t_end_b, tolerance, max_iterations):
        """Fixed point on the average temperature; returns a solution."""
        area = self.area
        h_per_length = self.h * self.perimeter

        def solution_for(t_avg):
            t_avg = float(t_avg)
            sigma = self.material.electrical_conductivity(t_avg)
            lam = self.material.thermal_conductivity(t_avg)
            current = current_of_t(t_avg)
            heating_per_length = current**2 / (sigma * area)
            profile = _constant_property_profile(
                self.length,
                area,
                lam,
                heating_per_length,
                h_per_length,
                self.t_ambient,
                t_end_a,
                t_end_b,
            )
            return profile, current, sigma

        def update(state):
            # Clamp the iterate: beyond ~10^4 K the material laws are
            # meaningless and the parabola overflows; physically this
            # regime means "the wire fuses", which callers detect through
            # the returned (huge) peak temperature.
            t_avg = float(np.clip(state[0], 1.0, 1.0e4))
            profile, _, _ = solution_for(t_avg)
            x = np.linspace(0.0, self.length, 201)
            mean = float(np.mean(profile(x)))
            if not np.isfinite(mean):
                mean = 1.0e4
            return np.array([np.clip(mean, 1.0, 1.0e4)])

        start = np.array([max(t_end_a, t_end_b)])
        result = fixed_point(
            update,
            start,
            tolerance=tolerance,
            max_iterations=max_iterations,
            damping=0.8,
        )
        t_avg = float(result.solution[0])
        profile, current, sigma = solution_for(t_avg)
        x = np.linspace(0.0, self.length, 401)
        temperatures = profile(x)
        resistance = self.length / (sigma * area)
        return FinWireSolution(
            length=self.length,
            profile=profile,
            peak_temperature=float(np.max(temperatures)),
            average_temperature=float(np.mean(temperatures)),
            dissipated_power=current**2 * resistance,
            current=current,
            resistance=resistance,
        )

    def solve_current_driven(
        self,
        current,
        t_end_a,
        t_end_b=None,
        tolerance=1.0e-8,
        max_iterations=100,
    ):
        """Steady state for an imposed current ``I`` [A]."""
        current = float(current)
        t_end_a = float(t_end_a)
        t_end_b = t_end_a if t_end_b is None else float(t_end_b)
        return self._solve(
            lambda t_avg: current, t_end_a, t_end_b, tolerance, max_iterations
        )

    def solve_voltage_driven(
        self,
        voltage,
        t_end_a,
        t_end_b=None,
        tolerance=1.0e-8,
        max_iterations=100,
    ):
        """Steady state for an imposed end-to-end voltage ``U`` [V].

        The current follows from the temperature-dependent resistance,
        ``I = U sigma(T_avg) A / L``, closing the electrothermal feedback
        loop in the direction the paper describes (hotter wire -> lower
        sigma -> lower current).
        """
        voltage = float(voltage)
        t_end_a = float(t_end_a)
        t_end_b = t_end_a if t_end_b is None else float(t_end_b)
        area = self.area

        def current_of_t(t_avg):
            sigma = self.material.electrical_conductivity(t_avg)
            return voltage * sigma * area / self.length

        return self._solve(
            current_of_t, t_end_a, t_end_b, tolerance, max_iterations
        )

    def peak_temperature_rise_linear(self, current, t_end=300.0):
        """Closed-form peak rise ``I^2 L^2 / (8 sigma lambda A^2)`` [K].

        Valid for equal end temperatures, no lateral loss and properties
        frozen at ``t_end`` -- the textbook formula used as a sanity bound
        in tests.
        """
        sigma = self.material.electrical_conductivity(t_end)
        lam = self.material.thermal_conductivity(t_end)
        return float(current) ** 2 * self.length**2 / (
            8.0 * sigma * lam * self.area**2
        )
