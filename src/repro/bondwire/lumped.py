"""Lumped electrothermal bonding wire elements and their FIT stamps.

A wire connecting grid nodes ``a`` and ``b`` contributes (Section III-B)

* the conductance stamp ``G_bw = g * [[1, -1], [-1, 1]]`` to both the
  electrical (``g = G_el``) and the thermal (``g = G_th``) system, realized
  through the incidence vector ``P_j`` with entries +1 at ``a`` and -1 at
  ``b``;
* its Joule power ``Q_bw,j = Phi^T P_j G_el,j P_j^T Phi`` distributed to
  the end nodes by the averaging vector ``X_j`` (two 1/2 entries);
* its representative temperature ``T_bw,j = X_j^T T`` (eq. (5)).

For nonlinear temperature profiles a wire can be split into ``num_segments``
concatenated lumped elements (last paragraph of Section III-B); the extra
internal nodes are appended to the grid unknowns by the coupled assembler.
"""

import numpy as np
import scipy.sparse as sp

from ..errors import BondWireError
from ..materials.base import Material


class LumpedBondWire:
    """One bonding wire as a (chain of) lumped electrothermal element(s).

    Parameters
    ----------
    start_node, end_node:
        Flat primary-grid node indices of the two contacts.
    material:
        The wire :class:`~repro.materials.base.Material` (usually copper).
    diameter:
        Wire diameter [m] (paper: 25.4 um).
    length:
        Total wire length [m]; this is the uncertain quantity.
    num_segments:
        Number of concatenated lumped elements (1 = the paper's default).
    name:
        Identifier used in reports (e.g. ``"wire03"``).
    """

    def __init__(
        self,
        start_node,
        end_node,
        material,
        diameter,
        length,
        num_segments=1,
        name="",
    ):
        start_node = int(start_node)
        end_node = int(end_node)
        if start_node == end_node:
            raise BondWireError("wire must connect two distinct nodes")
        if start_node < 0 or end_node < 0:
            raise BondWireError("wire node indices must be non-negative")
        if not isinstance(material, Material):
            raise BondWireError(
                f"material must be a Material, got {type(material).__name__}"
            )
        diameter = float(diameter)
        length = float(length)
        if diameter <= 0.0:
            raise BondWireError(f"diameter must be positive, got {diameter!r}")
        if length <= 0.0:
            raise BondWireError(f"length must be positive, got {length!r}")
        num_segments = int(num_segments)
        if num_segments < 1:
            raise BondWireError(
                f"num_segments must be >= 1, got {num_segments!r}"
            )
        self.start_node = start_node
        self.end_node = end_node
        self.material = material
        self.diameter = diameter
        self.length = length
        self.num_segments = num_segments
        self.name = name

    # ------------------------------------------------------------------
    # Geometry-derived quantities
    # ------------------------------------------------------------------
    @property
    def cross_section_area(self):
        """Cross-section area ``pi d^2 / 4`` [m^2]."""
        return 0.25 * np.pi * self.diameter**2

    @property
    def segment_length(self):
        """Length of each of the ``num_segments`` lumped elements [m]."""
        return self.length / self.num_segments

    @property
    def volume(self):
        """Wire volume [m^3] (used for internal node heat capacity)."""
        return self.cross_section_area * self.length

    # ------------------------------------------------------------------
    # Electrothermal conductances (temperature dependent)
    # ------------------------------------------------------------------
    def electrical_conductance(self, temperature):
        """Whole-wire ``G_el(T) = sigma(T) A / L`` [S]."""
        sigma = self.material.electrical_conductivity(temperature)
        return sigma * self.cross_section_area / self.length

    def thermal_conductance(self, temperature):
        """Whole-wire ``G_th(T) = lambda(T) A / L`` [W/K]."""
        lam = self.material.thermal_conductivity(temperature)
        return lam * self.cross_section_area / self.length

    def segment_electrical_conductance(self, temperature):
        """Per-segment electrical conductance [S] (= whole-wire * S)."""
        return self.electrical_conductance(temperature) * self.num_segments

    def segment_thermal_conductance(self, temperature):
        """Per-segment thermal conductance [W/K]."""
        return self.thermal_conductance(temperature) * self.num_segments

    def resistance(self, temperature):
        """Whole-wire electrical resistance [Ohm]."""
        return 1.0 / self.electrical_conductance(temperature)

    def segment_heat_capacity(self):
        """Heat capacity of one segment [J/K] (lumped to internal nodes)."""
        rhoc = self.material.volumetric_heat_capacity()
        return rhoc * self.volume / self.num_segments

    def with_length(self, length):
        """Copy of this wire with a different length (MC resampling)."""
        return LumpedBondWire(
            self.start_node,
            self.end_node,
            self.material,
            self.diameter,
            length,
            num_segments=self.num_segments,
            name=self.name,
        )

    def with_segments(self, num_segments):
        """Copy of this wire subdivided into ``num_segments`` elements."""
        return LumpedBondWire(
            self.start_node,
            self.end_node,
            self.material,
            self.diameter,
            self.length,
            num_segments=num_segments,
            name=self.name,
        )

    def __repr__(self):
        return (
            f"LumpedBondWire({self.name or 'wire'}: {self.start_node}->"
            f"{self.end_node}, d={self.diameter!r} m, L={self.length!r} m, "
            f"segments={self.num_segments})"
        )


class WireStamp:
    """The sparse incidence (P) and averaging (X) vectors of one element.

    ``P`` has +1 at the start node and -1 at the end node; ``X`` has 1/2 at
    both (eq. (5) of the paper).  ``size`` is the total unknown count
    (grid nodes plus any internal wire nodes).
    """

    def __init__(self, start_node, end_node, size):
        start_node = int(start_node)
        end_node = int(end_node)
        if not (0 <= start_node < size and 0 <= end_node < size):
            raise BondWireError(
                f"stamp nodes ({start_node}, {end_node}) out of range for "
                f"size {size}"
            )
        if start_node == end_node:
            raise BondWireError("stamp must connect two distinct nodes")
        self.start_node = start_node
        self.end_node = end_node
        self.size = size

    def incidence_vector(self):
        """Dense ``P_j`` (+1 / -1) of length ``size``."""
        vector = np.zeros(self.size)
        vector[self.start_node] = 1.0
        vector[self.end_node] = -1.0
        return vector

    def averaging_vector(self):
        """Dense ``X_j`` (two 1/2 entries) of length ``size``."""
        vector = np.zeros(self.size)
        vector[self.start_node] = 0.5
        vector[self.end_node] = 0.5
        return vector

    def potential_drop(self, potentials):
        """``P_j^T Phi``: voltage (or temperature drop) across the element."""
        potentials = np.asarray(potentials, dtype=float)
        return float(potentials[self.start_node] - potentials[self.end_node])

    def average_value(self, values):
        """``X_j^T T``: the element's representative (average) value."""
        values = np.asarray(values, dtype=float)
        return 0.5 * float(values[self.start_node] + values[self.end_node])

    def conductance_matrix(self, conductance):
        """Sparse ``g P P^T`` stamp of shape ``(size, size)``."""
        conductance = float(conductance)
        if conductance < 0.0:
            raise BondWireError(
                f"conductance must be non-negative, got {conductance!r}"
            )
        rows = [self.start_node, self.start_node, self.end_node, self.end_node]
        cols = [self.start_node, self.end_node, self.start_node, self.end_node]
        vals = [conductance, -conductance, -conductance, conductance]
        return sp.csr_matrix((vals, (rows, cols)), shape=(self.size, self.size))

    def joule_power(self, potentials, conductance):
        """``Q_bw = g (P^T Phi)^2`` [W] dissipated in the element."""
        drop = self.potential_drop(potentials)
        return float(conductance) * drop * drop


def stamp_conductance_matrix(size, stamps, conductances):
    """Sum of all element stamps ``sum_j g_j P_j P_j^T`` as one sparse matrix."""
    stamps = list(stamps)
    conductances = np.asarray(conductances, dtype=float).ravel()
    if len(stamps) != conductances.size:
        raise BondWireError(
            f"{len(stamps)} stamps but {conductances.size} conductances"
        )
    rows = []
    cols = []
    vals = []
    for stamp, conductance in zip(stamps, conductances):
        conductance = float(conductance)
        if conductance < 0.0:
            raise BondWireError("conductance must be non-negative")
        rows.extend(
            [stamp.start_node, stamp.start_node, stamp.end_node, stamp.end_node]
        )
        cols.extend(
            [stamp.start_node, stamp.end_node, stamp.start_node, stamp.end_node]
        )
        vals.extend([conductance, -conductance, -conductance, conductance])
    return sp.csr_matrix((vals, (rows, cols)), shape=(size, size))
