"""Wire failure/degradation assessment (Section V-D of the paper).

The paper's criterion: a bonding wire fails mainly through degradation of
the surrounding mold, so a critical temperature ``T_critical = 523 K``
marks the design-validity threshold.  This module evaluates temperature
traces against that threshold and adds the classic fusing-current estimates
used by wire-sizing practice.
"""

import numpy as np

from ..constants import T_CRITICAL_DEFAULT
from ..errors import BondWireError

#: Melting points [K] of the common bonding wire materials.
MELTING_POINTS = {
    "copper": 1357.8,
    "gold": 1337.3,
    "aluminium": 933.5,
    "aluminum": 933.5,
}

#: Preece constants K in ``I_fuse = K * d^1.5`` with d in metres, I in
#: amperes.  Converted from the traditional d-in-mm form
#: (``K_m = K_mm * 1000^1.5``); K_mm for copper is 80.
_MM_TO_M = 1000.0**1.5
PREECE_CONSTANTS = {
    "copper": 80.0 * _MM_TO_M,
    "gold": 61.0 * _MM_TO_M,
    "aluminium": 59.2 * _MM_TO_M,
    "aluminum": 59.2 * _MM_TO_M,
}


def first_crossing_time(times, temperatures, threshold):
    """First time at which ``temperatures`` reaches ``threshold``.

    Linear interpolation between samples; returns ``None`` when the trace
    never reaches the threshold.  This is how the paper's statement "the
    error bars cross the critical temperature for t > 26 s" is quantified.
    """
    times = np.asarray(times, dtype=float)
    temperatures = np.asarray(temperatures, dtype=float)
    if times.shape != temperatures.shape:
        raise BondWireError("times and temperatures must have equal shape")
    if times.size == 0:
        return None
    above = temperatures >= threshold
    if not np.any(above):
        return None
    first = int(np.argmax(above))
    if first == 0:
        return float(times[0])
    t0, t1 = times[first - 1], times[first]
    y0, y1 = temperatures[first - 1], temperatures[first]
    if y1 == y0:
        return float(t1)
    return float(t0 + (threshold - y0) / (y1 - y0) * (t1 - t0))


class FailureAssessment:
    """Verdict of a temperature trace against the critical temperature."""

    def __init__(
        self,
        max_temperature,
        threshold,
        crossing_time,
        margin,
        label="",
    ):
        self.max_temperature = max_temperature
        self.threshold = threshold
        #: ``None`` when the trace never crosses.
        self.crossing_time = crossing_time
        #: ``threshold - max_temperature`` [K]; negative means failure.
        self.margin = margin
        self.label = label

    @property
    def fails(self):
        """``True`` when the trace reached the critical temperature."""
        return self.crossing_time is not None

    def __repr__(self):
        verdict = (
            f"FAILS at t={self.crossing_time:.3f} s"
            if self.fails
            else f"ok (margin {self.margin:.2f} K)"
        )
        return f"FailureAssessment({self.label or 'trace'}: {verdict})"


def assess_failure(times, temperatures, threshold=T_CRITICAL_DEFAULT, label=""):
    """Assess one temperature trace against ``threshold`` (default 523 K)."""
    temperatures = np.asarray(temperatures, dtype=float)
    max_temperature = float(np.max(temperatures))
    crossing = first_crossing_time(times, temperatures, threshold)
    return FailureAssessment(
        max_temperature=max_temperature,
        threshold=float(threshold),
        crossing_time=crossing,
        margin=float(threshold) - max_temperature,
        label=label,
    )


def preece_fusing_current(diameter, material_name="copper"):
    """Preece fusing current ``I = K d^1.5`` [A] for ``diameter`` in metres.

    Empirical free-air estimate; real packaged wires fuse at lower
    currents, so this is an upper bound used for sanity checks.
    """
    key = str(material_name).strip().lower()
    if key not in PREECE_CONSTANTS:
        known = ", ".join(sorted(set(PREECE_CONSTANTS)))
        raise BondWireError(
            f"no Preece constant for {material_name!r}; known: {known}"
        )
    diameter = float(diameter)
    if diameter <= 0.0:
        raise BondWireError(f"diameter must be positive, got {diameter!r}")
    return PREECE_CONSTANTS[key] * diameter**1.5


def melting_point(material_name):
    """Melting point [K] of a bonding wire material."""
    key = str(material_name).strip().lower()
    if key not in MELTING_POINTS:
        known = ", ".join(sorted(set(MELTING_POINTS)))
        raise BondWireError(
            f"no melting point for {material_name!r}; known: {known}"
        )
    return MELTING_POINTS[key]
