"""Resumable on-disk artifact store for campaign runs.

Layout of a store directory::

    <store>/
        manifest.json          # format version + full campaign spec
                               # (+ optional reducer/backend provenance)
        lock.json              # owner record while a runner holds the
                               # store (absent on idle stores)
        chunks/
            chunk_000000.npz   # indices, parameters, outputs of chunk 0
            chunk_000001.npz
            ...
        reducer_state.npz      # checkpointed reduction state (optional)
        quarantine.json        # chunks that exhausted their retries
                               # (absent on failure-free campaigns)
        summary.json           # written once the campaign completes
        telemetry/             # optional observability layer
            chunk_000000.jsonl # per-chunk spans + metrics (atomic)
            run.jsonl          # run-scoped events (append-only)
            metrics.json       # merged campaign MetricsRegistry
            progress.json      # latest heartbeat (atomically replaced)

Chunk files are written atomically (temp file + ``os.replace``), so a
killed process can never leave a half-written chunk behind: on resume a
chunk either exists completely or is recomputed.  A kill *between*
``mkstemp`` and ``os.replace`` can still leak the anonymous ``.tmp``
file, so ``initialize()`` sweeps stale temporaries from the store root,
``chunks/`` and ``telemetry/`` every time it runs (fresh create and
resume alike).  ``quarantine.json`` records chunks that exhausted their
retry budget -- one JSON entry per chunk with the sample indices, the
error and the attempt count -- updated with the same atomic-replace
discipline so concurrent readers never see a torn file.  The manifest pins the
spec; resuming with a different spec is refused instead of silently
mixing two campaigns in one directory.  ``reducer_state.npz`` snapshots
the reducer's running state after every folded chunk (same atomic write
discipline), so a resume restores the reduction itself rather than
re-folding every chunk; stores without it -- including every pre-reducer
store -- simply re-fold, which is bit-identical by construction.

The ``telemetry/`` subtree is strictly additive and follows the same
crash discipline: per-chunk event files are atomic (written *before*
the chunk ``.npz``, so a completed chunk always has its telemetry),
``run.jsonl`` is append-only across resumes, and a store without any of
it remains fully usable -- telemetry readers return empty results
instead of raising.

``lock.json`` serializes *ownership*: a runner acquires the store lock
(:class:`StoreLock`, ``O_CREAT | O_EXCL``) before touching the
directory and heartbeats it per completed chunk, so two concurrent
``run_campaign`` calls on one path fail fast with a
:class:`~repro.errors.CampaignError` instead of silently interleaving
chunk writes.  A lock left by a killed runner is detected as stale (its
pid is dead on this host, or its heartbeat mtime is older than the
stale threshold for foreign hosts) and broken on the next acquire, so
crash recovery needs no manual cleanup.
"""

import json
import os
import socket
import tempfile
import threading
import time
import zipfile

import numpy as np

from ..errors import CampaignError
from ..telemetry import append_events, read_events, write_events
from .spec import CampaignSpec

FORMAT_VERSION = 1
_CHUNK_DIR = "chunks"
_REDUCER_STATE = "reducer_state.npz"
_STATE_META_KEY = "__meta__"
_TELEMETRY_DIR = "telemetry"
_LOCK_NAME = "lock.json"
_PROGRESS_NAME = "progress.json"

#: Absolute lock-file paths held by this process (threads of one
#: process share a pid, so the file protocol alone cannot arbitrate
#: between them -- this registry does).
_HELD_LOCKS = set()
_HELD_LOCKS_GUARD = threading.Lock()


def _pid_alive(pid):
    """Whether ``pid`` names a live process on this host."""
    try:
        os.kill(int(pid), 0)
    except (ProcessLookupError, ValueError, TypeError, OverflowError):
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    return True


class StoreLock:
    """Exclusive ownership of one store directory via ``lock.json``.

    The lock file is created with ``O_CREAT | O_EXCL`` (atomic on every
    POSIX filesystem) and holds the owner's pid/host/thread plus its
    creation wall clock; the file's *mtime* is the heartbeat, refreshed
    by :meth:`heartbeat` (the runner beats once per completed chunk).
    A second acquire attempt fails with a :class:`CampaignError` naming
    the live owner.  Stale locks -- a dead pid on this host, or (for
    locks from another host, where pids are meaningless) a heartbeat
    older than ``stale_after_s`` -- are broken and re-acquired, so a
    SIGKILLed runner never wedges its store.

    Threads of one process share a pid, so same-process contention is
    arbitrated by an in-process registry of held lock paths on top of
    the file protocol.
    """

    def __init__(self, path, stale_after_s=300.0):
        self.path = os.path.abspath(str(path))
        self.stale_after_s = float(stale_after_s)
        self._acquired = False

    @property
    def held(self):
        """Whether *this* lock object currently owns the file."""
        return self._acquired

    def owner(self):
        """The current lock file's owner record, or ``None``.

        ``None`` means the file is absent *or* unreadable (a torn write
        by a dying owner); callers distinguish via ``os.path.exists``.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def _is_stale(self, info):
        """Whether the existing lock can safely be broken."""
        try:
            age = time.time() - os.path.getmtime(self.path)
        except OSError:
            return True  # vanished under us: retry the acquire
        if info is None:
            # Unreadable owner record: only a torn write of a dying
            # process leaves one.  Give the writer a grace period, then
            # treat it as dead.
            return age > max(5.0, self.stale_after_s)
        if info.get("host") == socket.gethostname():
            return not _pid_alive(info.get("pid"))
        return age > self.stale_after_s

    def acquire(self):
        """Take the lock or raise :class:`CampaignError` (never blocks)."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with _HELD_LOCKS_GUARD:
            held_here = self.path in _HELD_LOCKS
        for attempt in (0, 1):
            if held_here:
                break
            try:
                descriptor = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                info = self.owner()
                if attempt == 0 and self._is_stale(info):
                    try:
                        os.remove(self.path)
                    except FileNotFoundError:
                        pass
                    continue
                break
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "pid": os.getpid(),
                        "host": socket.gethostname(),
                        "thread": threading.current_thread().name,
                        "created_walltime": time.time(),
                    },
                    handle,
                )
            with _HELD_LOCKS_GUARD:
                _HELD_LOCKS.add(self.path)
            self._acquired = True
            return self
        info = self.owner() or {}
        owner = (
            f"pid {info.get('pid', '?')} on {info.get('host', '?')} "
            f"(thread {info.get('thread', '?')})"
        )
        raise CampaignError(
            f"store {os.path.dirname(self.path)!r} is locked by {owner}; "
            "a campaign is already running there -- wait for it, or "
            "remove the stale lock.json if you are certain it is dead"
        )

    def heartbeat(self):
        """Refresh the lock's mtime (the liveness signal for foreign
        hosts); a no-op when the lock is not held."""
        if not self._acquired:
            return
        try:
            os.utime(self.path)
        except OSError:
            pass

    def release(self):
        """Drop the lock (idempotent; removing the file is best-effort)."""
        if not self._acquired:
            return
        self._acquired = False
        with _HELD_LOCKS_GUARD:
            _HELD_LOCKS.discard(self.path)
        try:
            os.remove(self.path)
        except OSError:
            pass

    def __enter__(self):
        return self.acquire()

    def __exit__(self, *exc_info):
        self.release()

    def __repr__(self):
        state = "held" if self._acquired else "free"
        return f"StoreLock({self.path!r}, {state})"


class ArtifactStore:
    """Checkpoint directory of one campaign (create with ``initialize``)."""

    def __init__(self, path):
        self.path = str(path)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self):
        return os.path.join(self.path, "manifest.json")

    @property
    def summary_path(self):
        return os.path.join(self.path, "summary.json")

    @property
    def chunk_dir(self):
        return os.path.join(self.path, _CHUNK_DIR)

    def exists(self):
        """Whether this directory holds an initialized store."""
        return os.path.isfile(self.manifest_path)

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------
    @property
    def lock_path(self):
        return os.path.join(self.path, _LOCK_NAME)

    def acquire_lock(self, stale_after_s=300.0):
        """Take exclusive ownership of this store (see :class:`StoreLock`).

        Raises :class:`CampaignError` when another live runner holds the
        store; breaks and re-acquires stale locks.  The caller must
        ``release()`` (or use the returned lock as a context manager).
        """
        return StoreLock(self.lock_path, stale_after_s=stale_after_s).acquire()

    def lock_owner(self):
        """The owner record of the current lock file, or ``None`` when
        the store is unlocked (or the record is unreadable)."""
        return StoreLock(self.lock_path).owner()

    def _locked_by_other(self):
        """Whether a *live* lock held outside this process (or by another
        thread of it) protects the store."""
        lock = StoreLock(self.lock_path)
        if not os.path.exists(lock.path):
            return False
        with _HELD_LOCKS_GUARD:
            if lock.path in _HELD_LOCKS:
                return False  # our own lock
        return not lock._is_stale(lock.owner())

    def initialize(self, spec, provenance=None):
        """Create the store for ``spec`` or validate an existing one.

        A fresh directory gets a manifest; an existing store is accepted
        only when its pinned spec matches exactly (the resume contract
        -- the optional ``provenance`` record is informational and never
        part of that comparison).  ``provenance`` is a JSON dict naming
        the package version and the reducer/backend of the creating run;
        it is recorded once at creation time and surfaced by
        ``repro-campaign report``.  Returns ``self`` for chaining.
        """
        if not isinstance(spec, CampaignSpec):
            raise CampaignError(
                f"expected a CampaignSpec, got {type(spec).__name__}"
            )
        if self.exists():
            stored = self.load_spec()
            if stored.to_dict() != spec.to_dict():
                raise CampaignError(
                    f"store at {self.path!r} holds campaign "
                    f"{stored.name!r} with a different spec; refusing to "
                    "mix campaigns (use a fresh directory)"
                )
            self.sweep_temporaries()
            return self
        os.makedirs(self.chunk_dir, exist_ok=True)
        self.sweep_temporaries()
        manifest = {
            "format_version": FORMAT_VERSION,
            "campaign": spec.to_dict(),
        }
        if provenance:
            manifest["provenance"] = dict(provenance)
        self._write_json(self.manifest_path, manifest)
        return self

    def sweep_temporaries(self):
        """Remove stale ``*.tmp`` files leaked by killed writers.

        Every atomic write goes through ``tempfile.mkstemp`` +
        ``os.replace``; a process killed between the two leaves an
        orphaned temp file that no later run will ever touch.  Sweeping
        is safe against *concurrent* writers only at initialize/resume
        time (when no other run should be writing this store), which is
        exactly when this runs -- so it refuses outright when a live
        lock held by someone else protects the store.  Returns the
        removed paths.
        """
        if self._locked_by_other():
            owner = self.lock_owner() or {}
            raise CampaignError(
                f"refusing to sweep store {self.path!r}: it is locked by "
                f"pid {owner.get('pid', '?')} on {owner.get('host', '?')} "
                "(a campaign is running there)"
            )
        removed = []
        for directory in (self.path, self.chunk_dir, self.telemetry_dir):
            if not os.path.isdir(directory):
                continue
            for name in os.listdir(directory):
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(directory, name)
                if not os.path.isfile(path):
                    continue
                try:
                    os.remove(path)
                except OSError:
                    continue
                removed.append(path)
        return removed

    def read_provenance(self):
        """The manifest's provenance record (``None`` for stores created
        before it existed, or without one)."""
        manifest = self._read_json(self.manifest_path)
        provenance = manifest.get("provenance")
        return dict(provenance) if provenance else None

    def load_spec(self):
        """The campaign spec pinned in the manifest."""
        manifest = self._read_json(self.manifest_path)
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise CampaignError(
                f"store format version {version!r} is not supported "
                f"(expected {FORMAT_VERSION})"
            )
        return CampaignSpec.from_dict(manifest["campaign"])

    # ------------------------------------------------------------------
    # Chunks
    # ------------------------------------------------------------------
    def chunk_path(self, chunk_index):
        return os.path.join(
            self.chunk_dir, f"chunk_{int(chunk_index):06d}.npz"
        )

    def completed_chunks(self, validate=False):
        """Sorted indices of every fully written chunk.

        The default is a name-based scan (cheap, and atomic writes make
        a present file a complete file in normal operation).  With
        ``validate=True`` every chunk file gets a structural check --
        the zip central directory parses and the three expected arrays
        are present -- so files truncated by a full disk or torn by a
        partial copy are dropped from the result and resume recomputes
        them instead of crashing on the corrupt bytes later.  The check
        reads only the archive directory, not the array data, so it
        stays cheap next to the reducer-snapshot fast path.
        """
        if not os.path.isdir(self.chunk_dir):
            return []
        indices = []
        for name in os.listdir(self.chunk_dir):
            if name.startswith("chunk_") and name.endswith(".npz"):
                try:
                    indices.append(int(name[len("chunk_"):-len(".npz")]))
                except ValueError:
                    continue
        indices.sort()
        if not validate:
            return indices
        return [index for index in indices
                if self._chunk_intact(self.chunk_path(index))]

    @staticmethod
    def _chunk_intact(path):
        """Structural validity of one chunk ``.npz`` (directory parses,
        expected members present) without loading the arrays."""
        try:
            with zipfile.ZipFile(path) as archive:
                names = set(archive.namelist())
        except (OSError, ValueError, zipfile.BadZipFile):
            return False
        return {"indices.npy", "parameters.npy", "outputs.npy"} <= names

    def write_chunk(self, result):
        """Persist one :class:`~repro.campaign.executor.ChunkResult`.

        Atomic: the chunk file appears only once completely written.
        """
        os.makedirs(self.chunk_dir, exist_ok=True)
        path = self.chunk_path(result.chunk_index)
        # Unique temp name: concurrent writers (two resumes of the same
        # store) each publish a complete file via their own rename.
        descriptor, temporary = tempfile.mkstemp(
            dir=self.chunk_dir,
            prefix=f"chunk_{result.chunk_index:06d}.",
            suffix=".tmp",
        )
        with os.fdopen(descriptor, "wb") as handle:
            np.savez(
                handle,
                indices=result.indices,
                parameters=result.parameters,
                outputs=result.outputs,
            )
        os.replace(temporary, path)
        return path

    def read_chunk(self, chunk_index):
        """``(indices, parameters, outputs)`` arrays of one chunk.

        A chunk file that exists but cannot be read (truncated archive,
        torn copy, missing arrays) raises :class:`CampaignError` naming
        the file -- never a bare ``zipfile.BadZipFile`` -- so callers
        can uniformly treat unreadable as recomputable.
        """
        path = self.chunk_path(chunk_index)
        if not os.path.isfile(path):
            raise CampaignError(
                f"chunk {chunk_index} is not present in {self.path!r}"
            )
        try:
            with np.load(path) as data:
                return (
                    data["indices"].copy(),
                    data["parameters"].copy(),
                    data["outputs"].copy(),
                )
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile) as exc:
            raise CampaignError(
                f"chunk file {path!r} is corrupt or truncated "
                f"({type(exc).__name__}: {exc}); delete it or resume to "
                "recompute the chunk"
            ) from exc

    # ------------------------------------------------------------------
    # Reducer state
    # ------------------------------------------------------------------
    @property
    def reducer_state_path(self):
        return os.path.join(self.path, _REDUCER_STATE)

    def write_reducer_state(self, meta, arrays):
        """Atomically checkpoint one reduction snapshot.

        ``meta`` is a small JSON dict identifying the reduction (reducer
        config, chunk progress); ``arrays`` maps names to numpy arrays
        (the reducer's ``state_dict`` plus the runner's bookkeeping).
        The same temp-file + ``os.replace`` discipline as chunk writes:
        a killed process leaves either the previous snapshot or the new
        one, never a torn file.
        """
        descriptor, temporary = tempfile.mkstemp(
            dir=self.path, prefix="reducer_state.", suffix=".tmp"
        )
        with os.fdopen(descriptor, "wb") as handle:
            np.savez(
                handle,
                **{_STATE_META_KEY: np.frombuffer(
                    json.dumps(meta, sort_keys=True).encode("utf-8"),
                    dtype=np.uint8,
                )},
                **arrays,
            )
        os.replace(temporary, self.reducer_state_path)
        return self.reducer_state_path

    def read_reducer_state(self):
        """``(meta, arrays)`` of the checkpointed reduction, or ``None``.

        Returns ``None`` for stores without a snapshot (every store is
        readable without one -- the runner then re-folds the chunks) and
        for unreadable snapshots, which are treated as absent rather
        than fatal: the chunk files remain the source of truth.
        """
        if not os.path.isfile(self.reducer_state_path):
            return None
        try:
            with np.load(self.reducer_state_path) as data:
                meta = json.loads(
                    bytes(data[_STATE_META_KEY]).decode("utf-8")
                )
                arrays = {
                    name: data[name].copy()
                    for name in data.files
                    if name != _STATE_META_KEY
                }
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None
        return meta, arrays

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    @property
    def quarantine_path(self):
        return os.path.join(self.path, "quarantine.json")

    def read_quarantine(self):
        """``{chunk_index: record}`` of quarantined chunks (``{}`` when
        the campaign never quarantined anything)."""
        if not os.path.isfile(self.quarantine_path):
            return {}
        payload = self._read_json(self.quarantine_path)
        chunks = payload.get("chunks", {})
        return {int(index): dict(record)
                for index, record in chunks.items()}

    def quarantine_chunk(self, chunk_index, record):
        """Append one chunk's failure record to ``quarantine.json``.

        Read-modify-replace under the atomic ``_write_json`` discipline:
        each append publishes a complete file, so a kill mid-campaign
        leaves every previously quarantined chunk on record.
        """
        chunks = self.read_quarantine()
        chunks[int(chunk_index)] = dict(record)
        self._write_json(self.quarantine_path, {
            "chunks": {
                str(index): chunks[index] for index in sorted(chunks)
            },
        })
        return self.quarantine_path

    def discard_quarantined(self, chunk_indices):
        """Drop chunks from the quarantine (they succeeded on a retry).

        Removes ``quarantine.json`` entirely once empty, so a fully
        healed store is indistinguishable from a failure-free one.
        """
        chunks = self.read_quarantine()
        for chunk_index in chunk_indices:
            chunks.pop(int(chunk_index), None)
        if chunks:
            self._write_json(self.quarantine_path, {
                "chunks": {
                    str(index): chunks[index] for index in sorted(chunks)
                },
            })
        elif os.path.isfile(self.quarantine_path):
            os.remove(self.quarantine_path)
        return self.quarantine_path

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    @property
    def telemetry_dir(self):
        return os.path.join(self.path, _TELEMETRY_DIR)

    @property
    def run_log_path(self):
        """The append-only run-scoped event log (``telemetry/run.jsonl``)."""
        return os.path.join(self.telemetry_dir, "run.jsonl")

    @property
    def telemetry_metrics_path(self):
        return os.path.join(self.telemetry_dir, "metrics.json")

    def chunk_telemetry_path(self, chunk_index):
        return os.path.join(
            self.telemetry_dir, f"chunk_{int(chunk_index):06d}.jsonl"
        )

    def telemetry_chunks(self):
        """Sorted indices of every chunk with a telemetry event file."""
        if not os.path.isdir(self.telemetry_dir):
            return []
        indices = []
        for name in os.listdir(self.telemetry_dir):
            if name.startswith("chunk_") and name.endswith(".jsonl"):
                try:
                    indices.append(
                        int(name[len("chunk_"):-len(".jsonl")])
                    )
                except ValueError:
                    continue
        return sorted(indices)

    def write_chunk_telemetry(self, chunk_index, events):
        """Atomically persist one chunk's telemetry events (JSONL).

        Called by the runner *before* ``write_chunk``: a kill between
        the two writes leaves an orphan telemetry file for a chunk that
        will be recomputed (and its telemetry rewritten), never a
        completed chunk with missing telemetry.
        """
        return write_events(
            self.chunk_telemetry_path(chunk_index), events
        )

    def read_chunk_telemetry(self, chunk_index):
        """One chunk's telemetry events (``[]`` when never captured)."""
        path = self.chunk_telemetry_path(chunk_index)
        if not os.path.isfile(path):
            return []
        return read_events(path)

    def append_run_events(self, events):
        """Append run-scoped events to ``telemetry/run.jsonl``."""
        return append_events(self.run_log_path, events)

    def read_run_events(self):
        """All run-scoped events (``[]`` for stores without telemetry)."""
        if not os.path.isfile(self.run_log_path):
            return []
        return read_events(self.run_log_path)

    def write_telemetry_metrics(self, metrics):
        """Persist the merged campaign metrics (``as_dict`` payload)."""
        self._write_json(self.telemetry_metrics_path, metrics)
        return self.telemetry_metrics_path

    def read_telemetry_metrics(self):
        """The merged campaign metrics dict, or ``None``."""
        if not os.path.isfile(self.telemetry_metrics_path):
            return None
        return self._read_json(self.telemetry_metrics_path)

    @property
    def progress_path(self):
        return os.path.join(self.telemetry_dir, _PROGRESS_NAME)

    def write_progress(self, progress):
        """Atomically replace ``telemetry/progress.json``.

        ``progress`` is the latest heartbeat snapshot (done/total/rate);
        status readers in other processes poll this single small file
        instead of tailing ``run.jsonl``.
        """
        self._write_json(self.progress_path, progress)
        return self.progress_path

    def read_progress(self):
        """The latest progress snapshot, or ``None``.

        Tolerates a missing or torn file (a reader can race the atomic
        replace only across filesystems that lack atomic rename, and a
        store may simply predate progress tracking).
        """
        try:
            return self._read_json(self.progress_path)
        except CampaignError:
            return None

    def read_telemetry(self):
        """Everything the telemetry layer persisted, in chunk order.

        Returns ``{"chunks": {index: events}, "run": events,
        "metrics": dict-or-None}``; all parts empty/None for stores
        without telemetry, so report code can degrade gracefully.
        """
        return {
            "chunks": {
                index: self.read_chunk_telemetry(index)
                for index in self.telemetry_chunks()
            },
            "run": self.read_run_events(),
            "metrics": self.read_telemetry_metrics(),
        }

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def write_summary(self, summary):
        """Persist the final campaign summary (JSON dict)."""
        self._write_json(self.summary_path, summary)
        return self.summary_path

    def read_summary(self):
        """The persisted summary (raises if the campaign never finished)."""
        if not os.path.isfile(self.summary_path):
            raise CampaignError(
                f"no summary in {self.path!r}; the campaign has not "
                "completed (use 'resume' to finish it)"
            )
        return self._read_json(self.summary_path)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _write_json(path, payload):
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        descriptor, temporary = tempfile.mkstemp(
            dir=directory, suffix=".tmp"
        )
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temporary, path)

    @staticmethod
    def _read_json(path):
        if not os.path.isfile(path):
            raise CampaignError(f"missing store file {path!r}")
        with open(path, "r", encoding="utf-8") as handle:
            try:
                return json.load(handle)
            except json.JSONDecodeError as exc:
                raise CampaignError(
                    f"corrupt store file {path!r}: {exc}"
                ) from exc

    def __repr__(self):
        state = "initialized" if self.exists() else "empty"
        return f"ArtifactStore({self.path!r}, {state})"
