"""Command line interface: ``python -m repro.campaign`` / ``repro-campaign``.

Subcommands::

    spec    write a JSON campaign spec template for a registered problem
    run     execute a campaign spec (optionally checkpointing to a store)
    resume  finish the campaign pinned in an existing store directory
    report  print the summary table of a completed campaign
    sobol   sensitivity campaigns: spec / run / resume / report

Quickstart (the paper's Monte Carlo study, distributed over 4 workers)::

    repro-campaign spec date16 --samples 64 -o campaign.json
    repro-campaign run campaign.json --store out/ --executor parallel \\
        --workers 4
    repro-campaign report out/

Kill the ``run`` at any point and ``repro-campaign resume out/`` finishes
only the missing chunks, reproducing the uninterrupted result exactly.

The Sobol sensitivity study (which wire's geometric uncertainty drives
the hottest-wire temperature variance) distributes the same way::

    repro-campaign sobol spec date16 --samples 64 -o sobol.json
    repro-campaign sobol run sobol.json --store sens/ --executor parallel \\
        --workers 4
    repro-campaign sobol report sens/

``sobol spec --second-order`` adds the ``AB_ij`` pair blocks (ranked
interaction table in the report), ``--groups "0,1,2;3,4"`` grouped
factor blocks, and ``sobol run --streaming`` folds each chunk into
running Jansen sums so huge vector QoIs never materialize the full
output matrix (bit-identical indices, no bootstrap CIs).

``run``/``resume``/``report`` also auto-detect sensitivity stores and
specs, so the generic commands keep working on either campaign kind.
"""

import argparse
import sys

from ..errors import CampaignError, ReproError
from .executor import make_executor
from .runner import resume_campaign, run_campaign
from .spec import CampaignSpec
from .store import ArtifactStore


def _progress_printer(stream):
    def progress(done, total):
        print(f"chunk {done}/{total} complete", file=stream, flush=True)

    return progress


def _add_executor_arguments(parser):
    parser.add_argument(
        "--executor", choices=("serial", "parallel"), default="serial",
        help="where samples run (default: serial)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process count for --executor parallel (default: CPU count)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-chunk progress lines",
    )


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Batch execution of UQ campaigns with checkpoint/resume.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    spec = commands.add_parser(
        "spec", help="write a campaign spec template for a known problem"
    )
    spec.add_argument("problem", help="registered problem name, e.g. date16")
    spec.add_argument("-o", "--output", required=True,
                      help="path of the JSON spec to write")
    spec.add_argument("--samples", type=int, default=64)
    spec.add_argument("--seed", type=int, default=0)
    spec.add_argument("--chunk-size", type=int, default=8)
    spec.add_argument("--resolution", default="coarse",
                      help="mesh preset for field problems")

    run = commands.add_parser("run", help="execute a campaign spec")
    run.add_argument("spec", help="path of the JSON campaign spec")
    run.add_argument("--store", default=None,
                     help="artifact store directory (enables resume)")
    _add_executor_arguments(run)

    resume = commands.add_parser(
        "resume", help="finish the campaign pinned in a store directory"
    )
    resume.add_argument("store", help="artifact store directory")
    _add_executor_arguments(resume)

    report = commands.add_parser(
        "report", help="print the summary of a completed campaign"
    )
    report.add_argument("store", help="artifact store directory")

    sobol = commands.add_parser(
        "sobol", help="Saltelli/Sobol sensitivity campaigns"
    )
    sobol_commands = sobol.add_subparsers(dest="sobol_command", required=True)

    sobol_spec = sobol_commands.add_parser(
        "spec", help="write a sensitivity campaign spec template"
    )
    sobol_spec.add_argument("problem",
                            help="registered problem name, e.g. date16")
    sobol_spec.add_argument("-o", "--output", required=True,
                            help="path of the JSON spec to write")
    sobol_spec.add_argument("--samples", type=int, default=64,
                            help="base sample count M (cost is "
                                 "M (d + 2 + pairs + groups))")
    sobol_spec.add_argument("--seed", type=int, default=0)
    sobol_spec.add_argument("--chunk-size", type=int, default=8)
    sobol_spec.add_argument("--resolution", default="coarse",
                            help="mesh preset for field problems")
    sobol_spec.add_argument("--qoi", default="final",
                            help="QoI extractor (default: per-wire end "
                                 "temperatures)")
    sobol_spec.add_argument(
        "--second-order", action="store_true",
        help="add the AB_ij pair blocks (closed second-order and "
             "interaction indices; cost grows to M (d + 2 + d(d-1)/2))",
    )
    sobol_spec.add_argument(
        "--groups", default=None, metavar="\"0,1;2,3\"",
        help="semicolon-separated factor groups of comma-separated "
             "column indices; adds one grouped block per group",
    )

    sobol_run = sobol_commands.add_parser(
        "run", help="execute a sensitivity campaign spec"
    )
    sobol_run.add_argument("spec", help="path of the JSON campaign spec")
    sobol_run.add_argument("--store", default=None,
                           help="artifact store directory (enables resume)")
    _add_executor_arguments(sobol_run)
    _add_bootstrap_arguments(sobol_run)

    sobol_resume = sobol_commands.add_parser(
        "resume", help="finish the sensitivity campaign in a store"
    )
    sobol_resume.add_argument("store", help="artifact store directory")
    _add_executor_arguments(sobol_resume)
    _add_bootstrap_arguments(sobol_resume)

    sobol_report = sobol_commands.add_parser(
        "report", help="print the ranked Sobol-index table of a store"
    )
    sobol_report.add_argument("store", help="artifact store directory")
    return parser


def _add_bootstrap_arguments(parser):
    parser.add_argument(
        "--bootstrap", type=int, default=None,
        help="override the spec's bootstrap replicate count for the "
             "confidence intervals (0 disables; default: the value "
             "pinned in the spec)",
    )
    parser.add_argument(
        "--streaming", action="store_true",
        help="fold each chunk into running Jansen sums instead of "
             "assembling the full output matrix (bit-identical "
             "indices; implies --bootstrap 0 because the bootstrap "
             "must resample full rows)",
    )


def _reduction_options(arguments):
    """Bootstrap/streaming kwargs of one ``sobol run``/``resume`` call.

    ``--streaming`` without an explicit ``--bootstrap`` disables the
    intervals (the streaming reduction cannot resample rows); an
    explicit non-zero ``--bootstrap`` together with ``--streaming`` is
    rejected by the runner with a clear message.
    """
    num_bootstrap = arguments.bootstrap
    if arguments.streaming and num_bootstrap is None:
        num_bootstrap = 0
    return {
        "num_bootstrap": num_bootstrap,
        "streaming": True if arguments.streaming else None,
    }


def _parse_groups(text):
    """``"0,1;2,3" -> [[0, 1], [2, 3]]`` (CampaignError on bad input)."""
    if text is None:
        return None
    groups = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        try:
            groups.append([int(entry) for entry in part.split(",")])
        except ValueError:
            raise CampaignError(
                f"invalid factor group {part!r}; expected "
                "comma-separated column indices like '0,1,2'"
            ) from None
    return groups or None


def _print_result(result, stream):
    _print_summary(result.summary(), stream)


def _print_summary(summary, stream):
    if summary.get("kind") == "sensitivity":
        from ..reporting.sensitivity import format_sensitivity_summary

        print(format_sensitivity_summary(summary), file=stream)
        return
    from ..reporting.campaign import format_campaign_summary

    print(format_campaign_summary(summary), file=stream)


def main(argv=None):
    """Entry point; returns a process exit code."""
    try:
        return _dispatch(_build_parser().parse_args(argv))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into e.g. `head`, which closed the pipe;
        # redirect stdout to devnull so the interpreter's exit flush
        # does not raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(arguments):
    out = sys.stdout

    if arguments.command == "spec":
        if arguments.problem != "date16":
            print(
                f"no spec template for problem {arguments.problem!r} "
                "(templates exist for: date16); write the JSON by hand",
                file=sys.stderr,
            )
            return 2
        from ..package3d.scenarios import date16_campaign_spec

        spec = date16_campaign_spec(
            num_samples=arguments.samples,
            seed=arguments.seed,
            chunk_size=arguments.chunk_size,
            resolution=arguments.resolution,
        )
        spec.save(arguments.output)
        print(f"wrote {arguments.output}", file=out)
        return 0

    if arguments.command == "run":
        spec = CampaignSpec.load(arguments.spec)
        executor = make_executor(arguments.executor,
                                 num_workers=arguments.workers)
        progress = None if arguments.quiet else _progress_printer(sys.stderr)
        if spec.kind == "sensitivity":
            from .sensitivity import run_sensitivity_campaign

            result = run_sensitivity_campaign(
                spec, store=arguments.store, executor=executor,
                progress=progress,
            )
        else:
            result = run_campaign(
                spec, store=arguments.store, executor=executor,
                progress=progress,
            )
        _print_result(result, out)
        return 0

    if arguments.command == "resume":
        executor = make_executor(arguments.executor,
                                 num_workers=arguments.workers)
        progress = None if arguments.quiet else _progress_printer(sys.stderr)
        result = resume_campaign(
            arguments.store, executor=executor, progress=progress
        )
        _print_result(result, out)
        return 0

    if arguments.command == "report":
        summary = ArtifactStore(arguments.store).read_summary()
        _print_summary(summary, out)
        return 0

    if arguments.command == "sobol":
        return _dispatch_sobol(arguments, out)

    raise AssertionError(f"unhandled command {arguments.command!r}")


def _dispatch_sobol(arguments, out):
    from .sensitivity import (
        SensitivitySpec,
        resume_sensitivity_campaign,
        run_sensitivity_campaign,
    )

    if arguments.sobol_command == "spec":
        if arguments.problem != "date16":
            print(
                f"no sensitivity spec template for problem "
                f"{arguments.problem!r} (templates exist for: date16); "
                "write the JSON by hand",
                file=sys.stderr,
            )
            return 2
        from ..package3d.scenarios import date16_sensitivity_spec

        spec = date16_sensitivity_spec(
            num_base_samples=arguments.samples,
            seed=arguments.seed,
            chunk_size=arguments.chunk_size,
            resolution=arguments.resolution,
            qoi=arguments.qoi,
            second_order=arguments.second_order,
            groups=_parse_groups(arguments.groups),
        )
        spec.save(arguments.output)
        print(f"wrote {arguments.output}", file=out)
        return 0

    if arguments.sobol_command == "run":
        spec = CampaignSpec.load(arguments.spec)
        if not isinstance(spec, SensitivitySpec):
            print(
                f"error: {arguments.spec!r} is not a sensitivity campaign "
                "spec (use 'repro-campaign run' for plain campaigns)",
                file=sys.stderr,
            )
            return 1
        executor = make_executor(arguments.executor,
                                 num_workers=arguments.workers)
        progress = None if arguments.quiet else _progress_printer(sys.stderr)
        result = run_sensitivity_campaign(
            spec, store=arguments.store, executor=executor,
            progress=progress, **_reduction_options(arguments),
        )
        _print_result(result, out)
        return 0

    if arguments.sobol_command == "resume":
        executor = make_executor(arguments.executor,
                                 num_workers=arguments.workers)
        progress = None if arguments.quiet else _progress_printer(sys.stderr)
        result = resume_sensitivity_campaign(
            arguments.store, executor=executor, progress=progress,
            **_reduction_options(arguments),
        )
        _print_result(result, out)
        return 0

    if arguments.sobol_command == "report":
        summary = ArtifactStore(arguments.store).read_summary()
        _print_summary(summary, out)
        return 0

    raise AssertionError(
        f"unhandled sobol command {arguments.sobol_command!r}"
    )


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
