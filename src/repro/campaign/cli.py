"""Command line interface: ``python -m repro.campaign`` / ``repro-campaign``.

Subcommands::

    spec    write a JSON campaign spec template for a registered problem
    run     execute a campaign spec of any kind (Monte Carlo, Sobol, PCE)
    resume  finish the campaign pinned in an existing store directory
    report  print the summary table (+ provenance) of a completed campaign
            (--timings adds per-chunk wall/queue times, worker
            utilization and cache hit rates from the telemetry layer)
    trace   inspect the raw telemetry of a store (event inventory and
            span statistics; --dump prints JSONL, --validate checks
            every event against the documented schema)
    serve   run the campaign service (queued jobs over HTTP; see
            repro.service)
    submit  POST a campaign spec to a running service -> job id
    status  one JSON status snapshot of a job (service URL) or store
            directory -- frontier, quarantine, heartbeat, partial
            moments, all without reading chunk data
    watch   stream JSONL status lines until the job/store completes
    sobol   thin aliases kept for sensitivity-campaign muscle memory

Quickstart (the paper's Monte Carlo study, distributed over 4 workers)::

    repro-campaign spec date16 --samples 64 -o campaign.json
    repro-campaign run campaign.json --store out/ --executor process \\
        --workers 4
    repro-campaign report out/

Kill the ``run`` at any point and ``repro-campaign resume out/`` finishes
only the missing chunks, reproducing the uninterrupted result exactly.
``report out/ --partial`` meanwhile summarizes whatever is checkpointed
so far (partial moments, frontier, quarantine) instead of erroring.

The service turns campaigns into queued jobs (multi-tenant stores under
one root, bounded concurrency, restart recovery)::

    repro-campaign serve /var/lib/repro --port 8080 --max-workers 2 &
    repro-campaign submit http://127.0.0.1:8080 campaign.json \\
        --tenant alice
    repro-campaign watch http://127.0.0.1:8080 job-0001-abcdef12

``run``/``resume``/``report`` dispatch on the campaign kind, so the same
three commands serve the Sobol sensitivity study (which wire's geometric
uncertainty drives the hottest-wire temperature variance)::

    repro-campaign sobol spec date16 --samples 64 -o sobol.json
    repro-campaign run sobol.json --store sens/ --executor process \\
        --workers 4
    repro-campaign report sens/

(``repro-campaign sobol run/resume/report`` still work as aliases.)

``--executor`` names any registered backend -- ``serial`` (default),
``process`` (process pool with per-worker model reuse; alias
``parallel``), ``thread`` (thread pool behind the generic futures
adapter), or anything user code added via
:func:`repro.campaign.register_backend`; passing ``--workers`` with a
backend that cannot honor it is an error, never silently ignored.

``--max-retries N`` (plus ``--retry-backoff`` / ``--chunk-timeout``)
turns on fault tolerance: failed chunks are retried, chunks that
exhaust their retries are quarantined in ``<store>/quarantine.json``
and the campaign completes over the surviving samples (``report``
states the quarantined counts).  ``resume`` retries quarantined chunks
by default; ``--no-retry-quarantined`` reduces around them instead.

``--reducer`` overrides what the evaluations reduce *to*: ``moments``
(mean/std statistics), ``jansen`` (Sobol indices; ``--bootstrap N``
overrides the spec's CI replicates, ``--streaming`` folds chunks into
running sums so huge vector QoIs never materialize the output matrix),
or ``pce`` (fit the polynomial-chaos surrogate from the checkpointed
samples -- ``--pce-degree`` sets the total degree -- and report its
analytic Sobol indices).  ``repro-campaign resume out/ --reducer pce``
re-reduces an existing store without a single fresh solve.

``sobol spec --second-order`` adds the ``AB_ij`` pair blocks (ranked
interaction table in the report) and ``--groups "0,1,2;3,4"`` grouped
factor blocks.
"""

import argparse
import sys

from ..errors import CampaignError, ReproError
from .executor import make_executor, registered_backends
from .runner import run_campaign
from .spec import CampaignSpec
from .store import ArtifactStore


def _progress_printer(stream):
    """Heartbeat-style progress printer (single-argument event dict).

    The runner detects the one-argument signature and delivers full
    heartbeat events, so the printed line carries the EWMA chunk rate
    and ETA on top of the classic ``chunk done/total complete`` prefix.
    """
    def progress(event):
        done = event["done"]
        total = event["total"]
        line = f"chunk {done}/{total} complete"
        rate = event.get("rate_per_s")
        eta = event.get("eta_s")
        if rate:
            line += f" ({rate:.3g} chunks/s"
            if eta is not None and done < total:
                line += f", eta {eta:.0f} s"
            line += ")"
        print(line, file=stream, flush=True)

    return progress


def _add_executor_arguments(parser):
    parser.add_argument(
        "--executor", default="serial", metavar="NAME",
        help="registered executor backend (default: serial; built in: "
             f"{', '.join(registered_backends())})",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count for parallel backends (default: CPU count); "
             "an error with backends that cannot honor it",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-chunk progress lines",
    )
    parser.add_argument(
        "--telemetry", action=argparse.BooleanOptionalAction, default=None,
        help="force per-chunk telemetry capture on/off for this run "
             "(default: the REPRO_TELEMETRY global flag, normally on)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="retry a failed chunk up to N times before quarantining it "
             "(default: no retries -- the first chunk failure aborts "
             "the run)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=None, metavar="SECONDS",
        help="base delay before a chunk retry, doubled per attempt with "
             "deterministic jitter (default 0: retry immediately; "
             "implies --max-retries 0 when given alone)",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        help="straggler bound: a chunk in flight longer than this "
             "counts as a failed attempt and is speculatively "
             "re-submitted (pool backends only; implies --max-retries 0 "
             "when given alone)",
    )
    parser.add_argument(
        "--array-backend", default=None, metavar="NAME",
        help="array backend the workers' solvers run on (numpy | "
             "devicesim | cupy with the [gpu] extra; default: the "
             "spec's pinned backend, else numpy); validated up front "
             "and pinned into the store manifest",
    )


def _add_reducer_arguments(parser):
    parser.add_argument(
        "--reducer", default=None, metavar="KIND",
        help="override the reduction (moments | jansen | pce | any "
             "registered kind; default: the spec's reducer, then the "
             "campaign kind's default)",
    )
    parser.add_argument(
        "--pce-degree", type=int, default=None, metavar="P",
        help="total polynomial degree for --reducer pce",
    )
    _add_bootstrap_arguments(parser)


def _add_bootstrap_arguments(parser):
    parser.add_argument(
        "--bootstrap", type=int, default=None,
        help="override the spec's bootstrap replicate count for the "
             "jansen confidence intervals (0 disables; default: the "
             "value pinned in the spec)",
    )
    parser.add_argument(
        "--streaming", action="store_true",
        help="fold each chunk into running Jansen sums instead of "
             "assembling the full output matrix (bit-identical "
             "indices; implies --bootstrap 0 because the bootstrap "
             "must resample full rows)",
    )


def _add_quarantine_arguments(parser):
    parser.add_argument(
        "--retry-quarantined", action=argparse.BooleanOptionalAction,
        default=True,
        help="re-evaluate chunks quarantined by a previous run "
             "(default; --no-retry-quarantined leaves them quarantined "
             "and reduces around their samples)",
    )


def _retry_policy_from_arguments(arguments):
    """The ``RetryPolicy`` one invocation asks for, or ``None``.

    ``None`` (no retry flag at all) preserves the historic fail-fast
    behavior; any of the three flags opts into fault tolerance.
    """
    max_retries = getattr(arguments, "max_retries", None)
    backoff = getattr(arguments, "retry_backoff", None)
    timeout = getattr(arguments, "chunk_timeout", None)
    if max_retries is None and backoff is None and timeout is None:
        return None
    from .faults import RetryPolicy

    return RetryPolicy(
        max_retries=0 if max_retries is None else max_retries,
        backoff_s=0.0 if backoff is None else backoff,
        timeout_s=timeout,
    )


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Batch execution of UQ campaigns with checkpoint/resume.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    spec = commands.add_parser(
        "spec", help="write a campaign spec template for a known problem"
    )
    spec.add_argument("problem", help="registered problem name, e.g. date16")
    spec.add_argument("-o", "--output", required=True,
                      help="path of the JSON spec to write")
    spec.add_argument("--samples", type=int, default=64)
    spec.add_argument("--seed", type=int, default=0)
    spec.add_argument("--chunk-size", type=int, default=8)
    spec.add_argument("--resolution", default="coarse",
                      help="mesh preset for field problems")
    spec.add_argument("--time-stepping", choices=("fixed", "adaptive"),
                      default=None,
                      help="transient integration of the field problem "
                           "(default: the paper's fixed 51-point grid)")
    spec.add_argument("--adaptive-tolerance", type=float, default=None,
                      metavar="K",
                      help="local-error tolerance per adaptive step "
                           "(with --time-stepping adaptive; default 1.0)")
    spec.add_argument("--array-backend", default=None, metavar="NAME",
                      help="pin an array backend into the spec (numpy | "
                           "devicesim | cupy; default: unpinned, workers "
                           "use the numpy reference)")
    spec.add_argument("--quantize-dt", action=argparse.BooleanOptionalAction,
                      default=None,
                      help="snap adaptive steps onto the geometric dt "
                           "ladder so per-dt factorizations amortize "
                           "(default: on; --no-quantize-dt restores the "
                           "raw controller)")
    spec.add_argument("--reducer", default=None, metavar="KIND",
                      help="pin a reducer kind into the spec (e.g. pce)")
    spec.add_argument("--pce-degree", type=int, default=None, metavar="P",
                      help="total polynomial degree for --reducer pce")

    run = commands.add_parser(
        "run", help="execute a campaign spec (any kind)"
    )
    run.add_argument("spec", help="path of the JSON campaign spec")
    run.add_argument("--store", default=None,
                     help="artifact store directory (enables resume)")
    _add_executor_arguments(run)
    _add_reducer_arguments(run)

    resume = commands.add_parser(
        "resume", help="finish the campaign pinned in a store directory"
    )
    resume.add_argument("store", help="artifact store directory")
    _add_executor_arguments(resume)
    _add_reducer_arguments(resume)
    _add_quarantine_arguments(resume)

    report = commands.add_parser(
        "report", help="print the summary of a completed campaign"
    )
    report.add_argument("store", help="artifact store directory")
    report.add_argument(
        "--timings", action="store_true",
        help="append the telemetry timing report (ranked per-chunk "
             "wall/queue times, worker utilization, cache hit rate)",
    )
    report.add_argument(
        "--partial", action="store_true",
        help="summarize an in-progress or killed store from its "
             "checkpointed reducer state instead of erroring when "
             "summary.json is absent",
    )

    trace = commands.add_parser(
        "trace", help="inspect the telemetry recorded in a store"
    )
    trace.add_argument("store", help="artifact store directory")
    trace.add_argument(
        "--dump", action="store_true",
        help="print every recorded event as JSONL (run log first, then "
             "chunk files in chunk order)",
    )
    trace.add_argument(
        "--validate", action="store_true",
        help="validate every recorded event against the documented "
             "schema; fails when the store holds no telemetry",
    )

    serve = commands.add_parser(
        "serve", help="run the campaign service (HTTP job queue)"
    )
    serve.add_argument("root",
                       help="service root directory (queue.json + "
                            "stores/<tenant>/<job-id>/)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0: pick a free port; the "
                            "bound address is printed on startup)")
    serve.add_argument("--max-workers", type=int, default=2,
                       help="concurrent campaign budget (default 2)")
    serve.add_argument("--executor", default=None, metavar="NAME",
                       help="default executor backend for jobs that do "
                            "not name one (default: serial)")
    serve.add_argument("--workers", type=int, default=None,
                       help="default per-job worker count for parallel "
                            "backends")
    serve.add_argument("--no-recover", action="store_true",
                       help="do not requeue jobs left running by a "
                            "previous service process")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request")

    submit = commands.add_parser(
        "submit", help="submit a campaign spec to a running service"
    )
    submit.add_argument("url", help="service base URL, e.g. "
                                    "http://127.0.0.1:8080")
    submit.add_argument("spec", help="path of the JSON campaign spec")
    submit.add_argument("--tenant", default="default",
                        help="namespace the job's store under this "
                             "tenant (default: 'default')")
    submit.add_argument("--executor", default=None, metavar="NAME",
                        help="executor backend for this job")
    submit.add_argument("--workers", type=int, default=None,
                        help="worker count for this job's backend")
    submit.add_argument("--array-backend", default=None, metavar="NAME",
                        help="array backend job option (numpy | devicesim "
                             "| cupy); validated service-side before the "
                             "job's workers spawn")
    submit.add_argument("--max-retries", type=int, default=None,
                        metavar="N",
                        help="per-chunk retry budget for this job")

    status = commands.add_parser(
        "status", help="one JSON status snapshot of a job or store"
    )
    status.add_argument("target",
                        help="service base URL (with JOB_ID) or a store "
                             "directory")
    status.add_argument("job_id", nargs="?", default=None,
                        help="job id (required with a service URL)")

    watch = commands.add_parser(
        "watch", help="stream JSONL status lines until completion"
    )
    watch.add_argument("target",
                       help="service base URL (with JOB_ID) or a store "
                            "directory")
    watch.add_argument("job_id", nargs="?", default=None,
                       help="job id (required with a service URL)")
    watch.add_argument("--interval", type=float, default=0.5,
                       help="poll/stream interval in seconds "
                            "(default 0.5)")
    watch.add_argument("--timeout", type=float, default=None,
                       help="give up after this many seconds (default: "
                            "wait forever)")

    sobol = commands.add_parser(
        "sobol", help="sensitivity-campaign aliases (spec is the only "
                      "subcommand the generic verbs lack)"
    )
    sobol_commands = sobol.add_subparsers(dest="sobol_command", required=True)

    sobol_spec = sobol_commands.add_parser(
        "spec", help="write a sensitivity campaign spec template"
    )
    sobol_spec.add_argument("problem",
                            help="registered problem name, e.g. date16")
    sobol_spec.add_argument("-o", "--output", required=True,
                            help="path of the JSON spec to write")
    sobol_spec.add_argument("--samples", type=int, default=64,
                            help="base sample count M (cost is "
                                 "M (d + 2 + pairs + groups))")
    sobol_spec.add_argument("--seed", type=int, default=0)
    sobol_spec.add_argument("--chunk-size", type=int, default=8)
    sobol_spec.add_argument("--resolution", default="coarse",
                            help="mesh preset for field problems")
    sobol_spec.add_argument("--qoi", default="final",
                            help="QoI extractor (default: per-wire end "
                                 "temperatures)")
    sobol_spec.add_argument(
        "--second-order", action="store_true",
        help="add the AB_ij pair blocks (closed second-order and "
             "interaction indices; cost grows to M (d + 2 + d(d-1)/2))",
    )
    sobol_spec.add_argument(
        "--groups", default=None, metavar="\"0,1;2,3\"",
        help="semicolon-separated factor groups of comma-separated "
             "column indices; adds one grouped block per group",
    )

    sobol_run = sobol_commands.add_parser(
        "run", help="alias of 'run' for sensitivity specs"
    )
    sobol_run.add_argument("spec", help="path of the JSON campaign spec")
    sobol_run.add_argument("--store", default=None,
                           help="artifact store directory (enables resume)")
    _add_executor_arguments(sobol_run)
    _add_bootstrap_arguments(sobol_run)

    sobol_resume = sobol_commands.add_parser(
        "resume", help="alias of 'resume' for sensitivity stores"
    )
    sobol_resume.add_argument("store", help="artifact store directory")
    _add_executor_arguments(sobol_resume)
    _add_bootstrap_arguments(sobol_resume)
    _add_quarantine_arguments(sobol_resume)

    sobol_report = sobol_commands.add_parser(
        "report", help="alias of 'report'"
    )
    sobol_report.add_argument("store", help="artifact store directory")
    return parser


def _reducer_from_arguments(spec, arguments):
    """The reducer spec dict one ``run``/``resume`` invocation asks for.

    ``--reducer`` overrides the spec's pinned reducer kind; pinned
    options survive when the explicit kind matches the pinned one (so
    ``resume --reducer pce`` on a spec that pins ``{"kind": "pce",
    "degree": 4}`` keeps degree 4).  The jansen-only flags
    (``--bootstrap`` / ``--streaming``) layer on top and are rejected
    for every other kind instead of being silently dropped.
    ``--streaming`` without an explicit ``--bootstrap`` disables the
    intervals (the streaming reduction cannot resample rows).
    """
    kind = getattr(arguments, "reducer", None)
    pinned = spec.reducer or {"kind": spec.default_reducer_kind}
    if kind is None:
        kind = pinned["kind"]
    options = {}
    if kind == pinned["kind"]:
        options = {key: value for key, value in pinned.items()
                   if key != "kind"}
    num_bootstrap = getattr(arguments, "bootstrap", None)
    streaming = bool(getattr(arguments, "streaming", False))
    pce_degree = getattr(arguments, "pce_degree", None)
    if kind == "jansen":
        if streaming and num_bootstrap is None:
            num_bootstrap = 0
        if num_bootstrap is not None:
            options["num_bootstrap"] = num_bootstrap
        if streaming:
            options["streaming"] = True
    elif num_bootstrap is not None or streaming:
        raise CampaignError(
            "--bootstrap/--streaming configure the jansen reducer; they "
            f"do not apply to reducer {kind!r}"
        )
    if pce_degree is not None:
        if kind != "pce":
            raise CampaignError(
                f"--pce-degree applies to the pce reducer, not {kind!r}"
            )
        options["degree"] = pce_degree
    return {"kind": kind, **options}


def _import_scenario_module(spec):
    """Import the spec's module hook so user-registered problems, QoIs,
    reducers and executor backends resolve in this process too."""
    if spec.scenario.module:
        import importlib

        importlib.import_module(spec.scenario.module)


def _print_provenance(store, stream):
    provenance = store.read_provenance()
    if not provenance:
        return
    package = provenance.get("package", "unknown")
    version = provenance.get("package_version", "?")
    parts = [f"{key}={provenance[key]}"
             for key in ("reducer", "executor") if key in provenance]
    print(f"provenance: {package} {version} ({', '.join(parts)})",
          file=stream)


def _print_result(result, store, stream):
    if store is not None:
        _print_provenance(store, stream)
    _print_summary(result.summary(), stream)


def _print_summary(summary, stream):
    kind = summary.get("kind")
    if kind == "sensitivity":
        from ..reporting.sensitivity import format_sensitivity_summary

        print(format_sensitivity_summary(summary), file=stream)
        return
    if kind == "pce":
        from ..reporting.sensitivity import format_pce_summary

        print(format_pce_summary(summary), file=stream)
        return
    from ..reporting.campaign import format_campaign_summary

    print(format_campaign_summary(summary), file=stream)


def main(argv=None):
    """Entry point; returns a process exit code."""
    try:
        return _dispatch(_build_parser().parse_args(argv))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into e.g. `head`, which closed the pipe;
        # redirect stdout to devnull so the interpreter's exit flush
        # does not raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _run_command(spec, arguments, out, require_sensitivity=False):
    """Shared body of ``run`` and ``sobol run``."""
    _import_scenario_module(spec)
    if require_sensitivity:
        from .sensitivity import SensitivitySpec

        if not isinstance(spec, SensitivitySpec):
            print(
                "error: not a sensitivity campaign spec (use "
                "'repro-campaign run' for other campaign kinds)",
                file=sys.stderr,
            )
            return 1
    reducer = _reducer_from_arguments(spec, arguments)
    executor = make_executor(arguments.executor,
                             num_workers=arguments.workers)
    progress = None if arguments.quiet else _progress_printer(sys.stderr)
    store = (
        ArtifactStore(arguments.store) if arguments.store is not None
        else None
    )
    result = run_campaign(
        spec, store=store, executor=executor, progress=progress,
        reducer=reducer, telemetry=getattr(arguments, "telemetry", None),
        retry=_retry_policy_from_arguments(arguments),
        array_backend=getattr(arguments, "array_backend", None),
    )
    _print_result(result, store, out)
    return 0


def _resume_command(arguments, out):
    """Shared body of ``resume`` and ``sobol resume``."""
    store = ArtifactStore(arguments.store)
    if not store.exists():
        raise CampaignError(
            f"no campaign manifest at {store.path!r}; run 'run' first"
        )
    spec = store.load_spec()
    _import_scenario_module(spec)
    reducer = _reducer_from_arguments(spec, arguments)
    executor = make_executor(arguments.executor,
                             num_workers=arguments.workers)
    progress = None if arguments.quiet else _progress_printer(sys.stderr)
    result = run_campaign(
        spec, store=store, executor=executor, progress=progress,
        reducer=reducer, telemetry=getattr(arguments, "telemetry", None),
        retry=_retry_policy_from_arguments(arguments),
        retry_quarantined=getattr(arguments, "retry_quarantined", True),
        array_backend=getattr(arguments, "array_backend", None),
    )
    _print_result(result, store, out)
    return 0


def _report_command(store_path, out, timings=False, partial=False):
    store = ArtifactStore(store_path)
    if partial:
        from ..service.status import partial_summary

        summary = partial_summary(store)
        if summary.get("partial"):
            from ..reporting.campaign import format_partial_summary

            _print_provenance(store, out)
            print(format_partial_summary(summary), file=out)
            _print_quarantine(store, out)
            if timings:
                from ..reporting.telemetry import format_timings_report

                print("", file=out)
                print(format_timings_report(store.read_telemetry()),
                      file=out)
            return 0
        # Fall through: the campaign did complete; print the real thing.
    summary = store.read_summary()
    _print_provenance(store, out)
    _print_summary(summary, out)
    _print_quarantine(store, out)
    if timings:
        from ..reporting.telemetry import format_timings_report

        print("", file=out)
        print(format_timings_report(store.read_telemetry()), file=out)
    return 0


def _print_quarantine(store, out):
    quarantine = store.read_quarantine()
    if quarantine:
        samples = sum(
            len(record.get("indices", ()))
            for record in quarantine.values()
        )
        print(
            f"quarantined: {len(quarantine)} chunk(s) / {samples} "
            "sample(s) excluded from the statistics (see "
            "quarantine.json; 'resume' retries them)",
            file=out,
        )


def _serve_command(arguments, out):
    from ..service import CampaignService

    service = CampaignService(
        arguments.root,
        host=arguments.host,
        port=arguments.port,
        verbose=arguments.verbose,
        max_workers=arguments.max_workers,
        executor=arguments.executor,
        workers=arguments.workers,
    )
    recovered = service.start(recover=not arguments.no_recover)
    # The parsable address line comes first: subprocess harnesses bind
    # port 0 and read the actual port from here.
    print(f"serving at {service.url}", file=out, flush=True)
    print(
        f"root {service.manager.root} "
        f"(max_workers={service.manager.max_workers}, "
        f"{len(service.manager.queue)} known jobs, "
        f"{len(recovered)} recovered)",
        file=out, flush=True,
    )
    try:
        service._thread.join()
    except KeyboardInterrupt:
        print("shutting down...", file=sys.stderr)
    finally:
        service.stop(wait=True)
    return 0


def _submit_command(arguments, out):
    import json

    from ..service.http import submit_job

    spec = CampaignSpec.load(arguments.spec)
    options = {}
    if arguments.executor is not None:
        options["executor"] = arguments.executor
    if arguments.workers is not None:
        options["workers"] = arguments.workers
    if arguments.max_retries is not None:
        options["retry"] = arguments.max_retries
    if arguments.array_backend is not None:
        options["array_backend"] = arguments.array_backend
    job = submit_job(
        arguments.url, spec, tenant=arguments.tenant,
        options=options or None,
    )
    print(json.dumps(job, sort_keys=True), file=out)
    return 0


def _status_target(arguments):
    """Resolve the status/watch target: (url, job_id) or (None, store)."""
    target = arguments.target
    if target.startswith(("http://", "https://")):
        if not arguments.job_id:
            raise CampaignError(
                "status/watch on a service URL needs the job id: "
                "repro-campaign status URL JOB_ID"
            )
        return target, arguments.job_id
    if arguments.job_id:
        raise CampaignError(
            f"{target!r} is a store directory; a job id only applies "
            "to a service URL"
        )
    return None, target


def _status_command(arguments, out):
    import json

    url, target = _status_target(arguments)
    if url is not None:
        from ..service.http import job_status

        status = job_status(url, target)
    else:
        from ..service.status import store_status

        status = store_status(target)
    print(json.dumps(status, sort_keys=True), file=out)
    return 0


def _watch_command(arguments, out):
    import json

    url, target = _status_target(arguments)
    if url is not None:
        from ..service.http import watch_job

        for status in watch_job(
                url, target, interval_s=arguments.interval,
                timeout=arguments.timeout):
            print(json.dumps(status, sort_keys=True), file=out, flush=True)
        return 0
    # Local store: poll store_status until the campaign completes.
    import time as _time

    from ..service.status import store_status

    deadline = (
        None if arguments.timeout is None
        else _time.monotonic() + arguments.timeout
    )
    previous = None
    while True:
        status = store_status(target)
        if status != previous:
            previous = status
            print(json.dumps(status, sort_keys=True), file=out, flush=True)
        if status["state"] == "complete":
            return 0
        if deadline is not None and _time.monotonic() > deadline:
            print(
                f"error: watch of {target!r} timed out after "
                f"{arguments.timeout} s (state {status['state']!r})",
                file=sys.stderr,
            )
            return 1
        _time.sleep(arguments.interval)


def _trace_command(arguments, out):
    store = ArtifactStore(arguments.store)
    if not store.exists():
        raise CampaignError(
            f"no campaign manifest at {store.path!r}; run 'run' first"
        )
    telemetry = store.read_telemetry()
    ordered = list(telemetry["run"]) + [
        event
        for index in sorted(telemetry["chunks"])
        for event in telemetry["chunks"][index]
    ]
    if arguments.validate:
        from ..telemetry import validate_events

        if not ordered:
            raise CampaignError(
                f"store {store.path!r} holds no telemetry events to "
                "validate (was the campaign run with --no-telemetry?)"
            )
        count = validate_events(ordered)
        print(
            f"validated {count} events across "
            f"{len(telemetry['chunks'])} chunk logs", file=out,
        )
        return 0
    if arguments.dump:
        import json

        for event in ordered:
            print(json.dumps(event, sort_keys=True), file=out)
        return 0
    from ..reporting.telemetry import format_trace_summary

    print(format_trace_summary(telemetry), file=out)
    return 0


def _dispatch(arguments):
    out = sys.stdout

    if arguments.command == "spec":
        if arguments.problem != "date16":
            print(
                f"no spec template for problem {arguments.problem!r} "
                "(templates exist for: date16); write the JSON by hand",
                file=sys.stderr,
            )
            return 2
        from ..package3d.scenarios import date16_campaign_spec

        reducer = None
        if arguments.reducer is not None:
            reducer = {"kind": arguments.reducer}
            if arguments.pce_degree is not None:
                reducer["degree"] = arguments.pce_degree
        elif arguments.pce_degree is not None:
            raise CampaignError(
                "--pce-degree needs --reducer pce"
            )
        if (arguments.time_stepping != "adaptive"
                and (arguments.adaptive_tolerance is not None
                     or arguments.quantize_dt is not None)):
            raise CampaignError(
                "--adaptive-tolerance/--quantize-dt need "
                "--time-stepping adaptive"
            )
        spec = date16_campaign_spec(
            num_samples=arguments.samples,
            seed=arguments.seed,
            chunk_size=arguments.chunk_size,
            resolution=arguments.resolution,
            time_stepping=arguments.time_stepping,
            adaptive_tolerance=arguments.adaptive_tolerance,
            quantize_dt=arguments.quantize_dt,
            reducer=reducer,
            array_backend=arguments.array_backend,
        )
        spec.save(arguments.output)
        print(f"wrote {arguments.output}", file=out)
        return 0

    if arguments.command == "run":
        spec = CampaignSpec.load(arguments.spec)
        return _run_command(spec, arguments, out)

    if arguments.command == "resume":
        return _resume_command(arguments, out)

    if arguments.command == "report":
        return _report_command(arguments.store, out,
                               timings=arguments.timings,
                               partial=arguments.partial)

    if arguments.command == "trace":
        return _trace_command(arguments, out)

    if arguments.command == "serve":
        return _serve_command(arguments, out)

    if arguments.command == "submit":
        return _submit_command(arguments, out)

    if arguments.command == "status":
        return _status_command(arguments, out)

    if arguments.command == "watch":
        return _watch_command(arguments, out)

    if arguments.command == "sobol":
        return _dispatch_sobol(arguments, out)

    raise AssertionError(f"unhandled command {arguments.command!r}")


def _dispatch_sobol(arguments, out):
    if arguments.sobol_command == "spec":
        if arguments.problem != "date16":
            print(
                f"no sensitivity spec template for problem "
                f"{arguments.problem!r} (templates exist for: date16); "
                "write the JSON by hand",
                file=sys.stderr,
            )
            return 2
        from ..package3d.scenarios import date16_sensitivity_spec

        spec = date16_sensitivity_spec(
            num_base_samples=arguments.samples,
            seed=arguments.seed,
            chunk_size=arguments.chunk_size,
            resolution=arguments.resolution,
            qoi=arguments.qoi,
            second_order=arguments.second_order,
            groups=_parse_groups(arguments.groups),
        )
        spec.save(arguments.output)
        print(f"wrote {arguments.output}", file=out)
        return 0

    if arguments.sobol_command == "run":
        spec = CampaignSpec.load(arguments.spec)
        return _run_command(spec, arguments, out, require_sensitivity=True)

    if arguments.sobol_command == "resume":
        return _resume_command(arguments, out)

    if arguments.sobol_command == "report":
        return _report_command(arguments.store, out)

    raise AssertionError(
        f"unhandled sobol command {arguments.sobol_command!r}"
    )


def _parse_groups(text):
    """``"0,1;2,3" -> [[0, 1], [2, 3]]`` (CampaignError on bad input)."""
    if text is None:
        return None
    groups = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        try:
            groups.append([int(entry) for entry in part.split(",")])
        except ValueError:
            raise CampaignError(
                f"invalid factor group {part!r}; expected "
                "comma-separated column indices like '0,1,2'"
            ) from None
    return groups or None


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
