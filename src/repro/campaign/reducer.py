"""Reducers: what a campaign's evaluations reduce *to*.

The campaign runner separates three concerns: the spec says *what to
evaluate*, the executor backend says *where*, and the reducer -- this
module -- says *what the evaluations become*.  A reducer is a streaming
fold over checkpointed chunks with serializable state:

* :meth:`Reducer.fold` consumes one chunk of ``(indices, outputs)`` in
  contiguous global-index order (the runner guarantees chunk-index
  order, which is what makes every reduction bit-reproducible across
  executors, chunk sizes and kill/resume histories);
* :meth:`Reducer.state_dict` / :meth:`Reducer.load_state_dict` give the
  runner an exact float64 snapshot to checkpoint in the
  :class:`~repro.campaign.store.ArtifactStore` beside the chunk files,
  so a resume restores the *reduction*, not just the samples;
* :meth:`Reducer.finalize` turns the folded state into the
  campaign-kind-specific result object.

Three reducers ship built in:

* ``"moments"`` -- :class:`MomentsReducer`, Welford/Chan running
  statistics (the classic Monte Carlo campaign);
* ``"jansen"`` -- :class:`JansenReducer`, the streaming Jansen Sobol
  reduction including second-order/group blocks and the seeded
  bootstrap (the sensitivity campaign);
* ``"pce"`` -- :class:`PCEReducer`, fits the polynomial-chaos surrogate
  of :mod:`repro.uq.pce` from the campaign's checkpointed outputs and
  derives analytic Sobol indices from its coefficients -- global
  sensitivity at a fraction of the Saltelli solve count, with no fresh
  solves at all when the samples are already checkpointed.

User code adds kinds with :func:`register_reducer`; specs reference
them as ``{"kind": name, **options}`` in ``CampaignSpec.reducer``.
"""

import numpy as np

from ..errors import CampaignError
from ..uq.sensitivity import StreamingJansenAccumulator, jansen_bootstrap
from ..uq.statistics import RunningStatistics

_REDUCERS = {}


def register_reducer(kind, factory=None):
    """Register ``factory(spec, **options) -> Reducer`` under ``kind``.

    Usable directly or as a decorator; re-registering a kind overwrites
    the previous entry (idempotent module re-imports).  The factory
    receives the :class:`~repro.campaign.spec.CampaignSpec` being run
    plus the options of the reducer spec dict.
    """
    if factory is None:
        def decorator(func):
            _REDUCERS[str(kind)] = func
            return func
        return decorator
    _REDUCERS[str(kind)] = factory
    return factory


def get_reducer(kind):
    """Look up a reducer factory by kind name."""
    try:
        return _REDUCERS[kind]
    except KeyError:
        raise CampaignError(
            f"unknown reducer {kind!r}; registered: {sorted(_REDUCERS)}"
        ) from None


def registered_reducers():
    """Sorted names of every registered reducer kind."""
    return sorted(_REDUCERS)


def resolve_reducer(spec, reducer=None):
    """Normalize a reducer argument into a :class:`Reducer` instance.

    ``reducer`` may be a ready instance (returned as-is), a kind name,
    a ``{"kind": ..., **options}`` dict, or ``None`` -- which falls back
    to the spec's ``reducer`` field and finally to the spec kind's
    default (``"moments"`` for plain campaigns, ``"jansen"`` for
    sensitivity campaigns).
    """
    if isinstance(reducer, Reducer):
        return reducer
    if reducer is None:
        reducer = getattr(spec, "reducer", None)
    if reducer is None:
        reducer = {"kind": spec.default_reducer_kind}
    if isinstance(reducer, str):
        reducer = {"kind": reducer}
    if not isinstance(reducer, dict) or "kind" not in reducer:
        raise CampaignError(
            f"reducer must be a Reducer, a kind name or a dict with a "
            f"'kind' entry, got {reducer!r}"
        )
    options = dict(reducer)
    kind = options.pop("kind")
    factory = get_reducer(kind)
    try:
        return factory(spec, **options)
    except TypeError as exc:
        raise CampaignError(
            f"invalid options {sorted(options)} for reducer {kind!r}: "
            f"{exc}"
        ) from exc


class Reducer:
    """Streaming fold over evaluated campaign chunks.

    Subclasses set :attr:`kind`, implement ``fold`` / ``finalize`` /
    ``state_dict`` / ``load_state_dict`` and optionally ``merge`` (for
    commutative reductions that support tree-combining partial states;
    order-dependent folds like Jansen's leave it unimplemented).  The
    runner folds chunks in chunk-index order, checkpointing the state
    after each fold when :attr:`checkpointable` is true.
    """

    #: Registry name of this reducer (also recorded in manifests).
    kind = None

    #: Whether the runner should checkpoint ``state_dict`` per folded
    #: chunk.  Reducers whose state effectively duplicates the chunk
    #: files (an assembled output matrix) return ``False`` -- re-folding
    #: from the checkpointed chunks is just as fast as restoring.
    checkpointable = True

    #: Whether the reduction stays statistically meaningful when some
    #: samples are missing (quarantined chunks folded *around*).  Plain
    #: Monte Carlo moments just see a smaller sample; structured designs
    #: (Saltelli/Jansen, PCE regression on a fixed design) do not, so
    #: the runner refuses to finalize them over a quarantined campaign.
    tolerates_missing_samples = False

    def config_dict(self):
        """JSON-serializable identity of this reduction (kind + options).

        Stored in reducer checkpoints and manifests; a resume only
        restores a checkpoint whose config matches exactly.
        """
        return {"kind": self.kind}

    def fold(self, indices, outputs):
        """Fold one chunk of evaluations; ``indices`` continue the
        global stream exactly where the previous fold stopped."""
        raise NotImplementedError

    def merge(self, other):
        """Fold another partial reducer of the same kind into this one."""
        raise CampaignError(
            f"reducer {self.kind!r} folds chunks in a fixed order and "
            "does not support merging partial states"
        )

    def finalize(self, spec, parameters, num_evaluated):
        """Reduce the folded stream into the campaign result object."""
        raise NotImplementedError

    def state_dict(self):
        """Serializable state: flat dict of scalars / float64 arrays
        (exact round trip through :meth:`load_state_dict`)."""
        raise NotImplementedError

    def load_state_dict(self, state):
        """Restore :meth:`state_dict` output in place; returns ``self``."""
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}(kind={self.kind!r})"


# ----------------------------------------------------------------------
# Moments: the classic Monte Carlo mean/std campaign
# ----------------------------------------------------------------------
@register_reducer("moments")
class MomentsReducer(Reducer):
    """Welford running statistics, merged per chunk in chunk order.

    Reproduces the historic ``run_campaign`` reduction bit for bit: one
    Welford accumulator per chunk, folded into the running total with
    the parallel (Chan et al.) combination in chunk-index order.
    """

    kind = "moments"
    tolerates_missing_samples = True

    def __init__(self, spec=None):
        self.statistics = RunningStatistics()

    def fold(self, indices, outputs):
        outputs = np.asarray(outputs, dtype=float)
        chunk_statistics = RunningStatistics()
        for row in range(outputs.shape[0]):
            chunk_statistics.update(outputs[row])
        self.statistics.merge(chunk_statistics)
        return self

    def merge(self, other):
        if not isinstance(other, MomentsReducer):
            raise CampaignError(
                f"cannot merge {type(other).__name__} into MomentsReducer"
            )
        self.statistics.merge(other.statistics)
        return self

    def finalize(self, spec, parameters, num_evaluated):
        from .runner import CampaignResult

        return CampaignResult(spec, self.statistics, parameters,
                              num_evaluated)

    def state_dict(self):
        return self.statistics.state_dict()

    def load_state_dict(self, state):
        self.statistics.load_state_dict(state)
        return self


# ----------------------------------------------------------------------
# Jansen: the streaming Sobol sensitivity reduction
# ----------------------------------------------------------------------
@register_reducer("jansen")
class JansenReducer(Reducer):
    """Streaming Jansen Sobol reduction over a Saltelli design.

    Wraps the canonical
    :class:`~repro.uq.sensitivity.StreamingJansenAccumulator` (including
    second-order ``AB_ij`` and grouped-factor blocks) and the seeded
    percentile bootstrap.  Requires a
    :class:`~repro.campaign.sensitivity.SensitivitySpec`, whose
    ``num_bootstrap`` / ``confidence`` settings are the defaults so a
    flag-less resume reproduces the original confidence intervals
    exactly.

    ``streaming`` picks the reduction strategy: the default (``None``)
    streams whenever the bootstrap is disabled -- chunks fold into
    running sums and the full output matrix never materializes.  A
    bootstrap request forces the in-memory assembly (the bootstrap
    resamples full rows); requesting both raises.
    """

    kind = "jansen"

    def __init__(self, spec, num_bootstrap=None, confidence=None,
                 streaming=None):
        from .sensitivity import SensitivitySpec

        if not isinstance(spec, SensitivitySpec):
            raise CampaignError(
                f"the jansen reducer needs a SensitivitySpec (a Saltelli "
                f"design to reduce), got {type(spec).__name__}"
            )
        self.spec = spec
        self.plan = spec.plan
        if num_bootstrap is None:
            num_bootstrap = spec.num_bootstrap
        if confidence is None:
            confidence = spec.confidence
        self.num_bootstrap = int(num_bootstrap)
        self.confidence = float(confidence)
        if streaming is None:
            streaming = not self.num_bootstrap
        if streaming and self.num_bootstrap:
            raise CampaignError(
                "the streaming reduction folds chunks into running sums "
                "and cannot resample rows for bootstrap intervals; pass "
                "num_bootstrap=0 (CLI: --bootstrap 0) or streaming=False"
            )
        self.streaming = bool(streaming)
        self.accumulator = StreamingJansenAccumulator(
            spec.num_base_samples, spec.dimension,
            pairs=self.plan.pairs or None, groups=self.plan.groups or None,
        )
        if self.accumulator.swap_subsets != self.plan.swap_subsets:
            raise CampaignError(
                "internal error: the streaming accumulator's block layout "
                f"{self.accumulator.swap_subsets} does not match the "
                f"Saltelli plan's {self.plan.swap_subsets}"
            )
        self._outputs = None

    #: The in-memory (bootstrap) mode's state is dominated by the
    #: assembled output matrix -- re-folding the checkpointed chunks on
    #: resume costs the same as restoring it, so only the streaming
    #: mode checkpoints its (small) running sums.
    @property
    def checkpointable(self):
        return self.streaming

    def config_dict(self):
        return {
            "kind": self.kind,
            "num_bootstrap": self.num_bootstrap,
            "confidence": self.confidence,
            "streaming": self.streaming,
        }

    def fold(self, indices, outputs):
        indices = np.asarray(indices, dtype=int)
        outputs = np.asarray(outputs, dtype=float)
        self.accumulator.add(indices, outputs)
        if not self.streaming and indices.size:
            # The bootstrap resamples full rows, so the in-memory mode
            # additionally assembles the output matrix; the point
            # estimates come from the same per-chunk folds either way.
            if self._outputs is None:
                self._outputs = np.empty(
                    (self.spec.num_samples,) + outputs.shape[1:]
                )
            self._outputs[indices] = outputs
        return self

    def finalize(self, spec, parameters, num_evaluated):
        from .sensitivity import SensitivityResult

        estimates = self.accumulator.finalize()
        interval = None
        if self.num_bootstrap:
            plan = self.plan
            m = spec.num_base_samples
            outputs = self._outputs
            output_shape = outputs.shape[1:]
            f_a = outputs[:m]
            f_b = outputs[m:2 * m]
            first_stop = (2 + spec.dimension) * m
            f_ab = outputs[2 * m:first_stop].reshape(
                (spec.dimension, m) + output_shape
            )
            f_ab_pairs = None
            pair_stop = first_stop + plan.num_pairs * m
            if plan.num_pairs:
                f_ab_pairs = outputs[first_stop:pair_stop].reshape(
                    (plan.num_pairs, m) + output_shape
                )
            f_ab_groups = None
            if plan.num_groups:
                f_ab_groups = outputs[pair_stop:].reshape(
                    (plan.num_groups, m) + output_shape
                )
            interval = jansen_bootstrap(
                f_a, f_b, f_ab, num_replicates=self.num_bootstrap,
                seed=spec.seed, confidence=self.confidence,
                f_ab_pairs=f_ab_pairs, pairs=plan.pairs or None,
                f_ab_groups=f_ab_groups, groups=plan.groups or None,
            )
        return SensitivityResult(
            spec, estimates.first_order, interval, parameters,
            num_evaluated,
            second_order=estimates.second_order,
            group_indices=estimates.groups,
            streamed=self.streaming,
        )

    def state_dict(self):
        state = self.accumulator.state_dict()
        if self._outputs is not None:
            state["outputs"] = self._outputs.copy()
        return state

    def load_state_dict(self, state):
        state = dict(state)
        outputs = state.pop("outputs", None)
        self.accumulator.load_state_dict(state)
        self._outputs = (
            np.array(outputs, dtype=float) if outputs is not None else None
        )
        return self


# ----------------------------------------------------------------------
# PCE: surrogate-accelerated global sensitivity from checkpoints
# ----------------------------------------------------------------------
@register_reducer("pce")
class PCEReducer(Reducer):
    """Fit the polynomial-chaos surrogate from campaign checkpoints.

    Assembles the checkpointed outputs and, at finalize time, fits a
    Legendre-basis :class:`~repro.uq.pce.PolynomialChaosExpansion` on
    the campaign's *unit-cube* sample points (``z = 2 u - 1``, a pure
    function of the spec -- no fresh solves).  Sobol indices are
    invariant under the per-dimension monotone map from unit cube to
    physical parameters, so the surrogate's analytic indices estimate
    the model's -- at a fraction of the ``M (d + 2)`` Saltelli solve
    count, and for free on any store that already holds Monte Carlo
    chunks.

    The state is exactly the assembled output matrix, i.e. a copy of
    the chunk files, so the runner does not checkpoint it
    (``checkpointable = False``): a resume re-folds from the chunks at
    the same cost.
    """

    kind = "pce"
    checkpointable = False

    def __init__(self, spec, degree=2):
        import math

        self.spec = spec
        self.degree = int(degree)
        if self.degree < 1:
            raise CampaignError(
                f"PCE degree must be >= 1, got {self.degree}"
            )
        # Fail before any solve is paid: the regression needs at least
        # one sample per basis term.
        num_terms = math.comb(spec.dimension + self.degree, self.degree)
        if spec.num_samples < num_terms:
            raise CampaignError(
                f"PCE degree {self.degree} over {spec.dimension} inputs "
                f"needs {num_terms} basis terms but the campaign has "
                f"only {spec.num_samples} samples; raise num_samples or "
                "lower the degree"
            )
        self._outputs = None
        self._filled = np.zeros(spec.num_samples, dtype=bool)

    def config_dict(self):
        return {"kind": self.kind, "degree": self.degree}

    def fold(self, indices, outputs):
        indices = np.asarray(indices, dtype=int)
        outputs = np.asarray(outputs, dtype=float)
        if indices.size == 0:
            return self
        if self._outputs is None:
            self._outputs = np.empty(
                (self.spec.num_samples,) + outputs.shape[1:]
            )
        self._outputs[indices] = outputs
        self._filled[indices] = True
        return self

    def merge(self, other):
        if not isinstance(other, PCEReducer):
            raise CampaignError(
                f"cannot merge {type(other).__name__} into PCEReducer"
            )
        if other._outputs is None:
            return self
        if self._outputs is None:
            self._outputs = other._outputs.copy()
            self._filled = other._filled.copy()
            return self
        overlap = self._filled & other._filled
        if np.any(overlap):
            raise CampaignError(
                "cannot merge PCE reducers with overlapping sample rows"
            )
        self._outputs[other._filled] = other._outputs[other._filled]
        self._filled |= other._filled
        return self

    def finalize(self, spec, parameters, num_evaluated):
        from ..uq.pce import PolynomialChaosExpansion

        if self._outputs is None or not self._filled.all():
            missing = int(np.count_nonzero(~self._filled))
            raise CampaignError(
                f"incomplete campaign stream: {missing} of "
                f"{spec.num_samples} samples were never folded"
            )
        expansion = PolynomialChaosExpansion(
            None, spec.build_distribution(), spec.dimension,
            degree=self.degree, basis="legendre",
        )
        germ = 2.0 * spec.unit_points(np.arange(spec.num_samples)) - 1.0
        expansion.fit_from_samples(germ, self._outputs)
        return SurrogateResult(spec, expansion, parameters, num_evaluated)

    def state_dict(self):
        state = {"filled": self._filled.copy()}
        if self._outputs is not None:
            state["outputs"] = self._outputs.copy()
        return state

    def load_state_dict(self, state):
        self._filled = np.array(state["filled"], dtype=bool)
        outputs = state.get("outputs")
        self._outputs = (
            np.array(outputs, dtype=float) if outputs is not None else None
        )
        return self


class SurrogateResult:
    """Fitted PCE surrogate of a completed campaign.

    Attributes
    ----------
    spec:
        The :class:`~repro.campaign.spec.CampaignSpec` that was run.
    expansion:
        The fitted :class:`~repro.uq.pce.PolynomialChaosExpansion`
        (callable: evaluates the surrogate at physical parameters).
    first_order, total:
        Analytic Sobol indices of the surrogate, shape
        ``(dimension, *output_shape)``.
    parameters:
        The full evaluated parameter matrix.
    num_evaluated:
        Samples evaluated by *this* call (0 for a pure re-reduce).
    """

    def __init__(self, spec, expansion, parameters, num_evaluated):
        self.spec = spec
        self.expansion = expansion
        self.parameters = parameters
        self.num_evaluated = int(num_evaluated)
        self.first_order, self.total = expansion.sobol_indices()

    @property
    def mean(self):
        return self.expansion.mean

    @property
    def std(self):
        return self.expansion.std

    @property
    def variance(self):
        return self.expansion.variance

    def __call__(self, parameters):
        """Evaluate the surrogate at physical parameter vector(s)."""
        return self.expansion(parameters)

    def ranking(self, component=None):
        """Inputs by decreasing total index at one output component."""
        total = np.asarray(self.total).reshape(self.spec.dimension, -1)
        if total.shape[1] > 1 and component is None:
            raise CampaignError(
                "vector-valued surrogate: pass component= to rank one "
                "output entry"
            )
        column = total[:, component if component is not None else 0]
        return [int(i) for i in np.argsort(-column)]

    def _report_component(self):
        """Flat output index the summary reports: the max-variance entry."""
        variance = np.atleast_1d(np.asarray(self.variance))
        return int(np.argmax(variance.ravel()))

    def summary(self):
        """JSON-serializable summary: surrogate statistics plus ranked
        Sobol indices at the max-variance output component."""
        component = self._report_component()
        dimension = self.spec.dimension
        mean = np.atleast_1d(np.asarray(self.mean)).ravel()
        std = np.atleast_1d(np.asarray(self.std)).ravel()
        variance = np.atleast_1d(np.asarray(self.variance)).ravel()
        first = self.first_order.reshape(dimension, -1)[:, component]
        total = self.total.reshape(dimension, -1)[:, component]
        return {
            "kind": "pce",
            "campaign": self.spec.name,
            "problem": self.spec.scenario.problem,
            "qoi": self.spec.scenario.qoi,
            "sampler": self.spec.sampler,
            "num_samples": int(self.spec.num_samples),
            "num_chunks": int(self.spec.num_chunks),
            "dimension": int(dimension),
            "degree": int(self.expansion.degree),
            "num_terms": int(self.expansion.num_terms),
            "basis": self.expansion.basis,
            "output_size": int(variance.size),
            "argmax_output": component,
            "mean_max": float(np.max(mean)),
            "std_max": float(np.max(std)),
            "variance": float(variance[component]),
            "first_order": [float(value) for value in first],
            "total": [float(value) for value in total],
            "ranking": [int(i) for i in np.argsort(-total)],
        }

    def __repr__(self):
        return (
            f"SurrogateResult({self.spec.name!r}, degree="
            f"{self.expansion.degree}, terms={self.expansion.num_terms}, "
            f"ranking={self.ranking(component=self._report_component())})"
        )
