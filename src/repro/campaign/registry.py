"""Named registries mapping campaign spec strings to code.

A :class:`~repro.campaign.spec.ScenarioSpec` is plain JSON data; this
module is the binding layer that turns its names back into callables:

* **problem builders** -- ``name -> builder(scenario) -> model callable``
  (``model(parameters) -> ndarray``).  The built-in ``"date16"`` entry
  wraps :class:`~repro.package3d.uq_study.Date16UncertaintyStudy`.
* **QoI extractors** -- ``name -> function(raw_output) -> ndarray``
  applied on top of the problem model (e.g. reduce the full ``(P, W)``
  temperature traces to the end-time row).
* **waveforms / distributions** -- bidirectional dict <-> object
  conversion for the JSON-serializable spec layer.

Registries populate lazily: the first lookup miss imports
:mod:`repro.package3d.scenarios`, whose import side effect registers the
built-ins.  User code registers its own entries with
:func:`register_problem` / :func:`register_qoi` at import time of the
module named in ``ScenarioSpec.module`` (which workers import before
resolving names, so registration also happens in spawned processes).
"""

import importlib

import numpy as np

from ..coupled.excitation import (
    ConstantWaveform,
    PulseTrainWaveform,
    RampWaveform,
    StepWaveform,
)
from ..errors import CampaignError
from ..uq.distributions import (
    LogNormalDistribution,
    NormalDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
)
from ..uq.sampling import (
    halton_sequence,
    latin_hypercube,
    random_sampler,
    sobol_sequence,
)

_PROBLEMS = {}
_QOIS = {}
_BUILTINS_LOADED = False

#: Modules whose import registers the built-in scenario entries.
_BUILTIN_MODULES = ("repro.package3d.scenarios", "repro.uq.analytic")


def _ensure_builtins():
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Only flag success afterwards, so a failed import is retried and
    # keeps raising its real cause instead of "unknown problem".
    _BUILTINS_LOADED = True


def register_problem(name, builder=None):
    """Register ``builder(scenario) -> model`` under ``name``.

    Usable directly (``register_problem("toy", build_toy)``) or as a
    decorator (``@register_problem("toy")``).  Re-registering a name
    overwrites the previous entry (idempotent module re-imports).
    """
    if builder is None:
        def decorator(func):
            _PROBLEMS[str(name)] = func
            return func
        return decorator
    _PROBLEMS[str(name)] = builder
    return builder


def register_qoi(name, extractor=None):
    """Register ``extractor(raw_output) -> ndarray`` under ``name``."""
    if extractor is None:
        def decorator(func):
            _QOIS[str(name)] = func
            return func
        return decorator
    _QOIS[str(name)] = extractor
    return extractor


def get_problem(name):
    """Look up a problem builder (loading built-ins on first miss)."""
    if name not in _PROBLEMS:
        _ensure_builtins()
    try:
        return _PROBLEMS[name]
    except KeyError:
        raise CampaignError(
            f"unknown problem {name!r}; registered: {sorted(_PROBLEMS)}"
        ) from None


def get_qoi(name):
    """Look up a QoI extractor (loading built-ins on first miss)."""
    if name not in _QOIS:
        _ensure_builtins()
    try:
        return _QOIS[name]
    except KeyError:
        raise CampaignError(
            f"unknown qoi {name!r}; registered: {sorted(_QOIS)}"
        ) from None


def registered_problems():
    """Sorted names of every registered problem builder."""
    _ensure_builtins()
    return sorted(_PROBLEMS)


def registered_qois():
    """Sorted names of every registered QoI extractor."""
    _ensure_builtins()
    return sorted(_QOIS)


# ----------------------------------------------------------------------
# Generic QoI extractors (problem-specific ones live next to their
# problem builders, e.g. repro.package3d.scenarios)
# ----------------------------------------------------------------------
def _qoi_identity(output):
    return output


def _qoi_final(output):
    """Last row of a time-series output (the end-time state)."""
    return np.asarray(output, dtype=float)[-1]


def _qoi_max(output):
    """Global maximum as a length-1 array (scalar QoIs stay arrays)."""
    return np.asarray([np.max(np.asarray(output, dtype=float))])


register_qoi("identity", _qoi_identity)
register_qoi("final", _qoi_final)
register_qoi("max", _qoi_max)


# ----------------------------------------------------------------------
# Waveform dict <-> object conversion
# ----------------------------------------------------------------------
_WAVEFORMS = {
    "constant": (ConstantWaveform, ("scale",)),
    "step": (StepWaveform, ("t_on", "t_off", "scale")),
    "pulse_train": (PulseTrainWaveform, ("period", "duty", "scale", "phase")),
    "ramp": (RampWaveform, ("rise_time", "scale")),
}


def build_waveform(spec):
    """``{"kind": ..., **kwargs} -> Waveform`` (``None`` passes through)."""
    if spec is None:
        return None
    spec = dict(spec)
    kind = spec.pop("kind", None)
    if kind not in _WAVEFORMS:
        raise CampaignError(
            f"unknown waveform kind {kind!r}; expected one of "
            f"{sorted(_WAVEFORMS)}"
        )
    cls, fields = _WAVEFORMS[kind]
    unknown = set(spec) - set(fields)
    if unknown:
        raise CampaignError(
            f"waveform {kind!r} got unknown fields {sorted(unknown)}"
        )
    return cls(**spec)


def waveform_to_spec(waveform):
    """Inverse of :func:`build_waveform` for the registered classes."""
    if waveform is None:
        return None
    for kind, (cls, fields) in _WAVEFORMS.items():
        if type(waveform) is cls:
            return {"kind": kind, **{f: getattr(waveform, f) for f in fields}}
    raise CampaignError(
        f"waveform {type(waveform).__name__} is not JSON-serializable; "
        f"registered kinds: {sorted(_WAVEFORMS)}"
    )


# ----------------------------------------------------------------------
# Distribution dict <-> object conversion
# ----------------------------------------------------------------------
_DISTRIBUTIONS = {
    "normal": (NormalDistribution, ("mu", "sigma")),
    "truncated_normal": (
        TruncatedNormalDistribution, ("mu", "sigma", "lower", "upper")
    ),
    "uniform": (UniformDistribution, ("lower", "upper")),
    "lognormal": (LogNormalDistribution, ("mu_log", "sigma_log")),
}


def build_distribution(spec):
    """``{"kind": ..., **kwargs} -> Distribution``.

    Lists build element-wise (per-dimension marginals); Distribution
    instances pass through unchanged.
    """
    if isinstance(spec, (list, tuple)):
        return [build_distribution(entry) for entry in spec]
    if hasattr(spec, "ppf"):
        return spec
    spec = dict(spec)
    kind = spec.pop("kind", None)
    if kind not in _DISTRIBUTIONS:
        raise CampaignError(
            f"unknown distribution kind {kind!r}; expected one of "
            f"{sorted(_DISTRIBUTIONS)}"
        )
    cls, fields = _DISTRIBUTIONS[kind]
    unknown = set(spec) - set(fields)
    if unknown:
        raise CampaignError(
            f"distribution {kind!r} got unknown fields {sorted(unknown)}"
        )
    return cls(**spec)


def distribution_to_spec(distribution):
    """Inverse of :func:`build_distribution` for the registered classes."""
    if isinstance(distribution, (list, tuple)):
        return [distribution_to_spec(entry) for entry in distribution]
    if isinstance(distribution, dict):
        # Already a spec; validate it round-trips.
        build_distribution(distribution)
        return dict(distribution)
    if type(distribution) is TruncatedNormalDistribution:
        return {
            "kind": "truncated_normal",
            "mu": distribution.base.mu,
            "sigma": distribution.base.sigma,
            "lower": distribution.lower,
            "upper": distribution.upper,
        }
    for kind, (cls, fields) in _DISTRIBUTIONS.items():
        if type(distribution) is cls:
            return {
                "kind": kind,
                **{f: getattr(distribution, f) for f in fields},
            }
    raise CampaignError(
        f"distribution {type(distribution).__name__} is not "
        f"JSON-serializable; registered kinds: {sorted(_DISTRIBUTIONS)}"
    )


# ----------------------------------------------------------------------
# Unit-cube samplers (full-stream kinds; "counter" is handled by the
# runner because it is generated per sample, not per stream)
# ----------------------------------------------------------------------
# Every entry must thread the campaign seed through: two campaigns that
# differ only in their seed must produce different parameter matrices
# for every sampler kind (and identical matrices for the same seed).
STREAM_SAMPLERS = {
    "random": random_sampler,
    "lhs": latin_hypercube,
    "halton": lambda n, d, seed=None: halton_sequence(n, d, seed=seed),
    "sobol": lambda n, d, seed=None: sobol_sequence(n, d, seed=seed),
}

#: Per-sample counter-based stream: order- and partition-independent.
COUNTER_SAMPLER = "counter"


def get_stream_sampler(name):
    """Look up a full-stream sampler by name."""
    try:
        return STREAM_SAMPLERS[name]
    except KeyError:
        raise CampaignError(
            f"unknown sampler {name!r}; expected {COUNTER_SAMPLER!r} or one "
            f"of {sorted(STREAM_SAMPLERS)}"
        ) from None
