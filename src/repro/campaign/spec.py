"""Declarative, JSON-serializable campaign descriptions.

A campaign is fully described by data: which problem to build
(:class:`ScenarioSpec`) and how to sample it (:class:`CampaignSpec`).
Keeping the description serializable is what makes the subsystem
distributable and resumable -- worker processes rebuild the model from
the spec instead of receiving unpicklable solver state, and the artifact
store persists the spec in its manifest so a resumed run is guaranteed
to recompute the same campaign.
"""

import json

import numpy as np

from ..errors import CampaignError
from . import registry


class ScenarioSpec:
    """Names the model side of a campaign: problem, options, QoI.

    Parameters
    ----------
    problem:
        Registry name of the problem builder (e.g. ``"date16"``; see
        :func:`repro.campaign.registry.register_problem`).
    qoi:
        Registry name of the quantity-of-interest extractor applied to
        the raw model output (``"identity"`` keeps it unchanged).
    options:
        JSON dict of builder keyword options (mesh resolution, solver
        mode, parameter overrides...), interpreted by the builder.
    waveform:
        Optional drive waveform spec dict (``{"kind": "step", ...}``) or
        a Waveform instance (serialized on ``to_dict``).
    module:
        Optional dotted module path imported before resolving the
        registry names -- the hook for user-registered problems/QoIs, so
        resolution also works inside freshly spawned worker processes.
    """

    def __init__(self, problem, qoi="identity", options=None, waveform=None,
                 module=None):
        self.problem = str(problem)
        self.qoi = str(qoi)
        self.options = dict(options) if options else {}
        if isinstance(waveform, (dict, type(None))):
            # Validate eagerly so a typo'd kind/field fails at spec load
            # with a real message, not inside a worker initializer.
            registry.build_waveform(waveform)
            self.waveform = waveform
        else:
            self.waveform = registry.waveform_to_spec(waveform)
        self.module = module

    def build_model(self):
        """Resolve the registries and build ``model(parameters) -> array``.

        The builder is invoked once; the returned callable is what a
        worker evaluates per sample (so the builder can cache meshes,
        factorizations, ... in its closure).
        """
        if self.module:
            import importlib

            importlib.import_module(self.module)
        builder = registry.get_problem(self.problem)
        raw_model = builder(self)
        qoi = registry.get_qoi(self.qoi)
        if self.qoi == "identity":
            return raw_model

        def model(parameters):
            return qoi(raw_model(parameters))

        raw_block = getattr(raw_model, "evaluate_block", None)
        if callable(raw_block):
            # Keep the sample-blocked fast path through the QoI wrapper:
            # evaluate the block once, extract the QoI per sample.
            def evaluate_block(parameters_block):
                return np.stack([
                    np.asarray(qoi(output), dtype=float)
                    for output in raw_block(parameters_block)
                ])

            model.evaluate_block = evaluate_block
        return model

    def build_waveform(self):
        """The scenario's Waveform instance (``None`` for the default)."""
        return registry.build_waveform(self.waveform)

    def to_dict(self):
        return {
            "problem": self.problem,
            "qoi": self.qoi,
            "options": dict(self.options),
            "waveform": self.waveform,
            "module": self.module,
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        if "problem" not in data:
            raise CampaignError("scenario spec needs a 'problem' name")
        unknown = set(data) - {"problem", "qoi", "options", "waveform",
                               "module"}
        if unknown:
            raise CampaignError(
                f"scenario spec got unknown fields {sorted(unknown)}"
            )
        return cls(**data)

    def __repr__(self):
        return (
            f"ScenarioSpec(problem={self.problem!r}, qoi={self.qoi!r}, "
            f"options={self.options!r})"
        )


def _normalize_reducer_spec(reducer):
    """Validate the spec-level reducer field into ``None`` or a dict.

    Kind *names* are resolved lazily at run time (user reducers register
    at import of ``ScenarioSpec.module``, which may not have happened
    yet); here only the JSON shape is enforced.
    """
    if reducer is None:
        return None
    if isinstance(reducer, str):
        reducer = {"kind": reducer}
    if not isinstance(reducer, dict) or not isinstance(
            reducer.get("kind"), str):
        raise CampaignError(
            f"reducer must be a kind name or a dict with a string "
            f"'kind' entry, got {reducer!r}"
        )
    return dict(reducer)


class CampaignSpec:
    """The full campaign: a scenario plus the sampling plan.

    Parameters
    ----------
    name:
        Human-readable campaign identifier (also recorded in artifact
        manifests and reports).
    scenario:
        A :class:`ScenarioSpec` (or its dict form).
    distribution:
        Parameter distribution spec: one dict (iid over all dimensions),
        a list of per-dimension dicts, or Distribution instances
        (serialized on ``to_dict``).
    dimension:
        Number of uncertain parameters per sample.
    num_samples:
        Total sample budget ``M``.
    seed:
        Campaign seed.  With the default ``"counter"`` sampler every
        sample ``i`` draws from ``SeedSequence(seed, spawn_key=(i,))``,
        so the parameter of sample ``i`` is independent of worker count,
        chunking and completion order -- the property that makes resume
        bit-reproducible.
    chunk_size:
        Samples per executor task == checkpoint granularity (the store
        persists one ``.npz`` per completed chunk).
    sampler:
        ``"counter"`` (default) or a full-stream kind
        (``"random"``, ``"lhs"``, ``"halton"``, ``"sobol"``); full
        streams are regenerated deterministically from the seed.
    reducer:
        Optional reducer spec -- a kind name or ``{"kind": ...,
        **options}`` dict naming what the evaluations reduce *to* (see
        :mod:`repro.campaign.reducer`; e.g. ``{"kind": "pce",
        "degree": 4}`` for the surrogate-accelerated mode).  ``None``
        (the default, omitted from serialized specs for compatibility)
        selects the campaign kind's default reduction.
    """

    #: Campaign flavor; serialized as the ``"kind"`` spec field by
    #: subclasses (plain Monte Carlo specs omit it for compatibility
    #: with existing manifests) and dispatched on by
    #: :meth:`from_dict`.
    kind = "monte-carlo"

    #: Reducer kind used when neither the spec's ``reducer`` field nor
    #: the ``run_campaign(reducer=...)`` argument picks one.
    default_reducer_kind = "moments"

    def __init__(self, name, scenario, distribution, dimension, num_samples,
                 seed=0, chunk_size=8, sampler=registry.COUNTER_SAMPLER,
                 reducer=None):
        self.name = str(name)
        if isinstance(scenario, dict):
            scenario = ScenarioSpec.from_dict(scenario)
        if not isinstance(scenario, ScenarioSpec):
            raise CampaignError(
                f"scenario must be a ScenarioSpec or dict, got "
                f"{type(scenario).__name__}"
            )
        self.scenario = scenario
        self.distribution = registry.distribution_to_spec(distribution)
        self.dimension = int(dimension)
        self.num_samples = int(num_samples)
        self.seed = int(seed)
        self.chunk_size = int(chunk_size)
        self.sampler = str(sampler)
        self.reducer = _normalize_reducer_spec(reducer)
        if self.dimension < 1:
            raise CampaignError(
                f"dimension must be >= 1, got {self.dimension}"
            )
        if self.num_samples < 1:
            raise CampaignError(
                f"num_samples must be >= 1, got {self.num_samples}"
            )
        if self.chunk_size < 1:
            raise CampaignError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.sampler != registry.COUNTER_SAMPLER:
            registry.get_stream_sampler(self.sampler)  # validate early

    @property
    def num_chunks(self):
        """Number of checkpoint chunks covering ``num_samples``."""
        return -(-self.num_samples // self.chunk_size)

    def chunk_indices(self, chunk):
        """Global sample indices ``[start, stop)`` of one chunk."""
        chunk = int(chunk)
        if not 0 <= chunk < self.num_chunks:
            raise CampaignError(
                f"chunk {chunk} out of range [0, {self.num_chunks})"
            )
        start = chunk * self.chunk_size
        stop = min(start + self.chunk_size, self.num_samples)
        return range(start, stop)

    def build_distribution(self):
        """Distribution instance(s) for the parameter mapping."""
        return registry.build_distribution(self.distribution)

    def unit_points(self, indices):
        """Unit-cube rows of the given global sample indices.

        Counter-based sampling generates exactly the requested rows;
        full-stream samplers regenerate the whole deterministic stream
        and slice it -- either way sample ``i`` is a pure function of
        the spec, independent of how the campaign is partitioned.
        Subclasses override this to lay out structured designs (e.g.
        the Saltelli blocks of a sensitivity campaign).
        """
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return np.empty((0, self.dimension))
        if self.sampler == registry.COUNTER_SAMPLER:
            from .runner import unit_sample

            return np.stack(
                [unit_sample(self.seed, index, self.dimension)
                 for index in indices]
            )
        sampler = registry.get_stream_sampler(self.sampler)
        stream = np.asarray(
            sampler(self.num_samples, self.dimension, seed=self.seed),
            dtype=float,
        )
        return stream[indices]

    def to_dict(self):
        data = {
            "name": self.name,
            "scenario": self.scenario.to_dict(),
            "distribution": self.distribution,
            "dimension": self.dimension,
            "num_samples": self.num_samples,
            "seed": self.seed,
            "chunk_size": self.chunk_size,
            "sampler": self.sampler,
        }
        # The reducer serializes only when set, so default specs stay
        # byte-compatible with pre-reducer manifests.
        if self.reducer is not None:
            data["reducer"] = dict(self.reducer)
        return data

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        spec_kind = data.pop("kind", None)
        if cls is CampaignSpec and spec_kind == "sensitivity":
            # Kind dispatch: sensitivity specs deserialize to their own
            # class, so stores/CLIs load any campaign flavor through
            # this one entry point.
            from .sensitivity import SensitivitySpec

            return SensitivitySpec.from_dict(
                {**data, "kind": spec_kind}
            )
        if spec_kind not in (None, cls.kind):
            raise CampaignError(
                f"unknown campaign kind {spec_kind!r}; expected "
                f"'monte-carlo' (or omitted) or 'sensitivity'"
            )
        missing = {"name", "scenario", "distribution", "dimension",
                   "num_samples"} - set(data)
        if missing:
            raise CampaignError(
                f"campaign spec is missing fields {sorted(missing)}"
            )
        unknown = set(data) - {"name", "scenario", "distribution",
                               "dimension", "num_samples", "seed",
                               "chunk_size", "sampler", "reducer"}
        if unknown:
            raise CampaignError(
                f"campaign spec got unknown fields {sorted(unknown)}"
            )
        return cls(**data)

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"invalid campaign JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path):
        """Write the spec as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path):
        """Read a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __repr__(self):
        return (
            f"CampaignSpec({self.name!r}, problem="
            f"{self.scenario.problem!r}, M={self.num_samples}, "
            f"d={self.dimension}, chunks={self.num_chunks})"
        )
