"""Elastic fault tolerance: retry policies and first-class chunk failure.

A production campaign cannot die because one sample out of a million
raises -- worker processes get OOM-killed, shared filesystems hiccup,
and a genuinely poisoned parameter row must not wedge the other 99.999%
of the budget.  This module makes chunk failure a *result* instead of
an exception:

* :class:`RetryPolicy` -- how executors respond to a failed chunk:
  ``max_retries`` re-submissions with exponential backoff and
  deterministic jitter (seeded from the campaign seed, so two resumes
  of the same campaign retry on the same schedule), plus an optional
  per-chunk ``timeout_s`` for stragglers (timed-out chunks count as a
  failed attempt and are speculatively re-submitted; the first
  completion wins);
* :class:`ChunkFailure` -- the terminal failure record an executor
  yields from ``run_chunks`` once a chunk exhausts its retries,
  carrying the chunk index, the global sample indices, the exception
  repr/traceback and the attempt count.  The runner quarantines it
  (``quarantine.json`` in the store), folds the reduction *around* it,
  and a later ``resume`` retries quarantined chunks by default.

Without a policy (``policy=None``) executors keep the historic
fail-fast contract: the first chunk exception propagates.  Either way
the raised error is a context-rich
:class:`~repro.errors.ChunkEvaluationError` naming the chunk, the
samples and the worker -- never a bare model traceback.
"""

import numpy as np

from ..errors import CampaignError, ChunkEvaluationError


class RetryPolicy:
    """How executors retry failed chunks before quarantining them.

    Parameters
    ----------
    max_retries:
        Re-submissions per chunk after its first failure (``0`` means
        one attempt total: the first failure quarantines).
    backoff_s:
        Base delay before retry ``n`` (doubled per attempt:
        ``backoff_s * 2**(n-1)``); ``0`` retries immediately.
    timeout_s:
        Optional straggler bound: a chunk in flight longer than this
        counts as a failed attempt and is speculatively re-submitted
        (the abandoned attempt keeps running; whichever attempt
        completes first wins).  Pool backends only -- the serial
        executor cannot preempt its own evaluation loop and documents
        the timeout as unenforced.
    seed:
        Entropy for the deterministic backoff jitter; the runner fills
        in the campaign seed when left ``None``, so every resume of a
        campaign reproduces the same retry schedule.
    """

    def __init__(self, max_retries=0, backoff_s=0.0, timeout_s=None,
                 seed=None):
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.timeout_s = None if timeout_s is None else float(timeout_s)
        self.seed = None if seed is None else int(seed)
        if self.max_retries < 0:
            raise CampaignError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0:
            raise CampaignError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise CampaignError(
                f"timeout_s must be > 0, got {self.timeout_s}"
            )

    @classmethod
    def normalize(cls, retry):
        """``None`` | policy | ``{"max_retries": ...}`` dict -> policy.

        ``None`` passes through (fail-fast mode); an int is shorthand
        for ``RetryPolicy(max_retries=retry)``.
        """
        if retry is None or isinstance(retry, cls):
            return retry
        if isinstance(retry, bool):
            raise CampaignError(
                "retry must be a RetryPolicy, an int max_retries or a "
                "dict of RetryPolicy options, not a bool"
            )
        if isinstance(retry, int):
            return cls(max_retries=retry)
        if isinstance(retry, dict):
            try:
                return cls(**retry)
            except TypeError as exc:
                raise CampaignError(
                    f"invalid retry policy options {sorted(retry)}: {exc}"
                ) from exc
        raise CampaignError(
            f"retry must be a RetryPolicy, an int max_retries or a dict "
            f"of RetryPolicy options, got {type(retry).__name__}"
        )

    def replace(self, **overrides):
        """A copy with the given fields replaced (e.g. the seed)."""
        fields = {
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "timeout_s": self.timeout_s,
            "seed": self.seed,
        }
        fields.update(overrides)
        return type(self)(**fields)

    def delay_s(self, chunk_index, attempt):
        """Backoff before re-submitting ``chunk_index`` after failed
        attempt ``attempt`` (1-based).

        Exponential in the attempt count with a deterministic jitter
        factor in ``[0.5, 1.5)`` drawn from
        ``SeedSequence(seed, spawn_key=(chunk_index, attempt))`` --
        pure function of (policy seed, chunk, attempt), so retry
        schedules are reproducible while still de-synchronizing chunks
        that failed together (one dead node must not produce a
        thundering-herd resubmit).
        """
        if self.backoff_s <= 0:
            return 0.0
        base = self.backoff_s * (2.0 ** (max(0, int(attempt) - 1)))
        sequence = np.random.SeedSequence(
            entropy=0 if self.seed is None else self.seed,
            spawn_key=(int(chunk_index), int(attempt)),
        )
        jitter = np.random.default_rng(sequence).random()
        return base * (0.5 + jitter)

    def __repr__(self):
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"backoff_s={self.backoff_s}, timeout_s={self.timeout_s}, "
            f"seed={self.seed})"
        )


class ChunkFailure:
    """Terminal failure of one chunk after exhausting its retries.

    Yielded by ``Executor.run_chunks`` (instead of a
    :class:`~repro.campaign.executor.ChunkResult`) when a
    :class:`RetryPolicy` is in effect; the runner records it in the
    store's quarantine and folds the reduction around its samples.
    """

    def __init__(self, chunk_index, indices, error, traceback=None,
                 attempts=1, worker=None):
        self.chunk_index = int(chunk_index)
        self.indices = np.asarray(indices, dtype=int)
        self.error = str(error)
        self.traceback = traceback
        self.attempts = int(attempts)
        self.worker = worker

    @classmethod
    def from_exception(cls, chunk, exc, attempts):
        """Build a failure record from a caught chunk exception,
        preserving the worker-side context a
        :class:`~repro.errors.ChunkEvaluationError` carries."""
        return cls(
            chunk_index=chunk.chunk_index,
            indices=chunk.indices,
            error=repr(exc),
            traceback=getattr(exc, "cause_traceback", None),
            attempts=attempts,
            worker=getattr(exc, "worker", None),
        )

    def record(self):
        """JSON-serializable quarantine entry for ``quarantine.json``."""
        entry = {
            "chunk": self.chunk_index,
            "indices": [int(index) for index in self.indices],
            "error": self.error,
            "attempts": self.attempts,
        }
        if self.worker is not None:
            entry["worker"] = self.worker
        if self.traceback:
            entry["traceback"] = self.traceback
        return entry

    def __repr__(self):
        return (
            f"ChunkFailure(chunk={self.chunk_index}, "
            f"samples={self.indices.size}, attempts={self.attempts}, "
            f"error={self.error!r})"
        )


def failure_from_error(chunk, error, attempts, message=None):
    """A :class:`ChunkFailure` for ``chunk`` from a raw exception or a
    plain message (timeouts, broken pools)."""
    if isinstance(error, BaseException):
        return ChunkFailure.from_exception(chunk, error, attempts)
    return ChunkFailure(
        chunk_index=chunk.chunk_index,
        indices=chunk.indices,
        error=str(message if message is not None else error),
        attempts=attempts,
    )


__all__ = [
    "ChunkEvaluationError",
    "ChunkFailure",
    "RetryPolicy",
    "failure_from_error",
]
