"""Campaign engine: batch execution of UQ scenarios at scale.

The paper's headline workload -- thousands of Monte Carlo evaluations of
one electrothermal problem with perturbed wire geometries -- is
embarrassingly parallel once the per-worker setup (mesh, base LU,
Woodbury operators) is amortized.  This package turns a one-process
study loop into a distributable, checkpointed, resumable campaign:

* :mod:`~repro.campaign.spec` -- declarative, JSON-serializable
  :class:`ScenarioSpec` / :class:`CampaignSpec`;
* :mod:`~repro.campaign.registry` -- names -> problem builders, QoI
  extractors, waveforms, distributions;
* :mod:`~repro.campaign.executor` -- registry-backed executor backends:
  :class:`SerialExecutor`, the process-pool :class:`ParallelExecutor`
  (model built once per worker), the generic :class:`FuturesExecutor`
  adapter over any ``concurrent.futures``-shaped object, and
  :func:`register_backend` for user backends (Dask, MPI, ...);
* :mod:`~repro.campaign.reducer` -- registry-backed streaming reducers
  (what the evaluations become): :class:`MomentsReducer` running
  statistics, :class:`JansenReducer` Sobol indices,
  :class:`PCEReducer` surrogate fits, and :func:`register_reducer`;
* :mod:`~repro.campaign.faults` -- elastic fault tolerance:
  :class:`RetryPolicy` retries failed chunks (exponential backoff,
  deterministic jitter, straggler timeouts) and chunks that exhaust
  their retries are quarantined as :class:`ChunkFailure` records, so
  one poisoned sample cannot wedge a million-sample campaign;
* :mod:`~repro.campaign.store` -- the resumable :class:`ArtifactStore`
  (``manifest.json`` + atomic per-chunk ``.npz`` checkpoints + the
  reduction-state snapshot);
* :mod:`~repro.campaign.runner` -- deterministic per-sample seeding,
  chunked execution, ordered reducer folding, :func:`run_campaign` /
  :func:`resume_campaign` (one path for every campaign kind);
* :mod:`~repro.campaign.cli` -- the ``repro-campaign`` command
  (``spec`` / ``run`` / ``resume`` / ``report``).

Every executor backend and every kill/resume cycle produces bit-identical
results, because parameters are a pure function of the spec and the
reducer only ever sees the checkpointed chunk outputs in chunk order.
"""

from .executor import (
    ChunkResult,
    Executor,
    FuturesExecutor,
    ParallelExecutor,
    SerialExecutor,
    WorkChunk,
    make_executor,
    register_backend,
    registered_backends,
)
from .faults import ChunkEvaluationError, ChunkFailure, RetryPolicy
from .reducer import (
    JansenReducer,
    MomentsReducer,
    PCEReducer,
    Reducer,
    SurrogateResult,
    register_reducer,
    registered_reducers,
    resolve_reducer,
)
from .registry import (
    build_distribution,
    build_waveform,
    distribution_to_spec,
    get_problem,
    get_qoi,
    register_problem,
    register_qoi,
    registered_problems,
    registered_qois,
    waveform_to_spec,
)
from .runner import (
    CampaignResult,
    campaign_chunks,
    campaign_parameters,
    resume_campaign,
    run_campaign,
    unit_sample,
)
from .sensitivity import (
    SaltelliPlan,
    SensitivityResult,
    SensitivitySpec,
    resume_sensitivity_campaign,
    run_sensitivity_campaign,
)
from .spec import CampaignSpec, ScenarioSpec
from .store import ArtifactStore, StoreLock

__all__ = [
    "ScenarioSpec",
    "CampaignSpec",
    "SaltelliPlan",
    "SensitivitySpec",
    "SensitivityResult",
    "run_sensitivity_campaign",
    "resume_sensitivity_campaign",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "FuturesExecutor",
    "WorkChunk",
    "ChunkResult",
    "ChunkEvaluationError",
    "ChunkFailure",
    "RetryPolicy",
    "make_executor",
    "register_backend",
    "registered_backends",
    "Reducer",
    "MomentsReducer",
    "JansenReducer",
    "PCEReducer",
    "SurrogateResult",
    "register_reducer",
    "registered_reducers",
    "resolve_reducer",
    "ArtifactStore",
    "StoreLock",
    "CampaignResult",
    "run_campaign",
    "resume_campaign",
    "campaign_parameters",
    "campaign_chunks",
    "unit_sample",
    "register_problem",
    "register_qoi",
    "get_problem",
    "get_qoi",
    "registered_problems",
    "registered_qois",
    "build_waveform",
    "waveform_to_spec",
    "build_distribution",
    "distribution_to_spec",
]
