"""Executor backends: where and how campaign samples are evaluated.

The executor owns the evaluation loop only -- sampling, checkpointing and
reduction stay in the runner, so every executor produces byte-identical
campaign results.  Backends are registry-backed
(:func:`register_backend`); three ship built in:

* ``"serial"`` -- :class:`SerialExecutor`, the in-process loop (also the
  executor injected into :meth:`repro.uq.monte_carlo.MonteCarloStudy.run`
  by default-less callers);
* ``"process"`` (alias ``"parallel"``) -- :class:`ParallelExecutor`, a
  ``ProcessPoolExecutor`` where every worker builds the model **once**
  from the picklable model source (a
  :class:`~repro.campaign.spec.ScenarioSpec` or plain callable) in its
  initializer.  Building the Date16 scenario constructs the coupled
  solver in fast mode, so the base LU / Woodbury operators are cached in
  the worker for its whole lifetime and each sample costs only solves;
* ``"thread"`` -- a ``ThreadPoolExecutor`` behind the generic
  :class:`FuturesExecutor` adapter, building one model per worker
  thread.

:class:`FuturesExecutor` adapts *any* ``concurrent.futures.Executor``-
shaped object -- something with ``submit`` returning future-likes --
so thread pools, Dask clients or MPI pool executors duck-type into the
campaign engine without a dedicated backend class.  Distributed-cluster
backends register themselves::

    from repro.campaign import register_backend, FuturesExecutor

    @register_backend("dask")
    def _dask_backend(num_workers=None):
        from dask.distributed import Client
        return FuturesExecutor(Client(n_workers=num_workers).get_executor())

and become addressable as ``--executor dask`` on the CLI (name the
registering module in ``ScenarioSpec.module`` so the registration also
happens when a spec is loaded fresh).

Model sources
-------------
Anything with a ``build_model()`` method (built once per worker, then
cached) or a plain picklable callable.  Bound methods of solver-holding
objects are *not* picklable -- that is exactly why the spec layer exists.

Fault tolerance
---------------
``run_chunks`` takes an optional
:class:`~repro.campaign.faults.RetryPolicy`.  With one, a chunk whose
evaluation raises is retried up to ``max_retries`` times (exponential
backoff, deterministic jitter) and finally yielded as a
:class:`~repro.campaign.faults.ChunkFailure` instead of killing the
campaign; pool backends additionally survive worker death
(``BrokenProcessPool``): the pool is rebuilt and every in-flight chunk
re-submitted.  Without a policy the historic fail-fast contract holds --
the first failure propagates -- but always as a context-rich
:class:`~repro.errors.ChunkEvaluationError` naming the chunk, the
global sample indices and the worker.
"""

import functools
import heapq
import itertools
import json
import os
import threading
import time
import traceback as traceback_module
from collections import OrderedDict, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)

import numpy as np

from ..errors import CampaignError, ChunkEvaluationError
from ..telemetry import tracing as telemetry
from .faults import ChunkFailure, failure_from_error


def resolve_model(model_source):
    """Turn a model source into the evaluation callable."""
    build = getattr(model_source, "build_model", None)
    if callable(build):
        return build()
    if callable(model_source):
        return model_source
    raise CampaignError(
        f"model source must be callable or provide build_model(), got "
        f"{type(model_source).__name__}"
    )


class WorkChunk:
    """One executor task: evaluate ``parameters`` rows ``indices``.

    ``capture_telemetry`` travels on the (pickled) chunk so the runner's
    telemetry decision is authoritative in pool workers -- a worker
    process cannot see the parent's :func:`repro.telemetry.disable`
    call.  ``None`` defers to the worker-side global flag.
    ``dispatch_walltime`` is stamped (POSIX seconds) by the executor at
    submit time; the worker computes its queue wait from it.
    """

    def __init__(self, chunk_index, indices, parameters,
                 capture_telemetry=None):
        self.chunk_index = int(chunk_index)
        self.indices = np.asarray(indices, dtype=int)
        self.parameters = np.asarray(parameters, dtype=float)
        self.capture_telemetry = capture_telemetry
        self.dispatch_walltime = None
        if self.parameters.ndim != 2:
            raise CampaignError("chunk parameters must be a 2D array")
        if self.indices.size != self.parameters.shape[0]:
            raise CampaignError(
                f"chunk has {self.indices.size} indices but "
                f"{self.parameters.shape[0]} parameter rows"
            )


class ChunkResult:
    """Outputs of one completed chunk, in sample order.

    ``telemetry`` is ``None`` or a picklable dict (spans, metrics,
    timings) riding back to the runner, which persists it -- workers do
    not know the store path.
    """

    def __init__(self, chunk_index, indices, parameters, outputs,
                 telemetry=None):
        self.chunk_index = int(chunk_index)
        self.indices = np.asarray(indices, dtype=int)
        self.parameters = np.asarray(parameters, dtype=float)
        self.outputs = np.asarray(outputs, dtype=float)
        self.telemetry = telemetry
        #: Evaluation attempts this result took (set by the retrying
        #: submit loop; 1 for a first-try success).
        self.attempts = 1


def _worker_label():
    """``pid:thread-name`` -- unique per worker of every backend."""
    return f"{os.getpid()}:{threading.current_thread().name}"


def _stamp_dispatch(chunk):
    """Record submit-time wall clock on the chunk (queue-wait origin)."""
    chunk.dispatch_walltime = time.time()
    return chunk


def _chunk_outputs(model, chunk):
    """Evaluate every row of a chunk -- blocked when the model allows it.

    The single evaluation implementation behind both telemetry modes of
    :func:`evaluate_chunk` (the span/metric calls are no-ops without an
    active collector, so the disabled path pays only a no-op guard per
    row).  A model exposing a callable ``evaluate_block`` attribute --
    the sample-blocked fast path (see
    :class:`repro.uq.monte_carlo.BlockedModel`) -- evaluates the whole
    chunk in one call under a ``block`` span, recording the batch size
    and the per-sample amortized cost; plain callables (e.g. the
    Ishigami fixtures, scalar toy models) keep the per-row loop.
    """
    num_samples = chunk.parameters.shape[0]
    block = getattr(model, "evaluate_block", None)
    if callable(block):
        # The backend label rides the block span (the batch-size gauge
        # name itself is stable; tests and dashboards key on it).
        backend_name = getattr(model, "array_backend", None) or "numpy"
        start = time.perf_counter()
        with telemetry.span("block", samples=num_samples,
                            array_backend=backend_name):
            outputs = np.asarray(block(chunk.parameters), dtype=float)
        wall_s = time.perf_counter() - start
        if outputs.shape[0] != num_samples:
            raise CampaignError(
                f"evaluate_block returned {outputs.shape[0]} outputs for "
                f"{num_samples} samples"
            )
        telemetry.gauge("campaign.batch_size", num_samples)
        # Gauges carry no label dimension, so the backend label is a
        # name-suffixed companion gauge (plus the span attribute above).
        telemetry.gauge(
            f"campaign.batch_size.{backend_name}", num_samples
        )
        telemetry.increment("campaign.blocked_solves", num_samples)
        if num_samples:
            telemetry.observe(
                "campaign.sample_amortized_s", wall_s / num_samples
            )
        return outputs
    outputs = []
    for row in range(num_samples):
        with telemetry.span("sample", index=int(chunk.indices[row])):
            outputs.append(
                np.asarray(model(chunk.parameters[row]), dtype=float)
            )
    telemetry.increment("campaign.loop_solves", num_samples)
    return np.stack(outputs)


def _wrap_evaluation_error(chunk, exc):
    """Raise the chunk's failure with full campaign context attached.

    The surfaced :class:`~repro.errors.ChunkEvaluationError` names the
    chunk index, the global sample indices and the worker label, so a
    failure deep inside ``model(row)`` is actionable from the campaign
    log alone -- and the context survives pickling back from pool
    workers.
    """
    indices = [int(index) for index in chunk.indices]
    first, last = (indices[0], indices[-1]) if indices else (None, None)
    worker = _worker_label()
    raise ChunkEvaluationError(
        f"chunk {chunk.chunk_index} failed on worker {worker} "
        f"(samples {first}..{last}): {exc!r}",
        chunk_index=chunk.chunk_index,
        sample_indices=indices,
        worker=worker,
        cause_repr=repr(exc),
        cause_traceback="".join(
            traceback_module.format_exception(type(exc), exc,
                                              exc.__traceback__)
        ),
    ) from exc


def evaluate_chunk(model, chunk):
    """Evaluate every sample of a chunk with an already-built model.

    When the chunk asks for telemetry (or defers to an enabled global
    flag), the evaluation runs inside a capture scope: a ``chunk`` span
    wrapping either one ``block`` span (models with the sample-blocked
    ``evaluate_block`` interface) or one ``sample`` span per row, plus
    whatever ambient metrics the solver stack emits (cache hits, coupled
    steps, blocked solves...).  The capture is summarized into a
    picklable ``ChunkResult.telemetry`` dict.  Disabled, the same
    evaluation helper runs without a collector -- every span/metric call
    is a no-op.

    Any exception out of the evaluation is re-raised as a
    :class:`~repro.errors.ChunkEvaluationError` carrying the chunk
    index, sample indices and worker label (see
    :func:`_wrap_evaluation_error`).
    """
    try:
        return _evaluate_chunk_inner(model, chunk)
    except ChunkEvaluationError:
        raise
    except Exception as exc:
        _wrap_evaluation_error(chunk, exc)


def _evaluate_chunk_inner(model, chunk):
    should_capture = getattr(chunk, "capture_telemetry", None)
    if should_capture is None:
        should_capture = telemetry.enabled()
    if not should_capture:
        return ChunkResult(
            chunk.chunk_index, chunk.indices, chunk.parameters,
            _chunk_outputs(model, chunk),
        )

    start_walltime = time.time()
    start = time.perf_counter()
    with telemetry.capture() as collected:
        with telemetry.span(
            "chunk",
            chunk=chunk.chunk_index,
            samples=int(chunk.indices.size),
        ):
            outputs = _chunk_outputs(model, chunk)
    wall_s = time.perf_counter() - start
    record = {
        "chunk": chunk.chunk_index,
        "samples": int(chunk.indices.size),
        "worker": _worker_label(),
        "wall_s": wall_s,
        "start_walltime": start_walltime,
        "end_walltime": time.time(),
        "events": collected.events,
        "metrics": collected.registry.as_dict(),
    }
    dispatched = getattr(chunk, "dispatch_walltime", None)
    if dispatched is not None:
        # Wall clocks are comparable across processes of one machine;
        # clamp tiny negative skew to zero.
        record["queue_wait_s"] = max(0.0, start_walltime - dispatched)
    return ChunkResult(
        chunk.chunk_index, chunk.indices, chunk.parameters,
        outputs, telemetry=record,
    )


def _drive_chunks(submit, chunks, max_pending, policy, rebuild=None):
    """The retrying bounded-in-flight submit loop behind pool backends.

    ``submit(chunk) -> future`` dispatches one chunk on the current
    pool; ``rebuild()`` (optional) replaces a broken pool so subsequent
    submits land on fresh workers.  Yields :class:`ChunkResult` per
    completed chunk and -- when a policy is given -- a
    :class:`~repro.campaign.faults.ChunkFailure` per chunk that
    exhausted its retries.  Without a policy the first failure is
    re-raised (the historic fail-fast contract).

    Straggler timeouts re-submit speculatively: a timed-out future that
    cannot be cancelled keeps running as an *abandoned* attempt, and
    whichever attempt of the chunk completes first wins (late
    duplicates are dropped).  Worker death (``BrokenExecutor``) dooms
    every in-flight future at once and cannot be attributed to a single
    chunk, so each in-flight chunk's attempt counts the death; with
    ``max_retries >= 1`` the innocent chunks simply succeed on the
    rebuilt pool.
    """
    max_retries = policy.max_retries if policy is not None else 0
    timeout_s = policy.timeout_s if policy is not None else None
    queue = deque((chunk, 1) for chunk in chunks)
    delayed = []  # heap of (ready_monotonic, tiebreak, chunk, attempt)
    tiebreak = itertools.count()
    in_flight = {}  # future -> [chunk, attempt, deadline, abandoned]
    resolved = set()
    # A pool can break *while being fed*: submit() itself raises
    # BrokenExecutor.  The chunk goes back on the queue and the broken
    # pool is handled at the top of the main loop (same path as a
    # future that resolves broken).
    broken_on_submit = [None]

    def active_count():
        return sum(1 for entry in in_flight.values() if not entry[3])

    def submit_one(chunk, attempt):
        try:
            future = submit(chunk)
        except BrokenExecutor as exc:
            if policy is None:
                raise
            broken_on_submit[0] = exc
            queue.appendleft((chunk, attempt))
            return False
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        in_flight[future] = [chunk, attempt, deadline, False]
        return True

    def fill():
        now = time.monotonic()
        while (delayed and delayed[0][0] <= now
               and active_count() < max_pending
               and broken_on_submit[0] is None):
            _, _, chunk, attempt = heapq.heappop(delayed)
            if not submit_one(chunk, attempt):
                break
        while (queue and active_count() < max_pending
               and broken_on_submit[0] is None):
            chunk, attempt = queue.popleft()
            if not submit_one(chunk, attempt):
                break

    def retry_or_fail(chunk, attempt, error, message=None):
        """Schedule a retry, or return the terminal ChunkFailure."""
        if attempt <= max_retries:
            delay = policy.delay_s(chunk.chunk_index, attempt)
            heapq.heappush(
                delayed,
                (time.monotonic() + delay, next(tiebreak), chunk,
                 attempt + 1),
            )
            return None
        return failure_from_error(chunk, error, attempt, message=message)

    fill()
    while in_flight or queue or delayed:
        broken = broken_on_submit[0]
        broken_on_submit[0] = None
        done = set()
        if broken is None:
            if not in_flight:
                if delayed:
                    pause = delayed[0][0] - time.monotonic()
                    if pause > 0:
                        time.sleep(pause)
                fill()
                continue
            poll = None
            now = time.monotonic()
            deadlines = [
                entry[2] for entry in in_flight.values()
                if entry[2] is not None and not entry[3]
            ]
            if deadlines:
                poll = max(0.0, min(deadlines) - now)
            if delayed:
                until_ready = max(0.0, delayed[0][0] - now)
                poll = (until_ready if poll is None
                        else min(poll, until_ready))
            done, _ = wait(set(in_flight), timeout=poll,
                           return_when=FIRST_COMPLETED)
        for future in done:
            chunk, attempt, _, abandoned = in_flight.pop(future)
            error = future.exception()
            if error is None:
                result = future.result()
                if result.chunk_index in resolved:
                    continue  # late duplicate of a timed-out chunk
                resolved.add(result.chunk_index)
                result.attempts = attempt
                yield result
                continue
            if policy is None:
                raise error
            if isinstance(error, BrokenExecutor):
                broken = error
                if not abandoned:
                    in_flight[future] = [chunk, attempt, None, False]
                continue
            if abandoned or chunk.chunk_index in resolved:
                continue  # a replacement attempt owns this chunk now
            failure = retry_or_fail(chunk, attempt, error)
            if failure is not None:
                resolved.add(chunk.chunk_index)
                yield failure
        if broken is not None:
            # Every in-flight future is doomed with the pool.  Collect
            # one (chunk, attempt) per chunk -- a chunk may have both an
            # active and an abandoned attempt in flight -- then either
            # rebuild and retry, or fail everything outstanding.
            casualties = {}
            for chunk, attempt, _, abandoned in in_flight.values():
                if chunk.chunk_index in resolved:
                    continue
                known = casualties.get(chunk.chunk_index)
                if known is None or not abandoned:
                    casualties[chunk.chunk_index] = (chunk, attempt)
            in_flight.clear()
            if rebuild is None:
                # No way to get fresh workers: everything not yet
                # resolved fails with the pool.
                for chunk, attempt in queue:
                    casualties.setdefault(chunk.chunk_index,
                                          (chunk, attempt))
                for _, _, chunk, attempt in delayed:
                    casualties.setdefault(chunk.chunk_index,
                                          (chunk, attempt))
                queue.clear()
                delayed.clear()
                for chunk, attempt in casualties.values():
                    resolved.add(chunk.chunk_index)
                    yield failure_from_error(
                        chunk, broken, attempt,
                        message=f"executor pool broke and cannot be "
                                f"rebuilt: {broken!r}",
                    )
                continue
            rebuild()
            for chunk, attempt in casualties.values():
                failure = retry_or_fail(
                    chunk, attempt, broken,
                    message=f"worker died evaluating chunk "
                            f"{chunk.chunk_index} (attempt {attempt}): "
                            f"{broken!r}",
                )
                if failure is not None:
                    resolved.add(chunk.chunk_index)
                    yield failure
        if timeout_s is not None:
            now = time.monotonic()
            for future, entry in list(in_flight.items()):
                chunk, attempt, deadline, abandoned = entry
                if abandoned or deadline is None or deadline > now:
                    continue
                if future.cancel():
                    del in_flight[future]
                else:
                    entry[3] = True  # keep watching for a late result
                failure = retry_or_fail(
                    chunk, attempt, None,
                    message=f"chunk {chunk.chunk_index} timed out after "
                            f"{timeout_s} s (attempt {attempt})",
                )
                if failure is not None:
                    resolved.add(chunk.chunk_index)
                    yield failure
        fill()


class Executor:
    """Interface: ``map`` for flat streams, ``run_chunks`` for campaigns."""

    def map(self, model_source, parameters):
        """Evaluate every parameter row; outputs in input order.

        Returns an iterable (possibly lazy -- wrap in ``list`` to
        materialize); the parallel implementation necessarily holds all
        results, the serial one streams.
        """
        raise NotImplementedError

    def run_chunks(self, model_source, chunks, policy=None):
        """Yield a :class:`ChunkResult` per chunk as each completes.

        Completion order is executor-dependent; callers must not rely on
        it (the runner reduces in chunk-index order regardless).  With a
        :class:`~repro.campaign.faults.RetryPolicy`, failed chunks are
        retried per the policy and terminal failures are yielded as
        :class:`~repro.campaign.faults.ChunkFailure` records; without
        one the first failure raises.
        """
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process evaluation: builds the model once, loops over samples.

    With a retry policy, a failed chunk is re-evaluated after the
    policy's backoff and finally yielded as a
    :class:`~repro.campaign.faults.ChunkFailure`; the per-chunk
    ``timeout_s`` is documented as unenforced here (a single-process
    loop cannot preempt its own evaluation).
    """

    name = "serial"

    def map(self, model_source, parameters):
        # Resolve eagerly (errors surface at call time), evaluate lazily:
        # consumers that fold outputs one by one (MonteCarloStudy) keep
        # O(1) memory and see progress callbacks per sample.
        model = resolve_model(model_source)
        parameters = np.asarray(parameters, dtype=float)
        return (model(parameters[row]) for row in range(parameters.shape[0]))

    def run_chunks(self, model_source, chunks, policy=None):
        model = resolve_model(model_source)
        for chunk in chunks:
            if policy is None:
                yield evaluate_chunk(model, _stamp_dispatch(chunk))
                continue
            attempt = 1
            while True:
                try:
                    result = evaluate_chunk(model, _stamp_dispatch(chunk))
                except Exception as exc:
                    if attempt <= policy.max_retries:
                        delay = policy.delay_s(chunk.chunk_index, attempt)
                        if delay > 0:
                            time.sleep(delay)
                        attempt += 1
                        continue
                    yield ChunkFailure.from_exception(chunk, exc, attempt)
                    break
                result.attempts = attempt
                yield result
                break


# ----------------------------------------------------------------------
# Process-pool executor: the model is built once per worker process by
# the pool initializer and cached in a module global, so task payloads
# are only (indices, parameters) arrays.
# ----------------------------------------------------------------------
_WORKER_MODEL = None


def _worker_initialize(model_source):
    global _WORKER_MODEL
    _WORKER_MODEL = resolve_model(model_source)


def _worker_evaluate_chunk(chunk):
    if _WORKER_MODEL is None:  # pragma: no cover - initializer always ran
        raise CampaignError("worker model was never initialized")
    return evaluate_chunk(_WORKER_MODEL, chunk)


def _worker_evaluate_row(parameters):
    if _WORKER_MODEL is None:  # pragma: no cover - initializer always ran
        raise CampaignError("worker model was never initialized")
    return np.asarray(_WORKER_MODEL(parameters), dtype=float)


class ParallelExecutor(Executor):
    """Process-pool evaluation with per-worker model/factorization reuse.

    Parameters
    ----------
    num_workers:
        Pool size (default: CPU count, capped at 8 -- field solves are
        memory-bound, more workers rarely help past that).
    max_pending:
        Chunks in flight at once (bounds memory when campaigns have many
        more chunks than workers).
    """

    name = "process"

    def __init__(self, num_workers=None, max_pending=None):
        if num_workers is None:
            num_workers = min(os.cpu_count() or 1, 8)
        self.num_workers = int(num_workers)
        if self.num_workers < 1:
            raise CampaignError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        self.max_pending = (
            int(max_pending) if max_pending is not None
            else 2 * self.num_workers
        )

    def _pool(self, model_source):
        return ProcessPoolExecutor(
            max_workers=self.num_workers,
            initializer=_worker_initialize,
            initargs=(model_source,),
        )

    def map(self, model_source, parameters):
        parameters = np.asarray(parameters, dtype=float)
        rows = [parameters[row] for row in range(parameters.shape[0])]
        with self._pool(model_source) as pool:
            return list(pool.map(_worker_evaluate_row, rows))

    def run_chunks(self, model_source, chunks, policy=None):
        chunks = list(chunks)
        if not chunks:
            return
        holder = {"pool": self._pool(model_source)}

        def submit(chunk):
            return holder["pool"].submit(_worker_evaluate_chunk,
                                         _stamp_dispatch(chunk))

        def rebuild():
            # A broken pool's shutdown never blocks, but be explicit:
            # we must not wait on futures that will never complete.
            holder["pool"].shutdown(wait=False)
            holder["pool"] = self._pool(model_source)

        try:
            yield from _drive_chunks(submit, chunks, self.max_pending,
                                     policy, rebuild=rebuild)
        finally:
            holder["pool"].shutdown(wait=True)


#: Per-process cache of models built by futures-adapter tasks, keyed by
#: the model source's serialized identity.  In a worker process of a
#: serializing backend this amortizes the model build across the chunks
#: that land on the worker (the generic adapter has no initializer
#: hook, so this is the moral equivalent of ``ParallelExecutor``'s
#: per-worker model global).  Bounded LRU: a long-lived service process
#: cycling through many distinct specs must not accumulate a solver per
#: spec forever.
_FUTURES_MODELS = OrderedDict()
_FUTURES_MODELS_MAX = 8


def _futures_model_key(model_source):
    """Stable per-process cache key, or ``None`` when uncacheable."""
    to_dict = getattr(model_source, "to_dict", None)
    if callable(to_dict):
        try:
            return json.dumps(to_dict(), sort_keys=True, default=repr)
        except (TypeError, ValueError):
            return None
    return None


def _futures_evaluate_chunk(model_source, chunk):
    """Module-level task of :class:`FuturesExecutor`: picklable, so it
    survives process-serializing backends; resolves (and caches) the
    model on the worker side."""
    key = _futures_model_key(model_source)
    if key is None:
        model = resolve_model(model_source)
    else:
        model = _FUTURES_MODELS.get(key)
        if model is None:
            model = _FUTURES_MODELS[key] = resolve_model(model_source)
            while len(_FUTURES_MODELS) > _FUTURES_MODELS_MAX:
                _FUTURES_MODELS.popitem(last=False)
        else:
            _FUTURES_MODELS.move_to_end(key)
    return evaluate_chunk(model, chunk)


class FuturesExecutor(Executor):
    """Adapter over any ``concurrent.futures.Executor``-shaped object.

    Parameters
    ----------
    futures:
        Either an executor-like instance (anything with
        ``submit(fn, *args) -> future``; the caller owns its lifecycle)
        or a zero-argument factory returning one per ``run_chunks`` /
        ``map`` call (shut down afterwards) -- thread pools, Dask
        clients' ``get_executor()``, ``mpi4py.futures.MPIPoolExecutor``
        all duck-type in.  The submitted task is a module-level
        function over ``(model_source, chunk)``, so it serializes
        wherever the model source does (specs are plain data by
        design); workers resolve the model themselves and cache it per
        process.
    max_pending:
        Chunks in flight at once (default ``2 * max_workers`` when the
        executor advertises ``_max_workers``, else 16).
    build_per_worker:
        When ``True``, every worker thread resolves its own model from
        the model source (via a :class:`threading.local` cache) instead
        of sharing the per-process cached instance -- required for
        stateful models (the Date16 solver mutates wire lengths per
        sample) on thread-based executors.  Leave ``False`` for
        serializing backends (processes, Dask), which ship independent
        copies anyway.
    """

    name = "futures"

    def __init__(self, futures, max_pending=None, build_per_worker=False):
        if callable(getattr(futures, "submit", None)):
            self._factory = None
            self._futures = futures
        elif callable(futures):
            self._factory = futures
            self._futures = None
        else:
            raise CampaignError(
                f"futures must provide submit() or be a factory, got "
                f"{type(futures).__name__}"
            )
        self.max_pending = max_pending
        self.build_per_worker = bool(build_per_worker)

    def _task(self, model_source):
        """The per-chunk task callable.

        The default is the picklable module-level function (worker-side
        per-process model cache); ``build_per_worker`` swaps in a
        thread-local closure -- closures do not pickle, but thread-based
        executors never serialize their tasks.
        """
        if not self.build_per_worker:
            return functools.partial(_futures_evaluate_chunk, model_source)
        local = threading.local()

        def task(chunk):
            model = getattr(local, "model", None)
            if model is None:
                model = local.model = resolve_model(model_source)
            return evaluate_chunk(model, chunk)

        return task

    def _run(self, task, chunks, policy=None):
        if self._futures is not None:
            # Caller-owned executor: no rebuild hook -- a broken pool
            # fails all outstanding chunks (the driver records them).
            yield from self._submit_all(self._futures, task, chunks,
                                        policy, rebuild=None)
            return
        holder = {"pool": self._factory()}

        def rebuild():
            holder["pool"].shutdown(wait=False)
            holder["pool"] = self._factory()

        try:
            yield from self._submit_all(holder, task, chunks, policy,
                                        rebuild=rebuild)
        finally:
            holder["pool"].shutdown(wait=True)

    def _submit_all(self, pool, task, chunks, policy=None, rebuild=None):
        current = (lambda: pool["pool"]) if isinstance(pool, dict) \
            else (lambda: pool)
        max_pending = self.max_pending
        if max_pending is None:
            max_pending = 2 * getattr(current(), "_max_workers", 8)

        def submit(chunk):
            return current().submit(task, _stamp_dispatch(chunk))

        yield from _drive_chunks(submit, chunks, max_pending, policy,
                                 rebuild=rebuild)

    def map(self, model_source, parameters):
        parameters = np.asarray(parameters, dtype=float)
        chunks = [
            WorkChunk(row, [row], parameters[row:row + 1])
            for row in range(parameters.shape[0])
        ]
        task = self._task(model_source)
        results = {r.chunk_index: r.outputs[0] for r in
                   self._run(task, chunks)}
        return [results[row] for row in range(parameters.shape[0])]

    def run_chunks(self, model_source, chunks, policy=None):
        chunks = list(chunks)
        if not chunks:
            return
        yield from self._run(self._task(model_source), chunks, policy)


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
_BACKENDS = {}


def register_backend(name, factory=None):
    """Register ``factory(num_workers=None) -> Executor`` under ``name``.

    Usable directly or as a decorator.  The name becomes addressable
    everywhere an executor is named: ``run_campaign(executor=name)``,
    the CLI's ``--executor name``, ``make_executor(name)``.  A factory
    that cannot honor ``num_workers`` must raise
    :class:`~repro.errors.CampaignError` when one is passed, so user
    intent is never silently dropped.
    """
    if factory is None:
        def decorator(func):
            _BACKENDS[str(name)] = func
            return func
        return decorator
    _BACKENDS[str(name)] = factory
    return factory


def registered_backends():
    """Sorted names of every registered executor backend."""
    return sorted(_BACKENDS)


@register_backend("serial")
def _serial_backend(num_workers=None):
    if num_workers is not None:
        raise CampaignError(
            "the 'serial' backend runs in-process and ignores worker "
            "counts; drop --workers or pick a parallel backend "
            f"({', '.join(sorted(set(_BACKENDS) - {'serial'}))})"
        )
    return SerialExecutor()


@register_backend("process")
@register_backend("parallel")
def _process_backend(num_workers=None):
    return ParallelExecutor(num_workers=num_workers)


@register_backend("thread")
def _thread_backend(num_workers=None):
    if num_workers is None:
        num_workers = min(os.cpu_count() or 1, 8)
    if int(num_workers) < 1:
        raise CampaignError(
            f"num_workers must be >= 1, got {num_workers}"
        )
    executor = FuturesExecutor(
        lambda: ThreadPoolExecutor(max_workers=int(num_workers)),
        build_per_worker=True,
    )
    executor.name = "thread"
    return executor


def make_executor(kind, num_workers=None):
    """Resolve a backend name (or pass an Executor through) -> Executor.

    ``kind`` is ``None`` (the serial default), a registered backend name
    (``"serial"``, ``"process"``/``"parallel"``, ``"thread"`` or
    anything added via :func:`register_backend`), or a ready
    :class:`Executor` instance -- which is returned as-is and must not
    be combined with ``num_workers``.
    """
    if isinstance(kind, Executor):
        if num_workers is not None:
            raise CampaignError(
                "num_workers cannot be combined with a ready Executor "
                "instance; size the instance directly"
            )
        return kind
    if kind is None:
        kind = "serial"
        if num_workers is not None:
            raise CampaignError(
                "--workers needs a parallel executor backend; pass e.g. "
                "--executor process"
            )
    try:
        factory = _BACKENDS[kind]
    except KeyError:
        raise CampaignError(
            f"unknown executor backend {kind!r}; registered: "
            f"{registered_backends()}"
        ) from None
    return factory(num_workers=num_workers)
