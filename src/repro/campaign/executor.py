"""Executors: where and how campaign samples are evaluated.

The executor owns the evaluation loop only -- sampling, checkpointing and
reduction stay in the runner, so every executor produces byte-identical
campaign results.  Two implementations:

* :class:`SerialExecutor` -- in-process loop (also the executor injected
  into :meth:`repro.uq.monte_carlo.MonteCarloStudy.run` by default-less
  callers);
* :class:`ParallelExecutor` -- a ``ProcessPoolExecutor`` where every
  worker builds the model **once** from the picklable model source (a
  :class:`~repro.campaign.spec.ScenarioSpec` or plain callable) in its
  initializer.  Building the Date16 scenario constructs the coupled
  solver in fast mode, so the base LU / Woodbury operators are cached in
  the worker for its whole lifetime and each sample costs only solves.

Model sources
-------------
Anything with a ``build_model()`` method (built once per worker, then
cached) or a plain picklable callable.  Bound methods of solver-holding
objects are *not* picklable -- that is exactly why the spec layer exists.
"""

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

import numpy as np

from ..errors import CampaignError


def resolve_model(model_source):
    """Turn a model source into the evaluation callable."""
    build = getattr(model_source, "build_model", None)
    if callable(build):
        return build()
    if callable(model_source):
        return model_source
    raise CampaignError(
        f"model source must be callable or provide build_model(), got "
        f"{type(model_source).__name__}"
    )


class WorkChunk:
    """One executor task: evaluate ``parameters`` rows ``indices``."""

    def __init__(self, chunk_index, indices, parameters):
        self.chunk_index = int(chunk_index)
        self.indices = np.asarray(indices, dtype=int)
        self.parameters = np.asarray(parameters, dtype=float)
        if self.parameters.ndim != 2:
            raise CampaignError("chunk parameters must be a 2D array")
        if self.indices.size != self.parameters.shape[0]:
            raise CampaignError(
                f"chunk has {self.indices.size} indices but "
                f"{self.parameters.shape[0]} parameter rows"
            )


class ChunkResult:
    """Outputs of one completed chunk, in sample order."""

    def __init__(self, chunk_index, indices, parameters, outputs):
        self.chunk_index = int(chunk_index)
        self.indices = np.asarray(indices, dtype=int)
        self.parameters = np.asarray(parameters, dtype=float)
        self.outputs = np.asarray(outputs, dtype=float)


def evaluate_chunk(model, chunk):
    """Evaluate every sample of a chunk with an already-built model."""
    outputs = [
        np.asarray(model(chunk.parameters[row]), dtype=float)
        for row in range(chunk.parameters.shape[0])
    ]
    return ChunkResult(
        chunk.chunk_index, chunk.indices, chunk.parameters,
        np.stack(outputs),
    )


class Executor:
    """Interface: ``map`` for flat streams, ``run_chunks`` for campaigns."""

    def map(self, model_source, parameters):
        """Evaluate every parameter row; outputs in input order.

        Returns an iterable (possibly lazy -- wrap in ``list`` to
        materialize); the parallel implementation necessarily holds all
        results, the serial one streams.
        """
        raise NotImplementedError

    def run_chunks(self, model_source, chunks):
        """Yield a :class:`ChunkResult` per chunk as each completes.

        Completion order is executor-dependent; callers must not rely on
        it (the runner reduces in chunk-index order regardless).
        """
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process evaluation: builds the model once, loops over samples."""

    name = "serial"

    def map(self, model_source, parameters):
        # Resolve eagerly (errors surface at call time), evaluate lazily:
        # consumers that fold outputs one by one (MonteCarloStudy) keep
        # O(1) memory and see progress callbacks per sample.
        model = resolve_model(model_source)
        parameters = np.asarray(parameters, dtype=float)
        return (model(parameters[row]) for row in range(parameters.shape[0]))

    def run_chunks(self, model_source, chunks):
        model = resolve_model(model_source)
        for chunk in chunks:
            yield evaluate_chunk(model, chunk)


# ----------------------------------------------------------------------
# Process-pool executor: the model is built once per worker process by
# the pool initializer and cached in a module global, so task payloads
# are only (indices, parameters) arrays.
# ----------------------------------------------------------------------
_WORKER_MODEL = None


def _worker_initialize(model_source):
    global _WORKER_MODEL
    _WORKER_MODEL = resolve_model(model_source)


def _worker_evaluate_chunk(chunk):
    if _WORKER_MODEL is None:  # pragma: no cover - initializer always ran
        raise CampaignError("worker model was never initialized")
    return evaluate_chunk(_WORKER_MODEL, chunk)


def _worker_evaluate_row(parameters):
    if _WORKER_MODEL is None:  # pragma: no cover - initializer always ran
        raise CampaignError("worker model was never initialized")
    return np.asarray(_WORKER_MODEL(parameters), dtype=float)


class ParallelExecutor(Executor):
    """Process-pool evaluation with per-worker model/factorization reuse.

    Parameters
    ----------
    num_workers:
        Pool size (default: CPU count, capped at 8 -- field solves are
        memory-bound, more workers rarely help past that).
    max_pending:
        Chunks in flight at once (bounds memory when campaigns have many
        more chunks than workers).
    """

    name = "parallel"

    def __init__(self, num_workers=None, max_pending=None):
        if num_workers is None:
            num_workers = min(os.cpu_count() or 1, 8)
        self.num_workers = int(num_workers)
        if self.num_workers < 1:
            raise CampaignError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        self.max_pending = (
            int(max_pending) if max_pending is not None
            else 2 * self.num_workers
        )

    def _pool(self, model_source):
        return ProcessPoolExecutor(
            max_workers=self.num_workers,
            initializer=_worker_initialize,
            initargs=(model_source,),
        )

    def map(self, model_source, parameters):
        parameters = np.asarray(parameters, dtype=float)
        rows = [parameters[row] for row in range(parameters.shape[0])]
        with self._pool(model_source) as pool:
            return list(pool.map(_worker_evaluate_row, rows))

    def run_chunks(self, model_source, chunks):
        chunks = list(chunks)
        if not chunks:
            return
        with self._pool(model_source) as pool:
            queue = iter(chunks)
            pending = set()
            for chunk in queue:
                pending.add(pool.submit(_worker_evaluate_chunk, chunk))
                if len(pending) >= self.max_pending:
                    break
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
                for chunk in queue:
                    pending.add(pool.submit(_worker_evaluate_chunk, chunk))
                    if len(pending) >= self.max_pending:
                        break


def make_executor(kind, num_workers=None):
    """``"serial"`` / ``"parallel"`` (or an Executor instance) -> Executor."""
    if isinstance(kind, Executor):
        return kind
    if kind in (None, "serial"):
        return SerialExecutor()
    if kind == "parallel":
        return ParallelExecutor(num_workers=num_workers)
    raise CampaignError(
        f"unknown executor kind {kind!r}; expected 'serial' or 'parallel'"
    )
