"""Campaign orchestration: sample, execute, checkpoint, reduce, resume.

The runner is deliberately executor-agnostic and deterministic:

* parameters come from counter-based per-sample seeding (sample ``i``
  draws from ``SeedSequence(campaign_seed, spawn_key=(i,))``), so the
  parameter matrix is a pure function of the spec -- independent of
  worker count, chunk completion order, and of how often the run was
  killed and resumed;
* outputs are checkpointed per chunk in the
  :class:`~repro.campaign.store.ArtifactStore`;
* the reduction folds per-chunk Welford accumulators with
  :meth:`~repro.uq.statistics.RunningStatistics.merge` in chunk-index
  order, so serial and parallel executions produce bit-identical
  mean/std.
"""

import numpy as np

from ..errors import CampaignError
from ..uq.sampling import map_to_distributions
from ..uq.statistics import RunningStatistics
from . import registry
from .executor import WorkChunk, make_executor
from .spec import CampaignSpec
from .store import ArtifactStore


# ----------------------------------------------------------------------
# Deterministic sampling
# ----------------------------------------------------------------------
def unit_sample(seed, sample_index, dimension):
    """Unit-cube point of one sample, independent of every other sample."""
    sequence = np.random.SeedSequence(
        entropy=int(seed), spawn_key=(int(sample_index),)
    )
    return np.random.default_rng(sequence).random(int(dimension))


def campaign_parameters(spec, indices=None):
    """Physical parameter rows for the given global sample indices.

    Delegates the unit-cube layout to ``spec.unit_points`` (plain
    stream/counter sampling for :class:`~repro.campaign.spec.
    CampaignSpec`, Saltelli block composition for
    :class:`~repro.campaign.sensitivity.SensitivitySpec`), so every
    sampler and every campaign flavor yields the same row for the same
    index no matter how the campaign is partitioned.
    """
    if indices is None:
        indices = range(spec.num_samples)
    indices = np.asarray(list(indices), dtype=int)
    if indices.size and (
        indices.min() < 0 or indices.max() >= spec.num_samples
    ):
        raise CampaignError(
            f"sample indices must be in [0, {spec.num_samples}), got "
            f"[{indices.min()}, {indices.max()}]"
        )
    return map_to_distributions(
        spec.unit_points(indices), spec.build_distribution()
    )


def campaign_chunks(spec, chunk_indices=None):
    """:class:`WorkChunk` list for the given (default: all) chunks.

    Full-stream samplers generate the whole deterministic stream once
    and slice it per chunk (regenerating per chunk would cost
    ``O(num_chunks * num_samples)``); counter-based sampling generates
    exactly the requested rows.
    """
    if chunk_indices is None:
        chunk_indices = range(spec.num_chunks)
    full_parameters = None
    if spec.sampler != registry.COUNTER_SAMPLER:
        full_parameters = campaign_parameters(spec)
    chunks = []
    for chunk_index in chunk_indices:
        indices = np.asarray(spec.chunk_indices(chunk_index), dtype=int)
        if full_parameters is not None:
            parameters = full_parameters[indices]
        else:
            parameters = campaign_parameters(spec, indices)
        chunks.append(WorkChunk(chunk_index, indices, parameters))
    return chunks


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
class CampaignResult:
    """Reduced statistics of a completed campaign.

    Attributes
    ----------
    spec:
        The :class:`~repro.campaign.spec.CampaignSpec` that was run.
    statistics:
        The merged :class:`~repro.uq.statistics.RunningStatistics`.
    parameters:
        The full ``(M, d)`` parameter matrix.
    num_evaluated:
        Samples evaluated by *this* call (0 when everything was already
        checkpointed -- a pure re-reduce).
    """

    def __init__(self, spec, statistics, parameters, num_evaluated):
        self.spec = spec
        self.statistics = statistics
        self.parameters = parameters
        self.num_evaluated = int(num_evaluated)

    @property
    def num_samples(self):
        return self.statistics.count

    @property
    def mean(self):
        return self.statistics.mean

    @property
    def std(self):
        return self.statistics.std()

    @property
    def minimum(self):
        return self.statistics.minimum

    @property
    def maximum(self):
        return self.statistics.maximum

    def error(self):
        """The paper's eq. (6): ``sigma_MC / sqrt(M)`` per output entry."""
        return self.statistics.standard_error()

    def summary(self):
        """JSON-serializable scalars for reports and ``summary.json``."""
        mean = self.mean
        std = self.std
        hottest = int(np.argmax(mean))
        return {
            "campaign": self.spec.name,
            "problem": self.spec.scenario.problem,
            "qoi": self.spec.scenario.qoi,
            "num_samples": int(self.num_samples),
            "num_chunks": int(self.spec.num_chunks),
            "output_size": int(mean.size),
            "mean_max": float(np.max(mean)),
            "mean_min": float(np.min(mean)),
            "std_max": float(np.max(std)),
            "error_mc_max": float(np.max(self.error())),
            "argmax_output": hottest,
        }

    def __repr__(self):
        return (
            f"CampaignResult({self.spec.name!r}, M={self.num_samples}, "
            f"output_shape={np.shape(self.statistics.mean)})"
        )


# ----------------------------------------------------------------------
# Run / resume
# ----------------------------------------------------------------------
def execute_campaign_chunks(spec, store=None, executor=None, progress=None):
    """Evaluate every not-yet-checkpointed chunk of a campaign.

    The shared execution half of :func:`run_campaign` and
    :func:`~repro.campaign.sensitivity.run_sensitivity_campaign`:
    initializes/validates the store, runs the pending chunks through the
    executor (checkpointing as they complete) and returns
    ``(chunk_reader, num_evaluated, store)``, where ``chunk_reader(index)``
    returns the ``(indices, parameters, outputs)`` arrays of any chunk
    -- from the store when one is attached, from memory otherwise --
    and ``store`` is the normalized :class:`ArtifactStore` (``None``
    when the run is in-memory), so callers never re-wrap path strings.
    """
    executor = make_executor(executor)
    if store is not None and not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    if store is not None:
        store.initialize(spec)
        completed = set(store.completed_chunks())
    else:
        completed = set()

    pending = [index for index in range(spec.num_chunks)
               if index not in completed]
    memory_chunks = {}
    num_evaluated = 0
    done = len(completed)
    total = spec.num_chunks
    if pending:
        chunks = campaign_chunks(spec, pending)
        for result in executor.run_chunks(spec.scenario, chunks):
            num_evaluated += result.indices.size
            if store is not None:
                store.write_chunk(result)
            else:
                memory_chunks[result.chunk_index] = result
            done += 1
            if progress is not None:
                progress(done, total)

    def chunk_reader(chunk_index):
        if store is not None:
            return store.read_chunk(chunk_index)
        result = memory_chunks[chunk_index]
        return result.indices, result.parameters, result.outputs

    return chunk_reader, num_evaluated, store


def run_campaign(spec, store=None, executor=None, progress=None):
    """Run (or finish) a campaign and return its :class:`CampaignResult`.

    Parameters
    ----------
    spec:
        The :class:`~repro.campaign.spec.CampaignSpec`.
    store:
        Optional :class:`~repro.campaign.store.ArtifactStore` (or path);
        when given, completed chunks are checkpointed there and already
        checkpointed chunks are *not* recomputed -- calling
        ``run_campaign`` on a partially filled store is the resume path.
        Without a store, everything is kept in memory (no resume).
    executor:
        ``"serial"`` (default) / ``"parallel"`` or an Executor instance.
    progress:
        Optional ``progress(done_chunks, total_chunks)`` callback, called
        after every chunk completion.
    """
    if not isinstance(spec, CampaignSpec):
        raise CampaignError(
            f"expected a CampaignSpec, got {type(spec).__name__}"
        )
    if spec.kind != CampaignSpec.kind:
        raise CampaignError(
            f"{type(spec).__name__} (kind {spec.kind!r}) needs its own "
            "reduction -- use run_sensitivity_campaign (CLI: "
            "repro-campaign sobol run)"
        )
    chunk_reader, num_evaluated, store = execute_campaign_chunks(
        spec, store=store, executor=executor, progress=progress
    )

    # Deterministic reduce: per-chunk Welford accumulators merged in
    # chunk-index order -- identical for every executor and across
    # kill/resume cycles, because it only sees the checkpointed outputs.
    statistics = RunningStatistics()
    parameters = np.empty((spec.num_samples, spec.dimension))
    for chunk_index in range(spec.num_chunks):
        indices, chunk_parameters, outputs = chunk_reader(chunk_index)
        chunk_statistics = RunningStatistics()
        for row in range(outputs.shape[0]):
            chunk_statistics.update(outputs[row])
        statistics.merge(chunk_statistics)
        parameters[indices] = chunk_parameters

    result = CampaignResult(spec, statistics, parameters, num_evaluated)
    if store is not None:
        store.write_summary(result.summary())
    return result


def resume_campaign(store, executor=None, progress=None):
    """Finish the campaign pinned in an existing store.

    Reads the spec from the manifest, evaluates only the missing chunks
    and reduces over all of them -- by construction this reproduces the
    uninterrupted result exactly.  Dispatches on the pinned spec's kind,
    so resuming a sensitivity store returns a
    :class:`~repro.campaign.sensitivity.SensitivityResult`.
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    if not store.exists():
        raise CampaignError(
            f"no campaign manifest at {store.path!r}; run 'run' first"
        )
    spec = store.load_spec()
    if spec.kind != CampaignSpec.kind:
        from .sensitivity import run_sensitivity_campaign

        return run_sensitivity_campaign(
            spec, store=store, executor=executor, progress=progress
        )
    return run_campaign(
        spec, store=store, executor=executor, progress=progress
    )
