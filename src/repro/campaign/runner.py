"""Campaign orchestration: sample, execute, checkpoint, reduce, resume.

One :func:`run_campaign` / :func:`resume_campaign` pair serves every
campaign kind: the spec says *what to evaluate*, a registered
:class:`~repro.campaign.executor.Executor` backend says *where*, and a
registered :class:`~repro.campaign.reducer.Reducer` says *what the
evaluations become* (running moments, Jansen Sobol indices, a fitted
PCE surrogate, anything user-registered).

The runner is deliberately executor-agnostic and deterministic:

* parameters come from counter-based per-sample seeding (sample ``i``
  draws from ``SeedSequence(campaign_seed, spawn_key=(i,))``) or a
  seeded full-stream sampler, so the parameter matrix is a pure
  function of the spec -- independent of worker count, chunk completion
  order, and of how often the run was killed and resumed;
* outputs are checkpointed per chunk in the
  :class:`~repro.campaign.store.ArtifactStore`;
* the reduction folds the chunks into the reducer **in chunk-index
  order** (the contiguous frontier folds as soon as its chunks are
  available, regardless of completion order), so every executor and
  every kill/resume history produces bit-identical reductions;
* checkpointable reducers snapshot their state into the store after
  every folded chunk, so a resume restores the reduction itself instead
  of re-folding -- with results identical either way, because the state
  round-trips float64 exactly.
"""

import copy
import inspect
import time

import numpy as np

from ..errors import CampaignError
from ..telemetry import MetricsRegistry, tracing
from ..uq.sampling import map_to_distributions
from . import registry
from .executor import WorkChunk, make_executor
from .faults import ChunkFailure, RetryPolicy
from .reducer import resolve_reducer
from .spec import CampaignSpec
from .store import ArtifactStore


# ----------------------------------------------------------------------
# Deterministic sampling
# ----------------------------------------------------------------------
def unit_sample(seed, sample_index, dimension):
    """Unit-cube point of one sample, independent of every other sample."""
    sequence = np.random.SeedSequence(
        entropy=int(seed), spawn_key=(int(sample_index),)
    )
    return np.random.default_rng(sequence).random(int(dimension))


def campaign_parameters(spec, indices=None):
    """Physical parameter rows for the given global sample indices.

    Delegates the unit-cube layout to ``spec.unit_points`` (plain
    stream/counter sampling for :class:`~repro.campaign.spec.
    CampaignSpec`, Saltelli block composition for
    :class:`~repro.campaign.sensitivity.SensitivitySpec`), so every
    sampler and every campaign flavor yields the same row for the same
    index no matter how the campaign is partitioned.
    """
    if indices is None:
        indices = range(spec.num_samples)
    indices = np.asarray(list(indices), dtype=int)
    if indices.size and (
        indices.min() < 0 or indices.max() >= spec.num_samples
    ):
        raise CampaignError(
            f"sample indices must be in [0, {spec.num_samples}), got "
            f"[{indices.min()}, {indices.max()}]"
        )
    return map_to_distributions(
        spec.unit_points(indices), spec.build_distribution()
    )


def campaign_chunks(spec, chunk_indices=None):
    """:class:`WorkChunk` list for the given (default: all) chunks.

    Full-stream samplers generate the whole deterministic stream once
    and slice it per chunk (regenerating per chunk would cost
    ``O(num_chunks * num_samples)``); counter-based sampling generates
    exactly the requested rows.
    """
    if chunk_indices is None:
        chunk_indices = range(spec.num_chunks)
    full_parameters = None
    if spec.sampler != registry.COUNTER_SAMPLER:
        full_parameters = campaign_parameters(spec)
    chunks = []
    for chunk_index in chunk_indices:
        indices = np.asarray(spec.chunk_indices(chunk_index), dtype=int)
        if full_parameters is not None:
            parameters = full_parameters[indices]
        else:
            parameters = campaign_parameters(spec, indices)
        chunks.append(WorkChunk(chunk_index, indices, parameters))
    return chunks


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
class CampaignResult:
    """Reduced statistics of a completed campaign.

    Attributes
    ----------
    spec:
        The :class:`~repro.campaign.spec.CampaignSpec` that was run.
    statistics:
        The merged :class:`~repro.uq.statistics.RunningStatistics`.
    parameters:
        The full ``(M, d)`` parameter matrix.
    num_evaluated:
        Samples evaluated by *this* call (0 when everything was already
        checkpointed -- a pure re-reduce).
    quarantine:
        ``{chunk_index: failure_record}`` of chunks quarantined after
        exhausting their retries (``None`` on failure-free campaigns);
        their samples are excluded from the statistics.
    """

    #: Set by the runner when chunks were quarantined this campaign.
    quarantine = None

    def __init__(self, spec, statistics, parameters, num_evaluated):
        self.spec = spec
        self.statistics = statistics
        self.parameters = parameters
        self.num_evaluated = int(num_evaluated)

    @property
    def num_samples(self):
        return self.statistics.count

    @property
    def mean(self):
        return self.statistics.mean

    @property
    def std(self):
        return self.statistics.std()

    @property
    def minimum(self):
        return self.statistics.minimum

    @property
    def maximum(self):
        return self.statistics.maximum

    def error(self):
        """The paper's eq. (6): ``sigma_MC / sqrt(M)`` per output entry."""
        return self.statistics.standard_error()

    def summary(self):
        """JSON-serializable scalars for reports and ``summary.json``."""
        mean = self.mean
        std = self.std
        hottest = int(np.argmax(mean))
        summary = {
            "campaign": self.spec.name,
            "problem": self.spec.scenario.problem,
            "qoi": self.spec.scenario.qoi,
            "num_samples": int(self.num_samples),
            "num_chunks": int(self.spec.num_chunks),
            "output_size": int(mean.size),
            "mean_max": float(np.max(mean)),
            "mean_min": float(np.min(mean)),
            "std_max": float(np.max(std)),
            "error_mc_max": float(np.max(self.error())),
            "argmax_output": hottest,
        }
        if self.quarantine:
            summary["num_quarantined_chunks"] = len(self.quarantine)
            summary["num_quarantined_samples"] = int(sum(
                len(record.get("indices", ()))
                for record in self.quarantine.values()
            ))
        return summary

    def __repr__(self):
        return (
            f"CampaignResult({self.spec.name!r}, M={self.num_samples}, "
            f"output_shape={np.shape(self.statistics.mean)})"
        )


# ----------------------------------------------------------------------
# Progress and telemetry plumbing
# ----------------------------------------------------------------------
def _progress_adapter(progress):
    """Wrap a progress callback into an event-dict dispatcher.

    Two callback styles are supported: the legacy ``progress(done,
    total)`` positional pair (anything accepting >= 2 positional
    arguments, including ``*args``), and the telemetry style
    ``progress(event)`` receiving the full heartbeat dict (done, total,
    EWMA chunk rate, ETA).  Detection is by signature, so existing
    callers keep working unchanged.
    """
    if progress is None:
        return None
    try:
        parameters = inspect.signature(progress).parameters.values()
        positional = sum(
            1 for p in parameters
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        )
        varargs = any(p.kind == p.VAR_POSITIONAL for p in parameters)
    except (TypeError, ValueError):
        positional, varargs = 2, False
    if varargs or positional >= 2:
        def dispatch(event):
            progress(event["done"], event["total"])
    else:
        def dispatch(event):
            progress(event)
    return dispatch


class _Heartbeat:
    """EWMA chunk-rate tracker producing ``heartbeat`` event dicts."""

    #: EWMA smoothing: ~the last few chunks dominate, so the rate (and
    #: ETA) adapts to stragglers without whiplashing on one fast chunk.
    alpha = 0.3

    def __init__(self, total):
        self.total = int(total)
        self.rate = None
        self._origin = time.perf_counter()
        self._last = self._origin

    def beat(self, done):
        now = time.perf_counter()
        interval = now - self._last
        self._last = now
        instantaneous = 1.0 / interval if interval > 0 else 0.0
        if self.rate is None:
            self.rate = instantaneous
        else:
            self.rate += self.alpha * (instantaneous - self.rate)
        remaining = self.total - done
        eta = remaining / self.rate if self.rate and self.rate > 0 else None
        return {
            "event": "heartbeat",
            "done": int(done),
            "total": self.total,
            "rate_per_s": float(self.rate),
            "eta_s": None if eta is None else float(eta),
            "wall_s": now - self._origin,
        }


def _chunk_events(record):
    """A worker's telemetry record -> the chunk's JSONL event list.

    The first line is the ``chunk`` summary event (timings, worker,
    merged sample metrics); the captured span events follow.
    """
    head = {
        key: value for key, value in record.items() if key != "events"
    }
    head["event"] = "chunk"
    return [head, *record.get("events", ())]


def _merged_campaign_metrics(store, records):
    """Merge per-chunk metric registries into one campaign registry.

    Reads from the store when one exists (so a resumed run folds the
    pre-kill chunks' metrics back in); falls back to this call's
    in-memory records for store-less runs.  Per-chunk wall/queue times
    are folded in as histograms, making straggler spread queryable from
    ``metrics.json`` alone.
    """
    merged = MetricsRegistry()
    if store is not None:
        chunk_events = (
            event
            for index in store.telemetry_chunks()
            for event in store.read_chunk_telemetry(index)
            if event.get("event") == "chunk"
        )
    else:
        chunk_events = iter(records.values())
    for event in chunk_events:
        if event.get("metrics"):
            merged.merge(event["metrics"])
        if "wall_s" in event:
            merged.observe("chunk.wall_s", event["wall_s"])
        if "queue_wait_s" in event:
            merged.observe("chunk.queue_wait_s", event["queue_wait_s"])
    return merged


# ----------------------------------------------------------------------
# Run / resume
# ----------------------------------------------------------------------
def _provenance_record(reducer, executor):
    """Manifest provenance: who produced this store, with what."""
    import repro

    return {
        "package": "repro-date16",
        "package_version": getattr(repro, "__version__", "unknown"),
        "reducer": reducer.kind,
        "executor": getattr(executor, "name", type(executor).__name__),
    }


def _run_chunks(executor, scenario, chunks, policy):
    """Dispatch to ``executor.run_chunks``, passing the retry policy
    only when asked for one.

    ``policy=None`` keeps the historic two-argument call, so
    user-registered executors written before fault tolerance existed
    keep working unchanged; requesting retries from such an executor is
    a pointed error rather than silently-ignored resilience.
    """
    if policy is None:
        return executor.run_chunks(scenario, chunks)
    try:
        signature = inspect.signature(executor.run_chunks)
        supported = "policy" in signature.parameters or any(
            parameter.kind == parameter.VAR_KEYWORD
            for parameter in signature.parameters.values()
        )
    except (TypeError, ValueError):
        supported = True
    if not supported:
        raise CampaignError(
            f"executor {getattr(executor, 'name', type(executor).__name__)!r} "
            "does not accept a retry policy (its run_chunks has no "
            "'policy' parameter); run without retry= or upgrade the "
            "executor"
        )
    return executor.run_chunks(scenario, chunks, policy=policy)


def _pin_array_backend(spec, array_backend):
    """Pin a validated array-backend selection into the scenario options.

    Resolving the backend here -- in the submitting process, before any
    worker spawns -- turns a typo or a missing optional dependency (the
    CuPy ``[gpu]`` extra) into an immediate, clearly attributed error.
    The name is written into ``spec.scenario.options`` (on a copy; the
    caller's spec is never mutated), so it is serialized to workers and
    pinned in the store manifest: resuming under a *different* backend
    is refused by the store's spec-identity check, which is correct --
    the backend is part of the numerical contract of the results.
    """
    from ..backends import get_array_backend

    name = get_array_backend(array_backend).name
    if spec.scenario.options.get("array_backend") == name:
        return spec
    spec = copy.deepcopy(spec)
    spec.scenario.options["array_backend"] = name
    return spec


def run_campaign(spec, store=None, executor=None, progress=None,
                 reducer=None, telemetry=None, retry=None,
                 retry_quarantined=True, array_backend=None):
    """Run (or finish) a campaign of any kind and return its result.

    The one execution/reduction path of the campaign engine: evaluates
    every not-yet-checkpointed chunk through the executor backend and
    folds all chunks into the reducer in chunk-index order -- folding
    the contiguous frontier as soon as its chunks are available, and
    (for checkpointable reducers with a store) snapshotting the
    reduction state after every fold so a resume restores the reduction
    rather than re-folding.  The result object is reducer-specific:
    :class:`CampaignResult` for ``"moments"``,
    :class:`~repro.campaign.sensitivity.SensitivityResult` for
    ``"jansen"``, :class:`~repro.campaign.reducer.SurrogateResult` for
    ``"pce"``.

    Parameters
    ----------
    spec:
        Any :class:`~repro.campaign.spec.CampaignSpec` (including
        :class:`~repro.campaign.sensitivity.SensitivitySpec`).
    store:
        Optional :class:`~repro.campaign.store.ArtifactStore` (or path);
        when given, completed chunks are checkpointed there and already
        checkpointed chunks are *not* recomputed -- calling
        ``run_campaign`` on a partially filled store is the resume path.
        Without a store, everything is kept in memory (no resume).
    executor:
        A registered backend name (``"serial"`` default, ``"process"``,
        ``"thread"``, or anything added via
        :func:`~repro.campaign.executor.register_backend`) or an
        :class:`~repro.campaign.executor.Executor` instance.
    progress:
        Optional callback called after every chunk completion -- either
        the legacy ``progress(done_chunks, total_chunks)`` pair or a
        single-argument ``progress(event)`` receiving the full
        ``heartbeat`` telemetry event (done/total plus EWMA chunk rate
        and ETA); the style is detected from the callback's signature.
    reducer:
        A :class:`~repro.campaign.reducer.Reducer` instance, a kind name,
        or a ``{"kind": ..., **options}`` dict; ``None`` falls back to
        the spec's ``reducer`` field and then to the spec kind's default
        (``"moments"`` / ``"jansen"``).
    telemetry:
        ``True``/``False`` forces per-chunk telemetry capture on/off for
        this run; ``None`` (default) follows the global flag
        (:func:`repro.telemetry.enabled`, env ``REPRO_TELEMETRY``).
        With a store, captured telemetry is persisted under
        ``<store>/telemetry/`` (per-chunk JSONL written *before* each
        chunk's ``.npz``, an append-only ``run.jsonl``, and the merged
        ``metrics.json``).
    retry:
        Optional fault-tolerance policy: a
        :class:`~repro.campaign.faults.RetryPolicy`, an int
        (``max_retries`` shorthand) or an options dict.  With one,
        failed chunks are retried per the policy, chunks that exhaust
        their retries are **quarantined** (recorded in the store's
        ``quarantine.json``, folded around, excluded from the
        statistics) and the campaign completes over the surviving
        samples.  ``None`` (default) keeps fail-fast: the first chunk
        error raises.  A policy without a seed inherits the campaign
        seed, so retry backoff jitter is reproducible per campaign.
    retry_quarantined:
        Whether chunks quarantined by a *previous* run of this store
        are re-evaluated (default) or left quarantined and folded
        around.  Only meaningful on the resume path.
    array_backend:
        Optional :mod:`repro.backends` name for the workers' solver
        substrate (CLI ``--array-backend``).  Validated here -- before
        any worker spawns -- and pinned into the scenario options (on a
        copy of the spec), so the selection rides the normal spec
        serialization to workers and into the store manifest.  ``None``
        leaves the spec untouched (scenario options may still name a
        backend; the process default is ``numpy``).

    With a store, the runner first takes the store's exclusive lock
    (``lock.json``) and heartbeats it per completed chunk, so a second
    concurrent ``run_campaign`` on the same path raises
    :class:`CampaignError` instead of interleaving chunk writes; a lock
    left behind by a killed runner is detected as stale and broken.
    """
    if not isinstance(spec, CampaignSpec):
        raise CampaignError(
            f"expected a CampaignSpec, got {type(spec).__name__}"
        )
    if array_backend is not None:
        spec = _pin_array_backend(spec, array_backend)
    if store is not None and not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    if store is None:
        return _run_campaign_locked(
            spec, store, executor, progress, reducer, telemetry, retry,
            retry_quarantined, lock=None,
        )
    lock = store.acquire_lock()
    try:
        return _run_campaign_locked(
            spec, store, executor, progress, reducer, telemetry, retry,
            retry_quarantined, lock=lock,
        )
    finally:
        lock.release()


def _run_campaign_locked(spec, store, executor, progress, reducer,
                         telemetry, retry, retry_quarantined, lock):
    """The body of :func:`run_campaign`, with the store lock (when any)
    already held by the caller."""
    reducer = resolve_reducer(spec, reducer)
    executor = make_executor(executor)
    policy = RetryPolicy.normalize(retry)
    if policy is not None and policy.seed is None:
        policy = policy.replace(seed=spec.seed)
    capture = tracing.enabled() if telemetry is None else bool(telemetry)
    if store is not None:
        store.initialize(
            spec, provenance=_provenance_record(reducer, executor)
        )
        # validate=True: a chunk file torn by a crash (full disk, killed
        # copy) counts as incomplete and is recomputed, not fatal.
        completed = set(store.completed_chunks(validate=True))
        stored_quarantine = store.read_quarantine()
    else:
        completed = set()
        stored_quarantine = {}

    # Quarantine bookkeeping.  ``quarantined`` is this run's view:
    # chunks the reduction will fold *around*.  Previously quarantined
    # chunks are retried by default (they simply stay pending); with
    # ``retry_quarantined=False`` they keep their records and are
    # excluded from evaluation.  Retrying a quarantined chunk without a
    # retry policy still must not kill the run on a repeat failure, so
    # a zero-retry policy (one attempt, failures re-quarantine) is
    # implied in that case.
    quarantined = {}
    if stored_quarantine:
        stale = [index for index in stored_quarantine if index in completed]
        if stale:
            # A chunk cannot be both complete and quarantined; the
            # chunk file wins (a prior resume healed it mid-kill).
            store.discard_quarantined(stale)
            for index in stale:
                stored_quarantine.pop(index)
    if stored_quarantine and not retry_quarantined:
        quarantined = dict(stored_quarantine)
    elif stored_quarantine and policy is None:
        policy = RetryPolicy(max_retries=0, seed=spec.seed)

    def check_reducer_tolerates():
        if quarantined and not reducer.tolerates_missing_samples:
            raise CampaignError(
                f"{len(quarantined)} chunk(s) are quarantined but "
                f"reducer {reducer.kind!r} needs every sample of its "
                "structured design; resume to retry the quarantined "
                "chunks (or fix the model) before reducing"
            )

    check_reducer_tolerates()

    total = spec.num_chunks
    parameters = np.empty((spec.num_samples, spec.dimension))
    checkpointing = store is not None and reducer.checkpointable

    # Restore a matching reduction checkpoint: the reducer continues
    # bit-identically after the folded prefix instead of re-reading it.
    next_fold = 0
    if checkpointing:
        restored = store.read_reducer_state()
        if restored is not None:
            meta, arrays = restored
            folded = meta.get("next_chunk", 0)
            prefix = arrays.get("__parameters__")
            if (meta.get("reducer") == reducer.config_dict()
                    and meta.get("num_chunks") == total
                    and 0 < folded <= total
                    and prefix is not None
                    and prefix.shape
                    == (spec.chunk_indices(folded - 1).stop,
                        spec.dimension)):
                reducer.load_state_dict({
                    key: value for key, value in arrays.items()
                    if key != "__parameters__"
                })
                parameters[:prefix.shape[0]] = prefix
                next_fold = folded

    # Snapshot cadence: every chunk for short campaigns, else ~32 evenly
    # spaced snapshots plus the final one -- a resume re-folds at most
    # one interval from the chunk files (bit-identical by construction),
    # and checkpoint I/O stays linear instead of quadratic in the
    # campaign size.
    checkpoint_interval = max(1, total // 32)

    available = set(completed)
    memory_chunks = {}

    def read_chunk(chunk_index):
        if chunk_index in memory_chunks:
            result = memory_chunks.pop(chunk_index)
            return result.indices, result.parameters, result.outputs
        return store.read_chunk(chunk_index)

    persist_telemetry = capture and store is not None
    run_t0 = time.perf_counter()

    frontier_clean = True

    def fold_frontier():
        nonlocal next_fold, frontier_clean
        fold_events = []
        while next_fold < total and (
                next_fold in available or next_fold in quarantined):
            if next_fold not in available:
                # Quarantined chunk: fold *around* it.  Its samples are
                # excluded from the reduction, but the parameter matrix
                # still gets its deterministically regenerated rows so
                # downstream consumers see the complete design.  From
                # here the folded prefix is no longer contiguous, so
                # reducer-state snapshots stop (a snapshot's
                # ``next_chunk`` must mean "every chunk below is in") --
                # the clean-prefix snapshot already on disk stays valid.
                indices = np.asarray(
                    spec.chunk_indices(next_fold), dtype=int
                )
                parameters[indices] = campaign_parameters(spec, indices)
                frontier_clean = False
                next_fold += 1
                continue
            fold_start = time.perf_counter()
            indices, chunk_parameters, outputs = read_chunk(next_fold)
            reducer.fold(indices, outputs)
            parameters[indices] = chunk_parameters
            if persist_telemetry:
                fold_events.append({
                    "event": "fold",
                    "chunk": next_fold,
                    "wall_s": time.perf_counter() - fold_start,
                })
            next_fold += 1
            if checkpointing and frontier_clean and (
                    next_fold == total
                    or next_fold % checkpoint_interval == 0):
                # Only the folded-prefix rows go into the snapshot (the
                # frontier folds chunks in index order, so the prefix is
                # contiguous); the rest of the matrix is still garbage.
                stop = spec.chunk_indices(next_fold - 1).stop
                store.write_reducer_state(
                    {
                        "reducer": reducer.config_dict(),
                        "num_chunks": total,
                        "next_chunk": next_fold,
                    },
                    {"__parameters__": parameters[:stop],
                     **reducer.state_dict()},
                )
        if fold_events:
            store.append_run_events(fold_events)

    fold_frontier()
    num_evaluated = 0
    chunk_retries = 0
    done = len(completed) + len(quarantined)
    notify = _progress_adapter(progress)
    heartbeat = _Heartbeat(total)

    def pulse(done_chunks):
        """One chunk-completion tick: EWMA heartbeat for the in-process
        callback, ``telemetry/progress.json`` for out-of-process status
        readers, and the store lock's liveness mtime."""
        event = heartbeat.beat(done_chunks)
        if store is not None:
            store.write_progress({
                **event, "event": "progress", "walltime": time.time(),
            })
        if lock is not None:
            lock.heartbeat()
        if notify is not None:
            notify(event)

    if store is not None:
        # Initial snapshot: a pure re-reduce (everything checkpointed,
        # no pending chunks) never beats, but status readers still get
        # an accurate done/total immediately.
        store.write_progress({
            "event": "progress",
            "done": int(done),
            "total": int(total),
            "rate_per_s": 0.0,
            "eta_s": None,
            "wall_s": 0.0,
            "walltime": time.time(),
        })
    telemetry_records = {}
    pending = [
        index for index in range(total)
        if index not in completed and index not in quarantined
    ]
    if persist_telemetry:
        store.append_run_events([{
            "event": "run_start",
            "total_chunks": total,
            "completed_chunks": len(completed),
            "walltime": time.time(),
        }])
    if pending:
        chunks = campaign_chunks(spec, pending)
        for chunk in chunks:
            chunk.capture_telemetry = capture
        for result in _run_chunks(executor, spec.scenario, chunks, policy):
            chunk_retries += max(0, getattr(result, "attempts", 1) - 1)
            if isinstance(result, ChunkFailure):
                failure_record = result.record()
                quarantined[result.chunk_index] = failure_record
                if store is not None:
                    store.quarantine_chunk(
                        result.chunk_index, failure_record
                    )
                if persist_telemetry:
                    store.append_run_events([{
                        "event": "chunk_failed",
                        "chunk": result.chunk_index,
                        "attempts": int(result.attempts),
                        "error": result.error,
                        "samples": int(result.indices.size),
                    }])
                check_reducer_tolerates()
                done += 1
                pulse(done)
                fold_frontier()
                continue
            num_evaluated += result.indices.size
            record = getattr(result, "telemetry", None)
            if record is not None:
                telemetry_records[result.chunk_index] = record
            if store is not None:
                # Telemetry first: a kill between the two writes leaves
                # an orphan event file for a chunk that will be redone,
                # never a completed chunk with missing telemetry.
                if persist_telemetry and record is not None:
                    store.write_chunk_telemetry(
                        result.chunk_index, _chunk_events(record)
                    )
                # The store is the buffer: out-of-order completions wait
                # on disk until the fold frontier reaches them, so a
                # straggler low-index chunk cannot pile later chunks'
                # outputs up in memory.
                store.write_chunk(result)
            else:
                memory_chunks[result.chunk_index] = result
            if result.chunk_index in stored_quarantine:
                # Healed on retry: drop the quarantine record (the
                # chunk file is already on disk, so a kill between the
                # two writes is repaired by the stale-record cleanup on
                # the next resume).
                stored_quarantine.pop(result.chunk_index, None)
                quarantined.pop(result.chunk_index, None)
                store.discard_quarantined([result.chunk_index])
            available.add(result.chunk_index)
            done += 1
            if persist_telemetry:
                complete = {
                    "event": "chunk_complete",
                    "chunk": result.chunk_index,
                    "done": done,
                    "total": total,
                }
                if record is not None:
                    complete["wall_s"] = record["wall_s"]
                    complete["worker"] = record["worker"]
                    if "queue_wait_s" in record:
                        complete["queue_wait_s"] = record["queue_wait_s"]
                store.append_run_events([complete])
            pulse(done)
            fold_frontier()
    if next_fold != total:
        raise CampaignError(
            f"internal error: only {next_fold} of {total} chunks were "
            "folded"
        )

    num_quarantined_samples = int(sum(
        len(record.get("indices", ()))
        for record in quarantined.values()
    ))
    if quarantined and num_quarantined_samples >= spec.num_samples:
        raise CampaignError(
            f"all {spec.num_samples} samples of campaign "
            f"{spec.name!r} were quarantined -- nothing to reduce; see "
            "quarantine.json for the failures"
        )

    result = reducer.finalize(spec, parameters, num_evaluated)
    if quarantined:
        result.quarantine = {
            index: quarantined[index] for index in sorted(quarantined)
        }
    if store is not None:
        summary = result.summary()
        if quarantined and "num_quarantined_chunks" not in summary:
            # Reducers whose summary() predates quarantine still get
            # the counts surfaced in summary.json and reports.
            summary["num_quarantined_chunks"] = len(quarantined)
            summary["num_quarantined_samples"] = num_quarantined_samples
        store.write_summary(summary)
        if persist_telemetry:
            merged = _merged_campaign_metrics(store, telemetry_records)
            if policy is not None or quarantined:
                merged.increment("campaign.chunk_retries", chunk_retries)
                merged.increment(
                    "campaign.chunks_quarantined", len(quarantined)
                )
            store.write_telemetry_metrics(merged.as_dict())
            store.append_run_events([{
                "event": "run_complete",
                "total_chunks": total,
                "num_evaluated": int(num_evaluated),
                "wall_s": time.perf_counter() - run_t0,
            }])
    return result


def resume_campaign(store, executor=None, progress=None, reducer=None,
                    telemetry=None, retry=None, retry_quarantined=True,
                    array_backend=None):
    """Finish the campaign pinned in an existing store.

    Reads the spec from the manifest, evaluates only the missing chunks
    and reduces over all of them -- by construction this reproduces the
    uninterrupted result exactly (restoring a checkpointed reduction
    when one matches).  The reducer defaults to the pinned spec's, so
    resuming a sensitivity store returns a
    :class:`~repro.campaign.sensitivity.SensitivityResult`; pass
    ``reducer=`` to re-reduce the same chunks differently (e.g.
    ``{"kind": "pce", "degree": 4}`` fits the surrogate from existing
    checkpoints without a single fresh solve).

    Chunks quarantined by a previous run are retried by default (and
    un-quarantined when they now succeed); pass
    ``retry_quarantined=False`` to leave them quarantined and reduce
    around them.  ``retry`` takes the same policy values as
    :func:`run_campaign`.

    ``array_backend`` may re-state the backend the store was produced
    under (a no-op); naming a *different* one is refused by the store's
    spec-identity check -- checkpointed chunks carry the numerical
    contract of the backend that wrote them, so finishing a campaign on
    another substrate would silently mix equivalence tiers.
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    if not store.exists():
        raise CampaignError(
            f"no campaign manifest at {store.path!r}; run 'run' first"
        )
    spec = store.load_spec()
    return run_campaign(
        spec, store=store, executor=executor, progress=progress,
        reducer=reducer, telemetry=telemetry, retry=retry,
        retry_quarantined=retry_quarantined, array_backend=array_backend,
    )
