"""Campaign orchestration: sample, execute, checkpoint, reduce, resume.

One :func:`run_campaign` / :func:`resume_campaign` pair serves every
campaign kind: the spec says *what to evaluate*, a registered
:class:`~repro.campaign.executor.Executor` backend says *where*, and a
registered :class:`~repro.campaign.reducer.Reducer` says *what the
evaluations become* (running moments, Jansen Sobol indices, a fitted
PCE surrogate, anything user-registered).

The runner is deliberately executor-agnostic and deterministic:

* parameters come from counter-based per-sample seeding (sample ``i``
  draws from ``SeedSequence(campaign_seed, spawn_key=(i,))``) or a
  seeded full-stream sampler, so the parameter matrix is a pure
  function of the spec -- independent of worker count, chunk completion
  order, and of how often the run was killed and resumed;
* outputs are checkpointed per chunk in the
  :class:`~repro.campaign.store.ArtifactStore`;
* the reduction folds the chunks into the reducer **in chunk-index
  order** (the contiguous frontier folds as soon as its chunks are
  available, regardless of completion order), so every executor and
  every kill/resume history produces bit-identical reductions;
* checkpointable reducers snapshot their state into the store after
  every folded chunk, so a resume restores the reduction itself instead
  of re-folding -- with results identical either way, because the state
  round-trips float64 exactly.
"""

import numpy as np

from ..errors import CampaignError
from ..uq.sampling import map_to_distributions
from . import registry
from .executor import WorkChunk, make_executor
from .reducer import resolve_reducer
from .spec import CampaignSpec
from .store import ArtifactStore


# ----------------------------------------------------------------------
# Deterministic sampling
# ----------------------------------------------------------------------
def unit_sample(seed, sample_index, dimension):
    """Unit-cube point of one sample, independent of every other sample."""
    sequence = np.random.SeedSequence(
        entropy=int(seed), spawn_key=(int(sample_index),)
    )
    return np.random.default_rng(sequence).random(int(dimension))


def campaign_parameters(spec, indices=None):
    """Physical parameter rows for the given global sample indices.

    Delegates the unit-cube layout to ``spec.unit_points`` (plain
    stream/counter sampling for :class:`~repro.campaign.spec.
    CampaignSpec`, Saltelli block composition for
    :class:`~repro.campaign.sensitivity.SensitivitySpec`), so every
    sampler and every campaign flavor yields the same row for the same
    index no matter how the campaign is partitioned.
    """
    if indices is None:
        indices = range(spec.num_samples)
    indices = np.asarray(list(indices), dtype=int)
    if indices.size and (
        indices.min() < 0 or indices.max() >= spec.num_samples
    ):
        raise CampaignError(
            f"sample indices must be in [0, {spec.num_samples}), got "
            f"[{indices.min()}, {indices.max()}]"
        )
    return map_to_distributions(
        spec.unit_points(indices), spec.build_distribution()
    )


def campaign_chunks(spec, chunk_indices=None):
    """:class:`WorkChunk` list for the given (default: all) chunks.

    Full-stream samplers generate the whole deterministic stream once
    and slice it per chunk (regenerating per chunk would cost
    ``O(num_chunks * num_samples)``); counter-based sampling generates
    exactly the requested rows.
    """
    if chunk_indices is None:
        chunk_indices = range(spec.num_chunks)
    full_parameters = None
    if spec.sampler != registry.COUNTER_SAMPLER:
        full_parameters = campaign_parameters(spec)
    chunks = []
    for chunk_index in chunk_indices:
        indices = np.asarray(spec.chunk_indices(chunk_index), dtype=int)
        if full_parameters is not None:
            parameters = full_parameters[indices]
        else:
            parameters = campaign_parameters(spec, indices)
        chunks.append(WorkChunk(chunk_index, indices, parameters))
    return chunks


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
class CampaignResult:
    """Reduced statistics of a completed campaign.

    Attributes
    ----------
    spec:
        The :class:`~repro.campaign.spec.CampaignSpec` that was run.
    statistics:
        The merged :class:`~repro.uq.statistics.RunningStatistics`.
    parameters:
        The full ``(M, d)`` parameter matrix.
    num_evaluated:
        Samples evaluated by *this* call (0 when everything was already
        checkpointed -- a pure re-reduce).
    """

    def __init__(self, spec, statistics, parameters, num_evaluated):
        self.spec = spec
        self.statistics = statistics
        self.parameters = parameters
        self.num_evaluated = int(num_evaluated)

    @property
    def num_samples(self):
        return self.statistics.count

    @property
    def mean(self):
        return self.statistics.mean

    @property
    def std(self):
        return self.statistics.std()

    @property
    def minimum(self):
        return self.statistics.minimum

    @property
    def maximum(self):
        return self.statistics.maximum

    def error(self):
        """The paper's eq. (6): ``sigma_MC / sqrt(M)`` per output entry."""
        return self.statistics.standard_error()

    def summary(self):
        """JSON-serializable scalars for reports and ``summary.json``."""
        mean = self.mean
        std = self.std
        hottest = int(np.argmax(mean))
        return {
            "campaign": self.spec.name,
            "problem": self.spec.scenario.problem,
            "qoi": self.spec.scenario.qoi,
            "num_samples": int(self.num_samples),
            "num_chunks": int(self.spec.num_chunks),
            "output_size": int(mean.size),
            "mean_max": float(np.max(mean)),
            "mean_min": float(np.min(mean)),
            "std_max": float(np.max(std)),
            "error_mc_max": float(np.max(self.error())),
            "argmax_output": hottest,
        }

    def __repr__(self):
        return (
            f"CampaignResult({self.spec.name!r}, M={self.num_samples}, "
            f"output_shape={np.shape(self.statistics.mean)})"
        )


# ----------------------------------------------------------------------
# Run / resume
# ----------------------------------------------------------------------
def _provenance_record(reducer, executor):
    """Manifest provenance: who produced this store, with what."""
    import repro

    return {
        "package": "repro-date16",
        "package_version": getattr(repro, "__version__", "unknown"),
        "reducer": reducer.kind,
        "executor": getattr(executor, "name", type(executor).__name__),
    }


def run_campaign(spec, store=None, executor=None, progress=None,
                 reducer=None):
    """Run (or finish) a campaign of any kind and return its result.

    The one execution/reduction path of the campaign engine: evaluates
    every not-yet-checkpointed chunk through the executor backend and
    folds all chunks into the reducer in chunk-index order -- folding
    the contiguous frontier as soon as its chunks are available, and
    (for checkpointable reducers with a store) snapshotting the
    reduction state after every fold so a resume restores the reduction
    rather than re-folding.  The result object is reducer-specific:
    :class:`CampaignResult` for ``"moments"``,
    :class:`~repro.campaign.sensitivity.SensitivityResult` for
    ``"jansen"``, :class:`~repro.campaign.reducer.SurrogateResult` for
    ``"pce"``.

    Parameters
    ----------
    spec:
        Any :class:`~repro.campaign.spec.CampaignSpec` (including
        :class:`~repro.campaign.sensitivity.SensitivitySpec`).
    store:
        Optional :class:`~repro.campaign.store.ArtifactStore` (or path);
        when given, completed chunks are checkpointed there and already
        checkpointed chunks are *not* recomputed -- calling
        ``run_campaign`` on a partially filled store is the resume path.
        Without a store, everything is kept in memory (no resume).
    executor:
        A registered backend name (``"serial"`` default, ``"process"``,
        ``"thread"``, or anything added via
        :func:`~repro.campaign.executor.register_backend`) or an
        :class:`~repro.campaign.executor.Executor` instance.
    progress:
        Optional ``progress(done_chunks, total_chunks)`` callback, called
        after every chunk completion.
    reducer:
        A :class:`~repro.campaign.reducer.Reducer` instance, a kind name,
        or a ``{"kind": ..., **options}`` dict; ``None`` falls back to
        the spec's ``reducer`` field and then to the spec kind's default
        (``"moments"`` / ``"jansen"``).
    """
    if not isinstance(spec, CampaignSpec):
        raise CampaignError(
            f"expected a CampaignSpec, got {type(spec).__name__}"
        )
    reducer = resolve_reducer(spec, reducer)
    executor = make_executor(executor)
    if store is not None and not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    if store is not None:
        store.initialize(
            spec, provenance=_provenance_record(reducer, executor)
        )
        completed = set(store.completed_chunks())
    else:
        completed = set()

    total = spec.num_chunks
    parameters = np.empty((spec.num_samples, spec.dimension))
    checkpointing = store is not None and reducer.checkpointable

    # Restore a matching reduction checkpoint: the reducer continues
    # bit-identically after the folded prefix instead of re-reading it.
    next_fold = 0
    if checkpointing:
        restored = store.read_reducer_state()
        if restored is not None:
            meta, arrays = restored
            folded = meta.get("next_chunk", 0)
            prefix = arrays.get("__parameters__")
            if (meta.get("reducer") == reducer.config_dict()
                    and meta.get("num_chunks") == total
                    and 0 < folded <= total
                    and prefix is not None
                    and prefix.shape
                    == (spec.chunk_indices(folded - 1).stop,
                        spec.dimension)):
                reducer.load_state_dict({
                    key: value for key, value in arrays.items()
                    if key != "__parameters__"
                })
                parameters[:prefix.shape[0]] = prefix
                next_fold = folded

    # Snapshot cadence: every chunk for short campaigns, else ~32 evenly
    # spaced snapshots plus the final one -- a resume re-folds at most
    # one interval from the chunk files (bit-identical by construction),
    # and checkpoint I/O stays linear instead of quadratic in the
    # campaign size.
    checkpoint_interval = max(1, total // 32)

    available = set(completed)
    memory_chunks = {}

    def read_chunk(chunk_index):
        if chunk_index in memory_chunks:
            result = memory_chunks.pop(chunk_index)
            return result.indices, result.parameters, result.outputs
        return store.read_chunk(chunk_index)

    def fold_frontier():
        nonlocal next_fold
        while next_fold < total and next_fold in available:
            indices, chunk_parameters, outputs = read_chunk(next_fold)
            reducer.fold(indices, outputs)
            parameters[indices] = chunk_parameters
            next_fold += 1
            if checkpointing and (
                    next_fold == total
                    or next_fold % checkpoint_interval == 0):
                # Only the folded-prefix rows go into the snapshot (the
                # frontier folds chunks in index order, so the prefix is
                # contiguous); the rest of the matrix is still garbage.
                stop = spec.chunk_indices(next_fold - 1).stop
                store.write_reducer_state(
                    {
                        "reducer": reducer.config_dict(),
                        "num_chunks": total,
                        "next_chunk": next_fold,
                    },
                    {"__parameters__": parameters[:stop],
                     **reducer.state_dict()},
                )

    fold_frontier()
    num_evaluated = 0
    done = len(completed)
    pending = [index for index in range(total) if index not in completed]
    if pending:
        chunks = campaign_chunks(spec, pending)
        for result in executor.run_chunks(spec.scenario, chunks):
            num_evaluated += result.indices.size
            if store is not None:
                # The store is the buffer: out-of-order completions wait
                # on disk until the fold frontier reaches them, so a
                # straggler low-index chunk cannot pile later chunks'
                # outputs up in memory.
                store.write_chunk(result)
            else:
                memory_chunks[result.chunk_index] = result
            available.add(result.chunk_index)
            done += 1
            if progress is not None:
                progress(done, total)
            fold_frontier()
    if next_fold != total:
        raise CampaignError(
            f"internal error: only {next_fold} of {total} chunks were "
            "folded"
        )

    result = reducer.finalize(spec, parameters, num_evaluated)
    if store is not None:
        store.write_summary(result.summary())
    return result


def resume_campaign(store, executor=None, progress=None, reducer=None):
    """Finish the campaign pinned in an existing store.

    Reads the spec from the manifest, evaluates only the missing chunks
    and reduces over all of them -- by construction this reproduces the
    uninterrupted result exactly (restoring a checkpointed reduction
    when one matches).  The reducer defaults to the pinned spec's, so
    resuming a sensitivity store returns a
    :class:`~repro.campaign.sensitivity.SensitivityResult`; pass
    ``reducer=`` to re-reduce the same chunks differently (e.g.
    ``{"kind": "pce", "degree": 4}`` fits the surrogate from existing
    checkpoints without a single fresh solve).
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    if not store.exists():
        raise CampaignError(
            f"no campaign manifest at {store.path!r}; run 'run' first"
        )
    spec = store.load_spec()
    return run_campaign(
        spec, store=store, executor=executor, progress=progress,
        reducer=reducer,
    )
