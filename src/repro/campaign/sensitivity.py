"""Distributed Sobol sensitivity campaigns (Saltelli designs at scale).

The paper's Section I question -- which wire's geometric uncertainty
drives the hottest-wire temperature variance -- costs ``M (d + 2)`` full
transient solves; separating parameter *interactions* adds one ``AB_ij``
block per pair and grouped-factor questions one block per group.  This
module lays the Saltelli ``A`` / ``B`` / ``AB_i`` / ``AB_ij`` / group
blocks out as a first-class campaign so those evaluations stream through
the existing executor / artifact-store machinery: per-worker model and
factorization reuse, atomic chunk checkpoints, kill/resume.

Determinism is the load-bearing property.  The design is a pure function
of the spec: global evaluation index ``g`` maps to ``(block, row) =
divmod(g, M)`` with blocks ordered ``[A, B, AB_0 .. AB_{d-1}]`` (then
pairs, then groups), and the base matrices come from the seeded sampler
stream -- so any executor, chunking or resume history reproduces the
same parameter rows, and the Jansen reduction (the
:class:`repro.uq.sensitivity.StreamingJansenAccumulator` core shared
with the in-process path) reproduces the same indices bit for bit,
whether it folds chunk by chunk (the streaming mode -- huge vector QoIs
never materialize the full output matrix) or reduces the assembled
matrix in memory.  Vector-valued quantities of interest (per-wire
temperature traces, not just the scalar end-max) reduce per output
component; bootstrap confidence intervals are deterministic per seed.

Since the Reducer/ExecutorBackend redesign, the reduction itself lives
in :class:`repro.campaign.reducer.JansenReducer` and the one
:func:`~repro.campaign.runner.run_campaign` path serves sensitivity
campaigns too; this module keeps the design layout
(:class:`SaltelliPlan`), the spec (:class:`SensitivitySpec`), the
result type (:class:`SensitivityResult`), and thin deprecation shims
for the historic ``run/resume_sensitivity_campaign`` entry points.
"""

import warnings

import numpy as np

from ..errors import CampaignError, SamplingError
from ..uq import sensitivity as uq_sensitivity
from . import registry
from .spec import CampaignSpec
from .store import ArtifactStore


class SaltelliPlan:
    """Deterministic block/row layout of a Saltelli design.

    Global evaluation index ``g`` decomposes as ``(block, row) =
    divmod(g, M)`` with blocks ordered ``[A, B, AB_0, ..., AB_{d-1}]``
    followed by the optional extensions: one ``AB_ij`` block per column
    pair (``second_order=True``, lexicographic order) and one ``G_k``
    block per factor group.  Every non-``A``/``B`` block is "``A`` with
    a column subset taken from ``B``" -- first-order blocks swap one
    column, pair blocks two, group blocks the whole subset.  The plan is
    pure index arithmetic plus row composition -- it owns no random
    state, so any executor or chunk order reproduces the same design
    from the same base matrices, and a plan without extensions is
    byte-compatible with the original ``M (d + 2)`` layout.
    """

    def __init__(self, num_base_samples, dimension, second_order=False,
                 groups=None):
        self.num_base_samples = int(num_base_samples)
        self.dimension = int(dimension)
        if self.num_base_samples < 2:
            raise CampaignError(
                f"need at least 2 base samples, got {self.num_base_samples}"
            )
        if self.dimension < 1:
            raise CampaignError(
                f"dimension must be >= 1, got {self.dimension}"
            )
        self.second_order = bool(second_order)
        self.pairs = (
            uq_sensitivity.all_pairs(self.dimension)
            if self.second_order else []
        )
        try:
            self.groups = uq_sensitivity.normalize_groups(
                groups or [], self.dimension
            )
        except SamplingError as exc:
            raise CampaignError(f"invalid factor groups: {exc}") from exc
        #: Column subset each swap block copies from ``B`` (block
        #: ``2 + k`` swaps ``_swaps[k]``).
        self._swaps = (
            [(i,) for i in range(self.dimension)]
            + self.pairs
            + list(self.groups)
        )

    @property
    def num_pairs(self):
        """Number of ``AB_ij`` second-order blocks."""
        return len(self.pairs)

    @property
    def num_groups(self):
        """Number of grouped-factor blocks."""
        return len(self.groups)

    @property
    def num_blocks(self):
        """``A``, ``B``, the ``AB_i`` and any ``AB_ij``/group blocks."""
        return 2 + len(self._swaps)

    @property
    def num_evaluations(self):
        """Total model evaluations ``M (d + 2 + pairs + groups)``."""
        return self.num_base_samples * self.num_blocks

    def block_of(self, index):
        """Block number (0 = ``A``, 1 = ``B``, ``2 + i`` = ``AB_i``)."""
        index = self._check_index(index)
        return index // self.num_base_samples

    def row_of(self, index):
        """Base-design row in ``[0, M)`` of one global index."""
        index = self._check_index(index)
        return index % self.num_base_samples

    def block_range(self, block):
        """Global index range of one block."""
        block = self._check_block(block)
        start = block * self.num_base_samples
        return range(start, start + self.num_base_samples)

    @property
    def swap_subsets(self):
        """Column subset of every swap block, in block order (the
        layout contract shared with the streaming accumulator)."""
        return list(self._swaps)

    def swap_columns(self, block):
        """Columns block ``block`` copies from ``B`` (``A`` swaps none,
        ``B`` swaps all)."""
        block = self._check_block(block)
        if block == 0:
            return ()
        if block == 1:
            return tuple(range(self.dimension))
        return tuple(self._swaps[block - 2])

    def block_label(self, block):
        """Block name (``"A"``, ``"B"``, ``"AB_3"``, ``"AB_1_4"``,
        ``"G0"``)."""
        block = self._check_block(block)
        if block == 0:
            return "A"
        if block == 1:
            return "B"
        subset = block - 2
        if subset < self.dimension:
            return f"AB_{subset}"
        if subset < self.dimension + self.num_pairs:
            i, j = self.pairs[subset - self.dimension]
            return f"AB_{i}_{j}"
        return f"G{subset - self.dimension - self.num_pairs}"

    def compose(self, base_unit, indices):
        """Design rows for global ``indices`` from the base unit matrix.

        ``base_unit`` is the ``(2 M, d)`` stream: rows ``[0, M)`` are
        ``A``, rows ``[M, 2 M)`` are ``B``.  Swap-block rows are ``A``
        rows with the block's column subset taken from ``B`` -- copied
        bitwise, which is what makes the distributed design reproduce
        the in-process :func:`repro.uq.sensitivity.saltelli_sample`
        exactly.
        """
        base = np.asarray(base_unit, dtype=float)
        expected = (2 * self.num_base_samples, self.dimension)
        if base.shape != expected:
            raise CampaignError(
                f"base unit matrix has shape {base.shape}, expected "
                f"{expected}"
            )
        a = base[:self.num_base_samples]
        b = base[self.num_base_samples:]
        indices = np.asarray(indices, dtype=int)
        points = np.empty((indices.size, self.dimension))
        for out, global_index in enumerate(indices):
            block, row = divmod(
                self._check_index(global_index), self.num_base_samples
            )
            if block == 0:
                points[out] = a[row]
            elif block == 1:
                points[out] = b[row]
            else:
                columns = list(self._swaps[block - 2])
                points[out] = a[row]
                points[out, columns] = b[row, columns]
        return points

    def _check_index(self, index):
        index = int(index)
        if not 0 <= index < self.num_evaluations:
            raise CampaignError(
                f"evaluation index {index} out of range "
                f"[0, {self.num_evaluations})"
            )
        return index

    def _check_block(self, block):
        block = int(block)
        if not 0 <= block < self.num_blocks:
            raise CampaignError(
                f"block {block} out of range [0, {self.num_blocks})"
            )
        return block

    def to_dict(self):
        data = {
            "num_base_samples": self.num_base_samples,
            "dimension": self.dimension,
        }
        # Extensions serialize only when present, so plans without them
        # stay byte-compatible with pre-second-order manifests.
        if self.second_order:
            data["second_order"] = True
        if self.groups:
            data["groups"] = [list(group) for group in self.groups]
        return data

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        unknown = set(data) - {"num_base_samples", "dimension",
                               "second_order", "groups"}
        if unknown:
            raise CampaignError(
                f"Saltelli plan got unknown fields {sorted(unknown)}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise CampaignError(f"invalid Saltelli plan: {exc}") from exc

    def __repr__(self):
        extras = ""
        if self.second_order:
            extras += f", pairs={self.num_pairs}"
        if self.groups:
            extras += f", groups={self.num_groups}"
        return (
            f"SaltelliPlan(M={self.num_base_samples}, "
            f"d={self.dimension}{extras}, "
            f"evaluations={self.num_evaluations})"
        )


class SensitivitySpec(CampaignSpec):
    """A Sobol sensitivity campaign: scenario + Saltelli sampling plan.

    Inherits the :class:`~repro.campaign.spec.CampaignSpec` fields, but
    the sample budget is ``num_base_samples`` (``M``) and the derived
    ``num_samples`` is the full ``M (d + 2 + pairs + groups)``
    evaluation count (``second_order=True`` adds every ``AB_ij`` pair
    block, ``groups`` one block per factor group), so chunking,
    executors and the artifact store work unchanged.  The
    default sampler is ``"random"``, which reproduces the in-process
    :func:`repro.uq.sensitivity.sobol_indices` bit for bit for the same
    seed; the ``"counter"`` sampler and the QMC streams work too (base
    row ``r`` of ``A`` / ``B`` is stream row ``r`` / ``M + r``).
    """

    kind = "sensitivity"

    default_reducer_kind = "jansen"

    def __init__(self, name, scenario, distribution, dimension,
                 num_base_samples, seed=0, chunk_size=8, sampler="random",
                 num_bootstrap=100, confidence=0.95, second_order=False,
                 groups=None, reducer=None):
        self.num_base_samples = int(num_base_samples)
        # Reduction settings live in the spec (and hence the pinned
        # manifest), so a resume without flags reproduces the original
        # run's confidence intervals exactly, not just the indices.
        self.num_bootstrap = int(num_bootstrap)
        self.confidence = float(confidence)
        if self.num_bootstrap < 0:
            raise CampaignError(
                f"num_bootstrap must be >= 0, got {self.num_bootstrap}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise CampaignError(
                f"confidence must be in (0, 1), got {self.confidence!r}"
            )
        self.second_order = bool(second_order)
        plan = SaltelliPlan(
            self.num_base_samples, int(dimension),
            second_order=self.second_order, groups=groups,
        )
        self.groups = plan.groups
        super().__init__(
            name, scenario, distribution, dimension,
            num_samples=plan.num_evaluations, seed=seed,
            chunk_size=chunk_size, sampler=sampler, reducer=reducer,
        )

    @property
    def plan(self):
        """The :class:`SaltelliPlan` laying out this campaign's design."""
        return SaltelliPlan(
            self.num_base_samples, self.dimension,
            second_order=self.second_order, groups=self.groups,
        )

    def base_unit_points(self):
        """The ``(2 M, d)`` unit-cube base stream (``A`` rows, then ``B``).

        For the ``"random"`` sampler this is exactly the stream of
        :func:`repro.uq.sensitivity.saltelli_sample` -- the bit-for-bit
        equivalence anchor of the distributed path.
        """
        count = 2 * self.num_base_samples
        if self.sampler == registry.COUNTER_SAMPLER:
            from .runner import unit_sample

            return np.stack(
                [unit_sample(self.seed, index, self.dimension)
                 for index in range(count)]
            )
        sampler = registry.get_stream_sampler(self.sampler)
        return np.asarray(
            sampler(count, self.dimension, seed=self.seed), dtype=float
        )

    def unit_points(self, indices):
        """Saltelli design rows for the given global evaluation indices.

        Stream samplers compose from the full base stream; the counter
        sampler generates only the base rows the requested indices
        actually touch (memoized per call), so per-chunk generation
        stays O(chunk) instead of O(2 M) -- with bit-identical rows
        either way.
        """
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return np.empty((0, self.dimension))
        plan = self.plan
        if self.sampler != registry.COUNTER_SAMPLER:
            return plan.compose(self.base_unit_points(), indices)
        from .runner import unit_sample

        cache = {}

        def base_row(stream_index):
            if stream_index not in cache:
                cache[stream_index] = unit_sample(
                    self.seed, stream_index, self.dimension
                )
            return cache[stream_index]

        m = self.num_base_samples
        points = np.empty((indices.size, self.dimension))
        for out, global_index in enumerate(indices):
            block = plan.block_of(global_index)
            row = plan.row_of(global_index)
            if block == 1:
                points[out] = base_row(m + row)
            else:
                points[out] = base_row(row)
                if block >= 2:
                    columns = list(plan.swap_columns(block))
                    points[out, columns] = base_row(m + row)[columns]
        return points

    def to_dict(self):
        data = {
            "kind": self.kind,
            "name": self.name,
            "scenario": self.scenario.to_dict(),
            "distribution": self.distribution,
            "dimension": self.dimension,
            "num_base_samples": self.num_base_samples,
            "seed": self.seed,
            "chunk_size": self.chunk_size,
            "sampler": self.sampler,
            "num_bootstrap": self.num_bootstrap,
            "confidence": self.confidence,
        }
        # Second-order / group / reducer options serialize only when
        # enabled, so specs without them stay byte-compatible with PR-2
        # manifests (and PR-2 stores load here unchanged).
        if self.second_order:
            data["second_order"] = True
        if self.groups:
            data["groups"] = [list(group) for group in self.groups]
        if self.reducer is not None:
            data["reducer"] = dict(self.reducer)
        return data

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        spec_kind = data.pop("kind", None)
        if spec_kind not in (None, cls.kind):
            raise CampaignError(
                f"expected campaign kind {cls.kind!r}, got {spec_kind!r}"
            )
        missing = {"name", "scenario", "distribution", "dimension",
                   "num_base_samples"} - set(data)
        if missing:
            raise CampaignError(
                f"sensitivity spec is missing fields {sorted(missing)}"
            )
        unknown = set(data) - {"name", "scenario", "distribution",
                               "dimension", "num_base_samples", "seed",
                               "chunk_size", "sampler", "num_bootstrap",
                               "confidence", "second_order", "groups",
                               "reducer"}
        if unknown:
            raise CampaignError(
                f"sensitivity spec got unknown fields {sorted(unknown)}"
            )
        return cls(**data)

    def __repr__(self):
        return (
            f"SensitivitySpec({self.name!r}, problem="
            f"{self.scenario.problem!r}, M={self.num_base_samples}, "
            f"d={self.dimension}, evaluations={self.num_samples}, "
            f"chunks={self.num_chunks})"
        )


class SensitivityResult:
    """Reduced Sobol indices of a completed sensitivity campaign.

    Attributes
    ----------
    spec:
        The :class:`SensitivitySpec` that was run.
    indices:
        The :class:`~repro.uq.sensitivity.SobolIndices` (``(d,)`` arrays
        for scalar QoIs, ``(d, *output_shape)`` for vector-valued ones).
    interval:
        Bootstrap :class:`~repro.uq.sensitivity.BootstrapInterval`, or
        ``None`` when the run disabled it.
    parameters:
        The full ``(M (d + 2 + pairs + groups), d)`` evaluated parameter
        matrix.
    num_evaluated:
        Evaluations performed by *this* call (0 for a pure re-reduce).
    second_order:
        :class:`~repro.uq.sensitivity.SecondOrderIndices` when the spec
        enabled ``second_order``, else ``None``.
    group_indices:
        :class:`~repro.uq.sensitivity.GroupIndices` when the spec named
        factor groups, else ``None``.
    streamed:
        Whether the reduction streamed per chunk (never materializing
        the full output matrix) instead of assembling it in memory.
    """

    def __init__(self, spec, indices, interval, parameters, num_evaluated,
                 second_order=None, group_indices=None, streamed=False):
        self.spec = spec
        self.indices = indices
        self.interval = interval
        self.parameters = parameters
        self.num_evaluated = int(num_evaluated)
        self.second_order = second_order
        self.group_indices = group_indices
        self.streamed = bool(streamed)

    @property
    def first_order(self):
        return self.indices.first_order

    @property
    def total(self):
        return self.indices.total

    @property
    def variance(self):
        return self.indices.variance

    def ranking(self, component=None):
        """Inputs by decreasing total index (see ``SobolIndices.ranking``)."""
        return self.indices.ranking(component=component)

    def _report_component(self):
        """Flat output index the summary reports: the max-variance entry.

        For vector QoIs (e.g. per-wire end temperatures) this is the
        hottest -- most variance-carrying -- output, the paper's
        quantity of interest; for scalar QoIs it is the only entry.
        """
        variance = np.atleast_1d(np.asarray(self.indices.variance))
        return int(np.argmax(variance.ravel()))

    def summary(self):
        """JSON-serializable summary: ranked indices at the max-variance
        output component, plus the campaign bookkeeping scalars."""
        component = self._report_component()
        dimension = self.spec.dimension
        first = self.indices.first_order.reshape(dimension, -1)[:, component]
        total = self.indices.total.reshape(dimension, -1)[:, component]
        clipped = self.indices.clipped.reshape(dimension, -1)[:, component]
        variance = np.atleast_1d(np.asarray(self.indices.variance)).ravel()
        summary = {
            "kind": "sensitivity",
            "campaign": self.spec.name,
            "problem": self.spec.scenario.problem,
            "qoi": self.spec.scenario.qoi,
            "sampler": self.spec.sampler,
            "num_base_samples": int(self.spec.num_base_samples),
            "dimension": int(dimension),
            "num_evaluations": int(self.indices.num_evaluations),
            "num_chunks": int(self.spec.num_chunks),
            "output_size": int(variance.size),
            "argmax_output": component,
            "variance": float(variance[component]),
            "first_order": [float(value) for value in first],
            "total": [float(value) for value in total],
            "clipped_first_order": [bool(flag) for flag in clipped],
            "ranking": [int(i) for i in np.argsort(-total)],
        }
        if self.second_order is not None:
            second = self.second_order
            num_pairs = second.num_pairs
            closed = second.closed.reshape(num_pairs, -1)[:, component]
            interaction = second.interaction.reshape(
                num_pairs, -1
            )[:, component]
            pair_total = second.total.reshape(num_pairs, -1)[:, component]
            summary["pairs"] = [[int(i), int(j)] for i, j in second.pairs]
            summary["closed_second_order"] = [float(v) for v in closed]
            summary["second_order"] = [float(v) for v in interaction]
            summary["pair_total"] = [float(v) for v in pair_total]
            summary["interaction_ranking"] = [
                int(p) for p in np.argsort(-interaction)
            ]
        if self.group_indices is not None:
            group = self.group_indices
            num_groups = group.num_groups
            group_closed = group.closed.reshape(
                num_groups, -1
            )[:, component]
            group_total = group.total.reshape(num_groups, -1)[:, component]
            summary["groups"] = [list(g) for g in group.groups]
            summary["group_closed"] = [float(v) for v in group_closed]
            summary["group_total"] = [float(v) for v in group_total]
            summary["group_ranking"] = [
                int(g) for g in np.argsort(-group_total)
            ]
        if self.interval is not None:
            for name in ("first_order_lower", "first_order_upper",
                         "total_lower", "total_upper"):
                bound = getattr(self.interval, name)
                bound = bound.reshape(dimension, -1)[:, component]
                summary[name] = [float(value) for value in bound]
            if self.interval.has_second_order:
                for name in ("closed_second_order_lower",
                             "closed_second_order_upper",
                             "second_order_lower", "second_order_upper"):
                    bound = getattr(self.interval, name)
                    bound = bound.reshape(
                        bound.shape[0], -1
                    )[:, component]
                    summary[name] = [float(value) for value in bound]
            if self.interval.has_groups:
                for name in ("group_closed_lower", "group_closed_upper",
                             "group_total_lower", "group_total_upper"):
                    bound = getattr(self.interval, name)
                    bound = bound.reshape(
                        bound.shape[0], -1
                    )[:, component]
                    summary[name] = [float(value) for value in bound]
            summary["bootstrap_replicates"] = self.interval.num_replicates
            summary["confidence"] = self.interval.confidence
        return summary

    def __repr__(self):
        return (
            f"SensitivityResult({self.spec.name!r}, "
            f"M={self.spec.num_base_samples}, d={self.spec.dimension}, "
            f"ranking={self.ranking(component=self._report_component())})"
        )


# ----------------------------------------------------------------------
# Deprecation shims: the unified runner + JansenReducer replaced the
# dedicated sensitivity run/resume entry points.
# ----------------------------------------------------------------------
_DEPRECATION_EMITTED = set()


def _warn_deprecated(name, replacement):
    """Emit the deprecation warning for ``name`` exactly once per
    process (re-triggerable in tests via ``_reset_deprecation_warnings``)."""
    if name in _DEPRECATION_EMITTED:
        return
    _DEPRECATION_EMITTED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} -- the unified "
        "campaign path reproduces it bit for bit",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_deprecation_warnings():
    """Testing hook: make the once-per-process warnings fire again."""
    _DEPRECATION_EMITTED.clear()


def run_sensitivity_campaign(spec, store=None, executor=None, progress=None,
                             num_bootstrap=None, confidence=None,
                             streaming=None):
    """Deprecated shim over the unified campaign path.

    Equivalent to ``run_campaign(spec, ..., reducer=JansenReducer(spec,
    num_bootstrap=..., confidence=..., streaming=...))`` and reproduces
    the historic results bit for bit: the Jansen reduction, the seeded
    bootstrap intervals and the streaming/in-memory selection logic all
    moved into :class:`~repro.campaign.reducer.JansenReducer` unchanged.
    ``num_bootstrap`` / ``confidence`` override the spec's persisted
    bootstrap settings for this reduction only; ``streaming`` picks the
    reduction strategy (default: stream exactly when the bootstrap is
    off).
    """
    from .reducer import JansenReducer
    from .runner import run_campaign

    _warn_deprecated("run_sensitivity_campaign",
                     "run_campaign (reducer='jansen')")
    if not isinstance(spec, SensitivitySpec):
        raise CampaignError(
            f"expected a SensitivitySpec, got {type(spec).__name__} "
            "(plain campaigns go through run_campaign)"
        )
    reducer = JansenReducer(spec, num_bootstrap=num_bootstrap,
                            confidence=confidence, streaming=streaming)
    return run_campaign(spec, store=store, executor=executor,
                        progress=progress, reducer=reducer)


def resume_sensitivity_campaign(store, executor=None, progress=None,
                                num_bootstrap=None, confidence=None,
                                streaming=None):
    """Deprecated shim over the unified resume path.

    Equivalent to :func:`~repro.campaign.runner.resume_campaign` on a
    sensitivity store (which dispatches on the pinned spec's kind), with
    the same reduction overrides as :func:`run_sensitivity_campaign`.
    """
    from .reducer import JansenReducer
    from .runner import run_campaign

    _warn_deprecated("resume_sensitivity_campaign", "resume_campaign")
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    if not store.exists():
        raise CampaignError(
            f"no campaign manifest at {store.path!r}; run 'sobol run' first"
        )
    spec = store.load_spec()
    if not isinstance(spec, SensitivitySpec):
        raise CampaignError(
            f"store at {store.path!r} pins a {spec.kind!r} campaign, not "
            "a sensitivity campaign (use resume_campaign)"
        )
    reducer = JansenReducer(spec, num_bootstrap=num_bootstrap,
                            confidence=confidence, streaming=streaming)
    return run_campaign(spec, store=store, executor=executor,
                        progress=progress, reducer=reducer)
