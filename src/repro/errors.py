"""Exception hierarchy for the repro library.

Every error raised intentionally by this library derives from
:class:`ReproError` so that callers can catch library errors without also
swallowing programming mistakes such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GridError(ReproError):
    """Invalid grid definition (non-monotone coordinates, too few nodes...)."""


class MaterialError(ReproError):
    """Invalid material definition or property evaluation failure."""


class AssemblyError(ReproError):
    """System assembly failed (shape mismatch, unknown region, ...)."""


class BoundaryConditionError(ReproError):
    """Inconsistent or conflicting boundary conditions."""


class SolverError(ReproError):
    """A linear or nonlinear solve failed to produce a usable solution."""


class ConvergenceError(SolverError):
    """An iterative method exhausted its iteration budget without converging."""

    def __init__(self, message, iterations=None, residual=None):
        super().__init__(message)
        #: Number of iterations performed before giving up (may be ``None``).
        self.iterations = iterations
        #: Last residual norm observed (may be ``None``).
        self.residual = residual


class BondWireError(ReproError):
    """Invalid bonding wire definition (non-positive length, bad nodes...)."""


class CircuitError(ReproError):
    """Invalid netlist or a singular circuit system."""


class DistributionError(ReproError):
    """Invalid probability distribution parameters or fitting failure."""


class SamplingError(ReproError):
    """Invalid sampling request (non-positive sample count, dimension...)."""


class PackageLayoutError(ReproError):
    """Invalid chip package layout description."""


class MeasurementError(ReproError):
    """Invalid measurement dataset."""


class CampaignError(ReproError):
    """Invalid campaign specification, store state or executor failure."""


class ChunkEvaluationError(CampaignError):
    """A chunk's model evaluation raised, with full campaign context.

    Wraps whatever the model raised so the surfaced message names the
    chunk index, the global sample indices and the worker label instead
    of a bare model traceback.  Crosses process boundaries intact: the
    extra context rides in :meth:`__reduce__`, so a failure raised in a
    pool worker reaches the parent with ``chunk_index`` /
    ``sample_indices`` / ``worker`` / ``cause_repr`` /
    ``cause_traceback`` attributes populated.
    """

    def __init__(self, message, chunk_index=None, sample_indices=None,
                 worker=None, cause_repr=None, cause_traceback=None):
        super().__init__(message)
        self.chunk_index = chunk_index
        self.sample_indices = (
            None if sample_indices is None else tuple(sample_indices)
        )
        self.worker = worker
        self.cause_repr = cause_repr
        self.cause_traceback = cause_traceback

    def __reduce__(self):
        return (
            type(self),
            (str(self), self.chunk_index, self.sample_indices,
             self.worker, self.cause_repr, self.cause_traceback),
        )


class TelemetryError(ReproError):
    """Invalid telemetry event, metric operation or event-log state."""


class ServiceError(ReproError):
    """Invalid service request, job state or queue operation."""
