"""Second-order & grouped Sobol campaigns, checked against ground truth.

First-order indices say which wire drives the variance; they cannot say
whether two wires *interact*.  This example runs a second-order
sensitivity campaign -- the Saltelli design extended with one ``AB_ij``
block per pair and grouped-factor blocks -- on the Ishigami function,
whose Sobol indices of every order are known in closed form, and prints
the estimates next to the analytic truth (the only non-zero interaction
is S_13).  The reduction streams: each checkpointed chunk folds into
running Jansen sums, so the full output matrix never materializes, with
bit-identical indices.

Run with:  python examples/second_order_campaign.py [base_samples] [workers]

The same flags drive the paper's 12-wire problem (66 pair blocks,
M (12 + 2 + 66) coupled transients -- size M to your budget)::

    repro-campaign sobol spec date16 --samples 64 --second-order \\
        --groups "0,1,2,3,4,5;6,7,8,9,10,11" -o sobol2.json
    repro-campaign sobol run sobol2.json --store sens2/ \\
        --executor process --workers 4 --streaming
    repro-campaign sobol report sens2/
"""

import sys
import tempfile

import numpy as np

from repro.campaign import (
    ParallelExecutor,
    ScenarioSpec,
    SensitivitySpec,
    run_campaign,
)
from repro.reporting.sensitivity import format_sensitivity_summary
from repro.uq.analytic import ishigami_distribution, ishigami_indices


def main():
    num_base_samples = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    num_workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    groups = [[0, 2], [1]]
    spec = SensitivitySpec(
        name=f"ishigami-sobol2-{num_base_samples}",
        scenario=ScenarioSpec(problem="ishigami", module="repro.uq.analytic"),
        distribution=ishigami_distribution(),
        dimension=3,
        num_base_samples=num_base_samples,
        seed=0,
        chunk_size=max(1, num_base_samples // 2),
        sampler="random",
        second_order=True,
        groups=groups,
        num_bootstrap=200,
    )
    print(
        f"Second-order campaign: M={num_base_samples}, d=3 -> "
        f"{spec.num_samples} evaluations "
        f"({spec.plan.num_pairs} pair blocks, "
        f"{spec.plan.num_groups} group blocks) on {num_workers} workers..."
    )
    store = tempfile.mkdtemp(prefix="ishigami-sobol2-")
    result = run_campaign(
        spec,
        store=store,
        executor=ParallelExecutor(num_workers=num_workers),
    )
    print()
    print(format_sensitivity_summary(result.summary()))

    truth = ishigami_indices()
    print("\nClosed-form ground truth (Ishigami):")
    print(f"  S_i   = {np.round(truth['first_order'], 4).tolist()}")
    print(f"  S_T,i = {np.round(truth['total'], 4).tolist()}")
    for pair in result.second_order.pairs:
        print(f"  S_{pair[0] + 1}{pair[1] + 1}  "
              f"= {truth['second_order'][pair]:.4f}")
    for group in groups:
        label = "{" + ",".join(f"x{i:02d}" for i in group) + "}"
        print(f"  S_T,{label} = {truth['group_total'](group):.4f}")

    stream = run_campaign(
        spec, store=store,
        reducer={"kind": "jansen", "num_bootstrap": 0, "streaming": True},
    )
    match = np.array_equal(stream.second_order.interaction,
                           result.second_order.interaction)
    print(f"\nstreaming re-reduce bit-identical: {match}")
    print(f"artifact store (reusable via 'repro-campaign sobol resume'): "
          f"{store}")


if __name__ == "__main__":
    main()
