"""Surrogate-accelerated Sobol indices: the ``pce`` reducer.

A Saltelli sensitivity campaign costs ``M (d + 2)`` model solves.  The
``pce`` reducer gets the same global-sensitivity answer from a plain
Monte Carlo campaign a small multiple of the basis size: it fits the
polynomial-chaos surrogate on the campaign's (checkpointed) samples and
reads the Sobol indices analytically off the coefficients.  Because the
fit happens at reduce time, it also works *retroactively* on any
existing campaign store::

    repro-campaign resume out/ --reducer pce --pce-degree 4

without a single fresh solve.

This example demonstrates the accuracy/cost trade on the Ishigami
function (closed-form indices of every order): a 256-base-sample
Saltelli campaign (1280 evaluations, seeded bootstrap CIs) against a
330-evaluation PCE campaign, both through the same unified
``run_campaign``.

Run with:  python examples/pce_surrogate_campaign.py [pce_samples]
"""

import sys

import numpy as np

from repro.campaign import CampaignSpec, ScenarioSpec, run_campaign
from repro.campaign.sensitivity import SensitivitySpec
from repro.reporting import format_pce_summary
from repro.uq.analytic import ishigami_distribution, ishigami_indices


def main():
    pce_samples = int(sys.argv[1]) if len(sys.argv) > 1 else 330
    scenario = ScenarioSpec(
        problem="ishigami", qoi="identity", module="repro.uq.analytic",
    )
    truth = ishigami_indices()

    saltelli = SensitivitySpec(
        name="ishigami-saltelli", scenario=scenario,
        distribution=ishigami_distribution(), dimension=3,
        num_base_samples=256, seed=11, chunk_size=256, num_bootstrap=200,
    )
    print(f"Saltelli campaign: {saltelli.num_samples} evaluations...")
    jansen = run_campaign(saltelli)

    pce_spec = CampaignSpec(
        name="ishigami-pce", scenario=scenario,
        distribution=ishigami_distribution(), dimension=3,
        num_samples=pce_samples, seed=11, chunk_size=64,
        sampler="random", reducer={"kind": "pce", "degree": 8},
    )
    print(f"PCE campaign: {pce_spec.num_samples} evaluations "
          f"({pce_spec.num_samples / saltelli.num_samples:.0%} of the "
          "Saltelli budget)...\n")
    surrogate = run_campaign(pce_spec)

    print(format_pce_summary(surrogate.summary()))
    print()
    header = (f"{'input':>6} {'S_i exact':>10} {'S_i PCE':>10} "
              f"{'S_i Saltelli 95% CI':>22}")
    print(header)
    interval = jansen.interval
    for i in range(3):
        ci = (f"[{interval.first_order_lower[i]:.4f}, "
              f"{interval.first_order_upper[i]:.4f}]")
        print(f"{'x' + str(i):>6} {truth['first_order'][i]:>10.4f} "
              f"{float(np.ravel(surrogate.first_order)[i]):>10.4f} "
              f"{ci:>22}")
    error = np.max(np.abs(surrogate.first_order - truth["first_order"]))
    print(f"\nmax |S_pce - S_exact| = {error:.4f}")


if __name__ == "__main__":
    main()
