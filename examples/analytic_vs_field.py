"""Cross-validation: analytic wire model vs. the lumped field-circuit chain.

Section III-B of the paper notes that a single lumped element assumes a
linear temperature profile along the wire, and that "a number of
concatenated lumped elements" yields a piecewise-linear profile.  This
example builds a two-electrode bridge problem, refines the wire into more
and more segments, and compares the resolved interior profile against the
closed-form parabolic solution of the analytic model.

Run with:  python examples/analytic_vs_field.py
"""

import numpy as np

from repro.bondwire.lumped import LumpedBondWire
from repro.bondwire.models import AnalyticWireModel
from repro.coupled.electrothermal import CoupledSolver
from repro.coupled.problem import ElectrothermalProblem
from repro.fit.boundary import ConvectionBC, DirichletBC
from repro.fit.material_field import MaterialField
from repro.grid.indexing import GridIndexing
from repro.grid.tensor_grid import TensorGrid
from repro.materials.library import copper, epoxy_resin
from repro.reporting.tables import format_table
from repro.solvers.time_integration import TimeGrid

MM = 1.0e-3


def build_wire_bridge_problem(num_segments):
    """Two thick copper electrodes in epoxy, bridged by one bonding wire."""
    grid = TensorGrid.uniform(
        ((0.0, 2.0 * MM), (0.0, 1.0 * MM), (0.0, 0.5 * MM)), (11, 5, 4)
    )
    field = MaterialField(grid, epoxy_resin())
    field.fill_box(((0.0, 0.8 * MM), (0.0, 1.0 * MM), (0.0, 0.5 * MM)),
                   copper())
    field.fill_box(((1.2 * MM, 2.0 * MM), (0.0, 1.0 * MM), (0.0, 0.5 * MM)),
                   copper())
    indexing = GridIndexing(grid)
    wire = LumpedBondWire(
        indexing.nearest_node((0.8 * MM, 0.5 * MM, 0.25 * MM)),
        indexing.nearest_node((1.2 * MM, 0.5 * MM, 0.25 * MM)),
        copper(), 25.4e-6, 1.55 * MM,
        num_segments=num_segments, name="bridge",
    )
    return ElectrothermalProblem(
        grid=grid,
        materials=field,
        wires=[wire],
        electrical_dirichlet=[
            DirichletBC(indexing.boundary_nodes("x-"), 0.02, "left"),
            DirichletBC(indexing.boundary_nodes("x+"), -0.02, "right"),
        ],
        convection=ConvectionBC(25.0, 300.0),
        t_initial=300.0,
        name="wire-bridge",
    )


def main():
    print("Solving the two-electrode wire bridge with 1..8 segments...\n")
    time_grid = TimeGrid(200.0, 100)  # long enough for steady state

    rows = []
    results = {}
    for segments in (1, 2, 4, 8):
        problem = build_wire_bridge_problem(num_segments=segments)
        solver = CoupledSolver(problem, mode="full", tolerance=1e-5)
        result = solver.solve_transient(time_grid)
        results[segments] = (problem, result)
        rows.append(
            (
                str(segments),
                f"{result.wire_temperatures[-1, 0]:.3f}",
                f"{result.wire_peak_temperatures[-1, 0]:.3f}",
                f"{result.wire_powers[-1, 0] * 1e3:.3f}",
            )
        )
    print(
        format_table(
            ["segments", "T_end-avg [K]", "T_peak [K]", "P [mW]"],
            rows,
            title="Wire temperature vs. number of lumped segments",
        )
    )

    # Compare the 8-segment interior profile against the analytic model.
    problem, result = results[8]
    wire = problem.wires[0]
    t_full = result.final_temperatures
    chain = problem.topology.wire_nodes[0]
    chain_temps = t_full[chain]
    end_a, end_b = chain_temps[0], chain_temps[-1]

    analytic = AnalyticWireModel(wire.material, wire.diameter, wire.length)
    current = np.sqrt(
        result.wire_powers[-1, 0] / wire.resistance(
            0.5 * (end_a + end_b)
        )
    )
    solution = analytic.solve_current_driven(current, end_a, end_b)

    positions = np.linspace(0.0, wire.length, len(chain))
    rows = []
    for x, t_chain in zip(positions, chain_temps):
        t_analytic = float(solution.temperature(x))
        rows.append(
            (
                f"{x * 1e3:.3f}",
                f"{t_chain:.3f}",
                f"{t_analytic:.3f}",
                f"{t_chain - t_analytic:+.3f}",
            )
        )
    print(
        format_table(
            ["x [mm]", "chain T [K]", "analytic T [K]", "difference [K]"],
            rows,
            title="\n8-segment chain vs. closed-form parabola "
                  "(same current, same end temperatures)",
        )
    )
    max_dev = np.max(
        np.abs(chain_temps - solution.temperature(positions))
    )
    print(f"\nMaximum deviation: {max_dev:.3f} K")
    print(
        "The concatenated lumped elements recover the parabolic interior "
        "profile the single element cannot represent."
    )


if __name__ == "__main__":
    main()
