"""Two tenants sharing one campaign service (and one factorization).

Starts an in-process :class:`repro.service.CampaignService` -- a job
queue, a multi-tenant store namespace and a stdlib HTTP front end over
the campaign runner -- then submits the paper's Monte Carlo study twice
over HTTP, once per tenant.  Both jobs run the same scenario in one
process, so the system matrices are assembled and factorized at most
once (the shared model and factorization caches); the streaming
``watch`` endpoint reports the folded-chunk frontier live, from
checkpoint files only.

Equivalent CLI session (server in one terminal, client in another)::

    repro-campaign serve service-root --max-workers 2
    repro-campaign submit http://127.0.0.1:PORT campaign.json \\
        --tenant alice
    repro-campaign watch http://127.0.0.1:PORT job-0001-XXXXXXXX

``REPRO_MC_SAMPLES`` overrides the sample count (CI smoke runs use 4).
"""

import os
import tempfile

from repro.package3d.scenarios import date16_campaign_spec
from repro.reporting import format_campaign_summary
from repro.service import CampaignService, job_result, submit_job, watch_job


def main():
    num_samples = int(os.environ.get("REPRO_MC_SAMPLES", "8"))
    spec = date16_campaign_spec(
        num_samples=num_samples,
        chunk_size=2,
        resolution="coarse",
        qoi="final",
    )
    with tempfile.TemporaryDirectory(prefix="repro-service-") as root:
        with CampaignService(root, max_workers=2) as service:
            print(f"service listening at {service.url}")
            job_a = submit_job(service.url, spec, tenant="alice")
            job_b = submit_job(service.url, spec, tenant="bob")
            print(f"submitted {job_a['job_id']} for alice, "
                  f"{job_b['job_id']} for bob")

            for status in watch_job(service.url, job_a["job_id"],
                                    interval_s=0.2):
                print(f"  [{status['state']:>9}] frontier "
                      f"{status.get('chunks_folded', 0)}"
                      f"/{status.get('total_chunks', '?')} chunks")
            for _ in watch_job(service.url, job_b["job_id"],
                               interval_s=0.2):
                pass

            cache = service.manager.stats()["factorization_cache"]
            summary = job_result(service.url, job_a["job_id"])
            print()
            print(format_campaign_summary(summary))
            print()
            print(f"both tenants' stores live under {root}/stores/")
            print(f"shared factorization cache: {cache['entries']} "
                  f"entries, {cache['hits']} hits")


if __name__ == "__main__":
    main()
