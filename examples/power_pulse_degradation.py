"""Pulsed load + kinetic degradation: beyond the paper's static criterion.

The paper marks failure with a static 523 K threshold and announces "more
sophisticated bonding wire models" as future work.  This example combines
two of this library's extensions:

* a duty-cycled drive waveform (the package sees ON/OFF power pulses),
* the Arrhenius damage-accumulation model, which integrates thermal
  degradation over the whole temperature history instead of checking a
  threshold.

It compares three load profiles at equal *average* drive power and shows
that the constant load is the gentlest -- pulsed loads spend time at
higher peak temperatures, and damage is exponential in temperature.

Run with:  python examples/power_pulse_degradation.py
"""

import numpy as np

from repro import CoupledSolver, TimeGrid, build_date16_problem
from repro.bondwire.degradation import (
    ArrheniusDegradationModel,
    CycleCountingModel,
)
from repro.coupled.excitation import ConstantWaveform, PulseTrainWaveform
from repro.package3d.chip_example import Date16Parameters
from repro.reporting.tables import format_table


def main():
    # Stress drive so temperatures reach the degradation-relevant regime.
    parameters = Date16Parameters(pair_voltage=0.118)
    problem, _ = build_date16_problem(
        parameters=parameters, resolution="coarse"
    )
    time_grid = TimeGrid.from_num_points(100.0, 201)

    # Equal mean-square drive: constant at scale s vs. pulses at
    # s / sqrt(duty) (power ~ scale^2 * duty).
    profiles = {
        "constant": ConstantWaveform(np.sqrt(0.5)),
        "pulse 50% @ 20 s": PulseTrainWaveform(period=20.0, duty=0.5),
        "pulse 50% @ 50 s": PulseTrainWaveform(period=50.0, duty=0.5),
    }

    degradation = ArrheniusDegradationModel(
        activation_energy=0.8,
        reference_temperature=parameters.t_critical,
        reference_lifetime=100.0,   # one lifetime per 100 s at 523 K
    )
    cycling = CycleCountingModel(
        coefficient=5.0e5, exponent=2.0, minimum_swing=2.0
    )

    rows = []
    for name, waveform in profiles.items():
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-3)
        result = solver.solve_transient(time_grid, waveform=waveform)
        hottest = result.hottest_wire_index()
        trace = result.wire_trace(hottest)
        damage = degradation.accumulate(result.times, trace)
        ttf = degradation.time_to_failure(result.times, trace)
        rows.append(
            (
                name,
                f"{np.max(trace):.1f}",
                f"{trace[-1]:.1f}",
                f"{damage[-1]:.4f}",
                "none" if ttf is None else f"{ttf:.1f} s",
                f"{cycling.damage(trace):.2e}",
            )
        )
        print(f"{name}: peak {np.max(trace):.1f} K, "
              f"Arrhenius damage {damage[-1]:.4f}")

    print()
    print(
        format_table(
            ["load profile", "T_peak [K]", "T(end) [K]",
             "Arrhenius damage", "time to D=1", "cycling damage"],
            rows,
            title="Hottest wire over 100 s at equal mean-square drive",
        )
    )
    print(
        "\nThe Arrhenius model integrates exp(-Ea/kT) over the trace: the "
        "profiles with higher peaks accumulate disproportionate damage "
        "even at identical average electrical power, and slow pulsing "
        "additionally pays thermal-cycling damage -- neither effect is "
        "visible to the paper's static 523 K criterion."
    )


if __name__ == "__main__":
    main()
