"""The paper's Monte Carlo study as a checkpointed, parallel campaign.

Runs a small Date16 campaign through the campaign engine: declarative
spec, process-pool executor (model + factorizations built once per
worker), per-chunk checkpoints in an artifact store, and a summary
table.  Kill this script at any point and re-run it -- already
checkpointed chunks are never recomputed, and the final statistics are
bit-identical to an uninterrupted run.

Equivalent CLI session::

    repro-campaign spec date16 --samples 16 -o campaign.json
    repro-campaign run campaign.json --store campaign-store \\
        --executor process --workers 4
    repro-campaign report campaign-store

``REPRO_MC_SAMPLES`` overrides the sample count (CI smoke runs use 4).
"""

import os

from repro.campaign import ParallelExecutor, run_campaign
from repro.package3d.scenarios import date16_campaign_spec
from repro.reporting import format_campaign_summary

STORE = os.path.join(os.path.dirname(__file__), "campaign-store")


def main():
    num_samples = int(os.environ.get("REPRO_MC_SAMPLES", "16"))
    spec = date16_campaign_spec(
        num_samples=num_samples,
        chunk_size=2,
        resolution="coarse",
        qoi="final",  # per-wire end-time temperatures
    )
    print(f"running {spec} -> {STORE}")
    result = run_campaign(
        spec,
        store=STORE,
        executor=ParallelExecutor(num_workers=4),
        progress=lambda done, total: print(f"  chunk {done}/{total}"),
    )
    print()
    print(format_campaign_summary(result.summary()))
    print()
    print(f"evaluated {result.num_evaluated} samples this run "
          f"({result.num_samples} total in the store)")


if __name__ == "__main__":
    main()
