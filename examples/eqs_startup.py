"""Electroquasistatic start-up: why the stationary current model is valid.

Section II-A of the paper neglects capacitive effects and solves the
stationary current problem, noting that "a generalization to
electroquasistatics is straightforward".  This example runs that
generalization on a two-electrode wire bridge and shows the numbers behind
the approximation: the electrical charge relaxation finishes microseconds
after switch-on, six orders of magnitude below the thermal time scale.

Run with:  python examples/eqs_startup.py
"""

import numpy as np

from repro.coupled.electrical import solve_stationary_current
from repro.coupled.electroquasistatic import (
    charge_relaxation_time,
    solve_electroquasistatic,
)
from repro.materials.library import epoxy_resin
from repro.reporting.tables import format_table
from repro.solvers.time_integration import TimeGrid

# Reuse the self-contained bridge builder of the analytic example.
from analytic_vs_field import build_wire_bridge_problem  # noqa: E402


def main():
    problem = build_wire_bridge_problem(num_segments=1)
    tau = charge_relaxation_time(epoxy_resin())
    print(f"Epoxy charge relaxation time eps/sigma = {tau * 1e6:.1f} us")
    print("Thermal step of the paper's study       = 1 s "
          f"({1.0 / tau:.0f}x slower)\n")

    # EQS start-up over ten relaxation times.
    time_grid = TimeGrid(10.0 * tau, 200)
    result = solve_electroquasistatic(problem, time_grid)
    phi_dc, _ = solve_stationary_current(problem)

    rows = []
    for index in (1, 2, 5, 20, 100, 200):
        t = result.times[index]
        deviation = float(
            np.max(np.abs(result.potentials[index] - phi_dc))
        )
        current = result.terminal_currents[index, 0]
        rows.append(
            (
                f"{t * 1e6:.2f}",
                f"{current * 1e3:.4g}",
                f"{deviation * 1e3:.3g}",
            )
        )
    print(
        format_table(
            ["t [us]", "terminal current [mA]", "max |phi - phi_DC| [mV]"],
            rows,
            title="EQS start-up towards the stationary current solution",
        )
    )

    wire_drop = problem.topology.endpoint_stamps[0].potential_drop(
        result.final
    )
    print(
        f"\nwire voltage after start-up: {wire_drop * 1e3:.2f} mV "
        "(the stationary model's 40 mV)"
    )
    print(
        "Conclusion: by the first implicit-Euler thermal step the "
        "electrical state is indistinguishable from the stationary "
        "solution -- the paper's approximation is quantitatively justified."
    )


if __name__ == "__main__":
    main()
