"""The paper's Monte Carlo study (Sections IV-V) at a reduced sample count.

Propagates the fitted elongation distribution N(0.17, 0.048^2) through the
coupled solver and reports the Section V-D quantities: the expected
temperature of the hottest wire over time, sigma_MC, error_MC (eq. (6)) and
whether the 6-sigma band crosses the critical temperature.

Environment:
    REPRO_MC_SAMPLES   sample count (default 30; the paper used 1000)

Run with:  python examples/package_uq_study.py
"""

import os
import time


from repro.package3d.uq_study import Date16UncertaintyStudy
from repro.reporting.series import format_series
from repro.reporting.tables import format_table


def main():
    num_samples = int(os.environ.get("REPRO_MC_SAMPLES", "30"))
    print(f"Monte Carlo study with M = {num_samples} samples "
          "(paper: M = 1000; set REPRO_MC_SAMPLES to change)\n")

    study = Date16UncertaintyStudy(resolution="coarse", tolerance=1e-3)
    dist = study.elongation_distribution
    print(
        f"Elongation distribution: mean={dist.mean:.3f}, "
        f"std={dist.std:.4f} (fitted from the 12-wire X-ray dataset)\n"
    )

    start = time.time()
    result = study.run_monte_carlo(num_samples=num_samples, seed=0)
    elapsed = time.time() - start
    print(f"Completed {num_samples} coupled transients in {elapsed:.1f} s "
          f"({elapsed / num_samples:.2f} s/sample)\n")

    summary = result.summary()
    rows = [
        ("Hottest wire", summary["hottest_wire"]),
        ("E(50 s) of hottest wire", f"{summary['E_end']:.2f} K"),
        ("sigma_MC (end time)", f"{summary['sigma_mc']:.3f} K"),
        ("error_MC = sigma/sqrt(M)", f"{summary['error_mc']:.4f} K"),
        ("Steady state reached at", f"{summary['steady_state_time']:.0f} s"),
        (
            "6-sigma band crosses 523 K",
            "never"
            if summary["band_crossing_time"] is None
            else f"t = {summary['band_crossing_time']:.1f} s",
        ),
    ]
    print(format_table(["Quantity", "Value"], rows,
                       title="Section V-D quantities"))

    mean, std = result.hottest_wire_traces()
    print("\nExpected temperature of the hottest wire (Fig. 7 curve):")
    print(format_series(result.times, mean, max_rows=11, value_name="E [K]"))
    print("\n6-sigma band half-width over time:")
    print(format_series(result.times, 6.0 * std, max_rows=6,
                        value_name="6 sigma [K]"))

    print(
        "\nPaper reference (different absolute scale, see EXPERIMENTS.md): "
        "sigma_MC = 4.65 K, error_MC = 0.147 K, band crosses 523 K for "
        "t > 26 s."
    )


if __name__ == "__main__":
    main()
