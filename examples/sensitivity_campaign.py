"""Distributed Sobol sensitivity: which wire drives the variance?

The paper's Section I question costs ``M (d + 2)`` full transients -- far
too many for a serial loop at real sample counts.  This example runs the
Saltelli design as a *campaign*: checkpointed to an artifact store,
evaluated by a process pool in which every worker builds the coupled
solver once, and reduced with Jansen's estimators generalized to the
vector of per-wire end temperatures (with bootstrap confidence
intervals).  Kill it at any point and rerun: it resumes from the last
completed chunk and reproduces the uninterrupted indices bit for bit.

Run with:  python examples/sensitivity_campaign.py [base_samples] [workers]

(The default M=4 keeps the demo at 72 coarse transients; the paper-scale
study is the same command with M=256 on as many workers as you have.
Equivalent CLI: ``repro-campaign sobol spec`` + the unified
``repro-campaign run/resume/report``.)
"""

import sys
import tempfile

from repro.campaign import ParallelExecutor, run_campaign
from repro.package3d.scenarios import date16_sensitivity_spec
from repro.reporting.sensitivity import format_sensitivity_summary


def main():
    num_base_samples = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    num_workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    spec = date16_sensitivity_spec(
        num_base_samples=num_base_samples,
        chunk_size=max(1, num_base_samples // 2),
        qoi="final",
    )
    print(
        f"Sensitivity campaign: M={num_base_samples}, d={spec.dimension} "
        f"wires -> {spec.num_samples} coupled transients on "
        f"{num_workers} workers..."
    )
    store = tempfile.mkdtemp(prefix="date16-sobol-")

    def progress(done, total):
        print(f"  chunk {done}/{total} checkpointed", flush=True)

    result = run_campaign(
        spec,
        store=store,
        executor=ParallelExecutor(num_workers=num_workers),
        progress=progress,
    )
    print()
    print(format_sensitivity_summary(result.summary()))
    print(f"\nartifact store (reusable via 'repro-campaign sobol resume'): "
          f"{store}")


if __name__ == "__main__":
    main()
