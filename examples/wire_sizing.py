"""Bonding wire sizing: the design trade-off of the paper's introduction.

"When designing bonding wires ... the designer is left with the choice of
its material and its thickness."  This example uses the analytic
steady-state model to tabulate allowable currents per diameter and
material, compares against the empirical Preece fusing estimate, and picks
the minimum diameter for a given operating current.

Run with:  python examples/wire_sizing.py
"""

import numpy as np

from repro.bondwire.calculator import BondWireCalculator
from repro.bondwire.failure import melting_point, preece_fusing_current
from repro.materials.library import aluminium, copper, gold
from repro.reporting.tables import format_table

UM = 1.0e-6
LENGTH = 1.55e-3          # Table II average wire length
T_LIMIT = 523.0           # the paper's critical (mold) temperature


def allowable_current_table():
    diameters = np.array([15.0, 20.0, 25.4, 32.0, 50.0]) * UM
    materials = [("copper", copper()), ("gold", gold()),
                 ("aluminium", aluminium())]
    rows = []
    for d in diameters:
        row = [f"{d / UM:.1f}"]
        for name, material in materials:
            calc = BondWireCalculator(material, LENGTH, t_limit=T_LIMIT)
            row.append(f"{calc.allowable_current(d):.3f}")
        row.append(f"{preece_fusing_current(d, 'copper'):.3f}")
        rows.append(row)
    print(
        format_table(
            ["d [um]", "Cu I_max [A]", "Au I_max [A]", "Al I_max [A]",
             "Preece Cu [A]"],
            rows,
            title=(
                f"Allowable current for L = {LENGTH * 1e3:.2f} mm, "
                f"T_limit = {T_LIMIT:.0f} K (ends clamped at 300 K)"
            ),
        )
    )


def required_diameter_for_operating_point():
    current = 0.38  # the current each wire of the paper's package carries
    print(
        f"\nThe paper's wires carry about {current:.2f} A each "
        "(40 mV over a ~105 mOhm pair)."
    )
    rows = []
    for name, material in (("copper", copper()), ("gold", gold()),
                           ("aluminium", aluminium())):
        calc = BondWireCalculator(material, LENGTH, t_limit=T_LIMIT)
        required = calc.required_diameter(current)
        rows.append(
            (name, f"{required / UM:.1f}",
             f"{melting_point(name):.0f}")
        )
    print(
        format_table(
            ["material", "min diameter [um]", "melting point [K]"],
            rows,
            title=f"Minimum diameter to carry {current:.2f} A below "
                  f"{T_LIMIT:.0f} K",
        )
    )
    print(
        "\nThe paper's 25.4 um copper wire sits close to this sizing "
        "boundary, which is exactly why the length uncertainty matters "
        "for reliability."
    )


def temperature_vs_current_curve():
    calc = BondWireCalculator(copper(), LENGTH, t_limit=T_LIMIT)
    currents = np.linspace(0.05, 0.6, 12)
    rows = [
        (f"{i:.3f}", f"{calc.peak_temperature(25.4 * UM, i):.1f}")
        for i in currents
    ]
    print(
        format_table(
            ["I [A]", "T_peak [K]"],
            rows,
            title="\nSteady peak temperature of the 25.4 um copper wire",
        )
    )


def main():
    allowable_current_table()
    required_diameter_for_operating_point()
    temperature_vs_current_curve()


if __name__ == "__main__":
    main()
