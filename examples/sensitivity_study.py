"""Global sensitivity: which wire's length uncertainty matters most?

The paper's introduction frames the study as "the global sensitivity of
the bonding wires' temperatures w.r.t. their geometric parameters".  This
example quantifies it with a degree-1 polynomial chaos surrogate (about 26
coupled solves) and reports per-wire Sobol indices of the hottest-wire end
temperature.

For the direct (non-surrogate) Saltelli estimate -- distributed over
workers with checkpoint/resume -- see ``examples/sensitivity_campaign.py``
and the ``repro-campaign sobol`` CLI.

Run with:  python examples/sensitivity_study.py
"""

import numpy as np

from repro.package3d.chip_example import date16_layout
from repro.package3d.uq_study import Date16UncertaintyStudy
from repro.reporting.tables import format_table


def main():
    study = Date16UncertaintyStudy(resolution="coarse", tolerance=1e-3)
    print("Fitting a degree-1 PCE surrogate of the hottest-wire end "
          "temperature (26 coupled solves)...")
    pce = study.run_pce(degree=1, seed=0)
    first, total = pce.sobol_indices()
    first = first[:, 0]
    total = total[:, 0]

    print(f"\nsurrogate mean: {pce.mean[0]:.2f} K, std: {pce.std[0]:.3f} K\n")

    directs = date16_layout().all_direct_distances()
    order = np.argsort(-total)
    rows = []
    for rank, wire in enumerate(order, start=1):
        rows.append(
            (
                str(rank),
                f"wire{wire:02d}",
                f"{directs[wire] * 1e3:.3f}",
                f"{first[wire]:.3f}",
                f"{total[wire]:.3f}",
            )
        )
    print(
        format_table(
            ["rank", "wire", "d [mm]", "S_i", "S_T,i"],
            rows,
            title="Sobol indices of the hottest-wire end temperature",
        )
    )

    short = total[directs < 1.2e-3]
    long_ = total[directs > 1.2e-3]
    print(
        f"\nshort (central) wires carry {np.sum(short):.2f} of the total "
        f"index mass, long wires {np.sum(long_):.2f}."
    )
    print(
        "The short central wires dominate: they run hottest, so their "
        "length uncertainty drives the variance of the failure-relevant "
        "temperature -- a quantitative version of the paper's Fig. 8 "
        "observation."
    )


if __name__ == "__main__":
    main()
