"""Mesh-resolution study of the package model.

Runs the nominal coupled transient at three mesh resolutions and reports
how the hottest-wire end temperature converges -- the check behind the
claim that the paper's qualitative results are resolution-robust.

Run with:  python examples/mesh_convergence.py

``REPRO_MESH_RESOLUTIONS`` (comma-separated presets) restricts the sweep
-- CI smoke runs use ``coarse``.
"""

import os
import time

import numpy as np

from repro import CoupledSolver, TimeGrid, build_date16_problem
from repro.reporting.tables import format_table


def main():
    resolutions = tuple(
        entry.strip()
        for entry in os.environ.get(
            "REPRO_MESH_RESOLUTIONS", "coarse,default,fine"
        ).split(",")
        if entry.strip()
    )
    time_grid = TimeGrid.from_num_points(50.0, 51)
    rows = []
    reference = None
    for resolution in resolutions:
        start = time.time()
        problem, mesh = build_date16_problem(resolution=resolution)
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-3)
        result = solver.solve_transient(time_grid)
        elapsed = time.time() - start
        hottest = float(np.max(result.final_wire_temperatures()))
        if reference is None:
            reference = hottest
        rows.append(
            (
                resolution,
                str(mesh.grid.num_nodes),
                f"{hottest:.2f}",
                f"{hottest - reference:+.2f}",
                f"{elapsed:.1f}",
            )
        )
        print(f"{resolution}: {mesh.grid.num_nodes} nodes -> "
              f"{hottest:.2f} K in {elapsed:.1f} s")
    print()
    print(
        format_table(
            ["resolution", "nodes", "T_hottest(50 s) [K]",
             "vs. coarse [K]", "wall [s]"],
            rows,
            title="Hottest wire temperature vs. mesh resolution",
        )
    )
    print(
        "\nThe hottest-wire temperature moves by a small fraction of the "
        "total rise between resolutions; the winner ordering (short "
        "central wires hottest) is unchanged."
    )


if __name__ == "__main__":
    main()
