"""Adaptive vs fixed time stepping on the DATE'16 package problem.

The paper integrates every transient with 51 fixed implicit-Euler points
over 50 s.  The ``time_stepping: "adaptive"`` scenario option switches a
campaign to controller-driven implicit Euler instead: small steps
through the stiff start-up, strides through the flat approach to steady
state, accepted states interpolated back onto the fixed grid so every
downstream QoI keeps its ``(P, W)`` shape.

Two things make the adaptive path the *fast* path (and not just the
fewer-solves path): the controller quantizes every step onto a
geometric dt ladder, so the per-dt thermal factorizations stay at the
ladder-rung count instead of growing with the solve count, and the
divided-difference predictor estimates the local error from the solves
it already made (one coupled solve per attempted step instead of the
three that step doubling pays).

This example runs one nominal solve each way, compares wall-clock on a
cold factorization cache, and prints the quantized controller's cost
detail.  The same options distribute through the campaign engine::

    repro-campaign spec date16 --samples 64 --time-stepping adaptive \\
        -o adaptive.json
    repro-campaign run adaptive.json --store out/ --executor process

Run with:  python examples/adaptive_stepping.py [tolerance_kelvin]
"""

import sys
import time

import numpy as np

from repro.package3d.uq_study import Date16UncertaintyStudy
from repro.reporting import format_adaptive_summary
from repro.solvers.cache import FactorizationCache


def main():
    tolerance = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    deltas = np.full(12, 0.17)

    print("Fixed grid: 51 points over 50 s (the paper's setting)...")
    fixed_study = Date16UncertaintyStudy(
        resolution="coarse", factorization_cache=FactorizationCache()
    )
    start = time.perf_counter()
    fixed = fixed_study.evaluate_traces(deltas)
    fixed_seconds = time.perf_counter() - start
    fixed_solves = fixed.shape[0] - 1
    print(f"  {fixed_solves} coupled solves, {fixed_seconds:.2f} s, "
          f"end max {fixed[-1].max():.2f} K")

    print(f"\nQuantized-adaptive: dt ladder + predictor estimate, "
          f"local tolerance {tolerance} K...")
    adaptive_study = Date16UncertaintyStudy(
        resolution="coarse", time_stepping="adaptive",
        adaptive_tolerance=tolerance,
        factorization_cache=FactorizationCache(),
    )
    start = time.perf_counter()
    adaptive = adaptive_study.evaluate_traces(deltas)
    adaptive_seconds = time.perf_counter() - start
    steps = adaptive_study.last_adaptive_result
    print(f"  {steps.accepted} accepted + {steps.rejected} rejected "
          f"steps = {steps.num_solves} coupled solves, "
          f"{adaptive_seconds:.2f} s (cold factorization cache)")
    print(f"  dt in [{steps.step_sizes.min():.3g}, "
          f"{steps.step_sizes.max():.3g}] s, "
          f"end max {adaptive[-1].max():.2f} K")

    print("\n" + format_adaptive_summary(steps))

    deviation = np.max(np.abs(adaptive - fixed))
    print(f"\nmax |T_adaptive - T_fixed| on the 51-point grid: "
          f"{deviation:.3f} K (local tolerance {tolerance} K)")
    print(f"solve-count ratio adaptive/fixed: "
          f"{steps.num_solves / fixed_solves:.2f}")
    if adaptive_seconds < fixed_seconds:
        print(f"wall-clock speedup on a cold cache: "
              f"{fixed_seconds / adaptive_seconds:.2f}x "
              f"({steps.num_distinct_solver_dts} ladder-rung "
              "factorizations amortized over the whole transient)")
    else:
        print("(fixed grid was faster on this run -- see "
              "benchmarks/bench_adaptive_stepping.py for the "
              "median-of-N comparison)")


if __name__ == "__main__":
    main()
