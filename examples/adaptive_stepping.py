"""Adaptive vs fixed time stepping on the DATE'16 package problem.

The paper integrates every transient with 51 fixed implicit-Euler points
over 50 s.  The ``time_stepping: "adaptive"`` scenario option switches a
campaign to step-doubling implicit Euler instead: the controller spends
small steps on the stiff start-up and strides through the flat approach
to steady state, then the accepted states are interpolated back onto the
fixed grid so every downstream QoI keeps its ``(P, W)`` shape.

This example runs one nominal solve each way and compares cost (coupled
solves: the fixed grid pays one per step, step doubling three per
attempted step) and accuracy.  The same option distributes through the
campaign engine::

    repro-campaign spec date16 --samples 64 --time-stepping adaptive \\
        -o adaptive.json
    repro-campaign run adaptive.json --store out/ --executor process

Run with:  python examples/adaptive_stepping.py [tolerance_kelvin]
"""

import sys
import time

import numpy as np

from repro.package3d.uq_study import Date16UncertaintyStudy


def main():
    tolerance = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    deltas = np.full(12, 0.17)

    print("Fixed grid: 51 points over 50 s (the paper's setting)...")
    fixed_study = Date16UncertaintyStudy(resolution="coarse")
    start = time.perf_counter()
    fixed = fixed_study.evaluate_traces(deltas)
    fixed_seconds = time.perf_counter() - start
    fixed_solves = fixed.shape[0] - 1
    print(f"  {fixed_solves} coupled solves, {fixed_seconds:.2f} s, "
          f"end max {fixed[-1].max():.2f} K")

    print(f"\nAdaptive: step doubling, local tolerance {tolerance} K...")
    adaptive_study = Date16UncertaintyStudy(
        resolution="coarse", time_stepping="adaptive",
        adaptive_tolerance=tolerance,
    )
    start = time.perf_counter()
    adaptive = adaptive_study.evaluate_traces(deltas)
    adaptive_seconds = time.perf_counter() - start
    steps = adaptive_study.last_adaptive_result
    adaptive_solves = 3 * (steps.accepted + steps.rejected)
    print(f"  {steps.accepted} accepted + {steps.rejected} rejected "
          f"steps = {adaptive_solves} coupled solves, "
          f"{adaptive_seconds:.2f} s")
    print(f"  dt in [{steps.step_sizes.min():.3g}, "
          f"{steps.step_sizes.max():.3g}] s, "
          f"end max {adaptive[-1].max():.2f} K")

    deviation = np.max(np.abs(adaptive - fixed))
    print(f"\nmax |T_adaptive - T_fixed| on the 51-point grid: "
          f"{deviation:.3f} K")
    print(f"solve-count ratio adaptive/fixed: "
          f"{adaptive_solves / fixed_solves:.2f}")
    print("(wall-clock favors the fixed grid on a cold factorization "
          "cache -- every new dt refactorizes; solve count is the "
          "campaign-relevant cost once workers share the cache)")


if __name__ == "__main__":
    main()
