"""Quickstart: simulate the DATE'16 package once and inspect the wires.

Builds the paper's 28-pad / 12-wire package on a coarse mesh, runs the
coupled electrothermal transient (implicit Euler, 50 s as in Table II) and
prints the per-wire end temperatures plus a failure assessment against the
523 K critical temperature.

Run with:  python examples/quickstart.py
"""


from repro import CoupledSolver, TimeGrid, build_date16_problem
from repro.bondwire.failure import assess_failure
from repro.reporting.series import format_series
from repro.reporting.tables import format_table


def main():
    print("Building the DATE'16 package model (coarse mesh)...")
    problem, mesh = build_date16_problem(resolution="coarse")
    stats = mesh.statistics()
    print(
        f"  mesh: {stats['shape'][0]} x {stats['shape'][1]} x "
        f"{stats['shape'][2]} nodes ({stats['nodes']} total), "
        f"{stats['cells']} cells"
    )
    print(f"  wires: {len(problem.wires)}, contacts at +-20 mV\n")

    print("Running the coupled transient (fast Woodbury mode)...")
    solver = CoupledSolver(problem, mode="fast", tolerance=1e-3)
    time_grid = TimeGrid.from_num_points(50.0, 51)
    result = solver.solve_transient(time_grid)
    print(f"  {result.summary()}\n")

    rows = []
    for index, name in enumerate(result.wire_names):
        trace = result.wire_trace(index)
        verdict = assess_failure(result.times, trace, label=name)
        rows.append(
            (
                name,
                f"{problem.wires[index].length * 1e3:.3f}",
                f"{trace[-1]:.2f}",
                f"{result.wire_powers[-1, index] * 1e3:.2f}",
                "FAIL" if verdict.fails else f"{verdict.margin:.1f} K",
            )
        )
    print(
        format_table(
            ["wire", "L [mm]", "T(50 s) [K]", "P [mW]", "margin to 523 K"],
            rows,
            title="Per-wire results at the nominal geometry",
        )
    )

    hottest = result.hottest_wire_index()
    print(
        "\nHottest wire trace "
        f"({result.wire_names[hottest]}):"
    )
    print(
        format_series(
            result.times,
            result.wire_trace(hottest),
            max_rows=11,
            value_name="T [K]",
        )
    )
    print(
        "\nNote: the short central wires (on the long pads) run hottest -- "
        "the paper's Fig. 8 observation."
    )


if __name__ == "__main__":
    main()
