"""Closing the loop: compare the UQ prediction against a 'measurement'.

The paper's conclusion names "a comparison to bonding wire measurements"
as future research.  This example runs that comparison end to end with a
*synthetic* measurement standing in for the physical chip:

1. the "true chip" is a simulation with wire lengths drawn from the
   elongation distribution (unknown to the predictor) plus sensor
   sampling, noise and lag;
2. the predictor is the Monte Carlo study: expected trace E(t) and band
   sigma(t) of the hottest wire;
3. the comparison metrics report RMSE, bias and band calibration --
   exactly what one would compute against a thermocouple trace.

Run with:  python examples/model_validation.py
"""

import os

import numpy as np

from repro.package3d.uq_study import Date16UncertaintyStudy
from repro.reporting.tables import format_table
from repro.validation.comparison import compare_traces
from repro.validation.synthetic import synthesize_measurement


def main():
    study = Date16UncertaintyStudy(resolution="coarse", tolerance=1e-3)

    print("Simulating the 'true chip' (hidden random wire lengths)...")
    rng = np.random.default_rng(2026)
    true_deltas = study.elongation_distribution.ppf(
        rng.uniform(1e-6, 1 - 1e-6, study.num_wires)
    )
    true_traces = study.evaluate_traces(true_deltas)
    times = study.time_grid.times

    num_samples = int(os.environ.get("REPRO_MC_SAMPLES", "24"))
    print(f"Predicting with the Monte Carlo study (M = {num_samples})...")
    prediction = study.run_monte_carlo(num_samples=num_samples, seed=7)
    hottest = prediction.hottest_wire_index
    mean, std = prediction.hottest_wire_traces()
    true_trace = true_traces[:, hottest]

    # Sensor model: 1 Hz sampling, 0.3 K noise, 0.5 s probe lag.
    measurement = synthesize_measurement(
        times,
        true_trace,
        sample_period=1.0,
        noise_std=0.3,
        sensor_time_constant=0.5,
        seed=11,
        description="synthetic thermocouple on the hottest wire",
    )
    print(f"measurement: {measurement}\n")

    # The honest uncertainty of the band is the geometric spread plus the
    # sensor noise.
    total_std = np.sqrt(std**2 + 0.3**2)
    report = compare_traces(
        times, mean, total_std, measurement,
        label=prediction.wire_names[hottest],
    )

    rows = [
        ("RMSE", f"{report.rmse:.3f} K"),
        ("Max error", f"{report.max_error:.3f} K"),
        ("Bias (model - measured)", f"{report.bias:+.3f} K"),
        ("2-sigma band coverage", f"{report.coverage_2sigma:.2f}"),
        ("6-sigma band coverage", f"{report.coverage_6sigma:.2f}"),
        ("Verdict", "acceptable" if report.acceptable() else "REJECTED"),
    ]
    print(
        format_table(
            ["Metric", "Value"], rows,
            title=f"Prediction vs. measurement "
                  f"({prediction.wire_names[hottest]})",
        )
    )
    print(
        "\nBecause the 'chip' was drawn from the same elongation "
        "distribution the study samples, a calibrated pipeline shows "
        "near-nominal band coverage; a geometry or material bias in the "
        "model would collapse the coverage long before RMSE looks bad."
    )


if __name__ == "__main__":
    main()
