"""Ablation: wire segmentation (single vs. concatenated lumped elements).

Section III-B: "a single bonding wire can be modeled ... by a number of
concatenated lumped elements resulting in a piecewise linear temperature
distribution."  This bench quantifies what the single-element model misses:
the interior hot spot of the wire.
"""

import numpy as np

from repro.coupled.electrothermal import CoupledSolver
from repro.package3d.chip_example import build_date16_problem
from repro.reporting.tables import format_table
from repro.solvers.time_integration import TimeGrid

from .conftest import (
    bench_resolution,
    bench_timings,
    write_artifact,
    write_bench_json,
)


def _run(num_segments):
    problem, _ = build_date16_problem(
        resolution=bench_resolution(), num_segments=num_segments
    )
    solver = CoupledSolver(problem, mode="fast", tolerance=1e-3)
    result = solver.solve_transient(TimeGrid.from_num_points(50.0, 51))
    hottest = result.hottest_wire_index()
    return (
        float(result.wire_temperatures[-1, hottest]),
        float(result.wire_peak_temperatures[-1, hottest]),
        float(result.wire_powers[-1, hottest]),
    )


def test_ablation_wire_segments(benchmark):
    single = benchmark.pedantic(_run, args=(1,), rounds=1, iterations=1)
    results = {1: single}
    for segments in (2, 4, 8):
        results[segments] = _run(segments)

    rows = []
    for segments, (endpoint, peak, power) in sorted(results.items()):
        rows.append(
            (
                str(segments),
                f"{endpoint:.2f}",
                f"{peak:.2f}",
                f"{peak - endpoint:+.2f}",
                f"{power * 1e3:.2f}",
            )
        )
    text = format_table(
        ["segments", "T end-avg [K]", "T peak [K]", "interior rise [K]",
         "P [mW]"],
        rows,
        title="ABLATION: LUMPED ELEMENTS PER WIRE",
    )
    path = write_artifact("ablation_segments.txt", text)
    write_bench_json(
        "ablation_segments",
        timings=bench_timings(benchmark),
        counters={"segment_variants": len(results)},
        interior_rise_kelvin=results[8][1] - results[8][0],
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")

    # The single element only sees its two end nodes; concatenated
    # elements resolve the interior Joule hot spot above that.
    assert results[4][1] > results[1][1]
    assert results[8][1] > results[1][1]
    # The end-point average (the paper's QoI) is segment-robust.
    assert abs(results[8][0] - results[1][0]) < 1.0
    # The DC operating point barely moves (powers agree within a few %).
    assert results[8][2] == np.clip(results[8][2], 0.9 * results[1][2],
                                    1.1 * results[1][2])
