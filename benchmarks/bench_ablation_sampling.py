"""Ablation: sampling strategy (MC vs. LHS vs. QMC vs. collocation).

Section IV-C: "the application of other methods is straightforward."  This
bench compares the estimators on the end-time hottest-wire temperature at
equal (small) budgets, using a large-M Monte Carlo run as the reference.
"""

import numpy as np

from repro.reporting.tables import format_table
from repro.uq.sampling import halton_sequence, latin_hypercube, random_sampler

from .conftest import (
    bench_timings,
    fig7_samples,
    write_artifact,
    write_bench_json,
)


def test_ablation_sampling_strategies(benchmark, uq_study):
    budget = max(12, fig7_samples() // 2)
    reference_budget = 3 * budget

    def end_max(deltas):
        return np.array([uq_study.evaluate_end_max(deltas)])

    from repro.uq.monte_carlo import MonteCarloStudy

    study = MonteCarloStudy(
        end_max, uq_study.elongation_distribution, uq_study.num_wires
    )

    reference = benchmark.pedantic(
        study.run, args=(reference_budget,), kwargs={"seed": 123},
        rounds=1, iterations=1,
    )
    ref_mean = reference.mean[0]

    streams = {
        "pseudo-random MC": random_sampler(budget, 12, seed=7),
        "Latin hypercube": latin_hypercube(budget, 12, seed=7),
        "Halton QMC": halton_sequence(budget, 12),
    }
    rows = []
    errors = {}
    for name, points in streams.items():
        result = study.run(None, uniform_points=points)
        error = abs(result.mean[0] - ref_mean)
        errors[name] = error
        rows.append(
            (
                name,
                str(budget),
                f"{result.mean[0]:.3f}",
                f"{result.std[0]:.3f}",
                f"{error:.3f}",
            )
        )

    collocation = uq_study.run_collocation(level=2)
    col_end_max = float(np.max(collocation.mean[-1]))
    rows.append(
        (
            "Smolyak collocation L2",
            str(collocation.num_evaluations),
            f"{col_end_max:.3f}",
            f"{float(np.max(collocation.std[-1])):.3f}",
            f"{abs(col_end_max - ref_mean):.3f}",
        )
    )
    rows.append(
        (
            f"reference MC (M={reference_budget})",
            str(reference_budget),
            f"{ref_mean:.3f}",
            f"{reference.std[0]:.3f}",
            "--",
        )
    )
    text = format_table(
        ["estimator", "model runs", "mean T_end [K]", "std [K]",
         "|bias vs ref| [K]"],
        rows,
        title="ABLATION: SAMPLING STRATEGY (end-time hottest wire)",
    )
    path = write_artifact("ablation_sampling.txt", text)
    write_bench_json(
        "ablation_sampling",
        timings=bench_timings(benchmark),
        counters={
            "budget": budget,
            "reference_budget": reference_budget,
            "collocation_runs": collocation.num_evaluations,
        },
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")

    # All estimators agree on the mean within a few standard errors.
    tolerance = 6.0 * reference.std[0] / np.sqrt(budget)
    for name, error in errors.items():
        assert error < max(tolerance, 0.5), name
    assert abs(col_end_max - ref_mean) < max(tolerance, 0.5)
