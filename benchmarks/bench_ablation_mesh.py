"""Ablation: mesh refinement.

Is the hottest-wire temperature resolution-robust?  Runs the nominal
transient on the coarse and default meshes and reports the drift.
"""

import numpy as np

from repro.package3d.chip_example import build_date16_problem
from repro.coupled.electrothermal import CoupledSolver
from repro.reporting.tables import format_table
from repro.solvers.time_integration import TimeGrid

from .conftest import bench_timings, write_artifact, write_bench_json


def _hottest_at(resolution):
    problem, mesh = build_date16_problem(resolution=resolution)
    solver = CoupledSolver(problem, mode="fast", tolerance=1e-3)
    result = solver.solve_transient(TimeGrid.from_num_points(50.0, 51))
    return (
        float(np.max(result.final_wire_temperatures())),
        int(np.argmax(result.final_wire_temperatures())),
        mesh.grid.num_nodes,
    )


def test_ablation_mesh_refinement(benchmark):
    coarse_t, coarse_w, coarse_n = benchmark.pedantic(
        _hottest_at, args=("coarse",), rounds=1, iterations=1
    )
    default_t, default_w, default_n = _hottest_at("default")

    rows = [
        ("coarse", str(coarse_n), f"{coarse_t:.2f}", f"wire{coarse_w:02d}"),
        ("default", str(default_n), f"{default_t:.2f}",
         f"wire{default_w:02d}"),
    ]
    text = format_table(
        ["resolution", "nodes", "T_hottest(50 s) [K]", "hottest wire"],
        rows,
        title="ABLATION: MESH REFINEMENT",
    )
    drift = abs(default_t - coarse_t)
    rise = coarse_t - 300.0
    text += (
        f"\n\ndrift coarse -> default: {drift:.2f} K "
        f"({100.0 * drift / rise:.1f} % of the rise)"
    )
    path = write_artifact("ablation_mesh.txt", text)
    write_bench_json(
        "ablation_mesh",
        timings=bench_timings(benchmark),
        counters={"coarse_nodes": coarse_n, "default_nodes": default_n},
        drift_kelvin=drift,
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")

    # Robustness: the temperature moves by a small fraction of the rise
    # and the hottest wire class (short central wires) is unchanged.
    assert drift < 0.15 * rise
    from repro.package3d.chip_example import date16_layout

    directs = date16_layout().all_direct_distances()
    assert directs[coarse_w] < 1.2e-3
    assert directs[default_w] < 1.2e-3
