"""Table II: simulation parameters.

Regenerates the parameter table (including the derived average wire
length) and benchmarks the full problem-assembly path that consumes it.
"""

import numpy as np

from repro.package3d.chip_example import Date16Parameters, build_date16_problem
from repro.reporting.tables import format_table2

from .conftest import (
    bench_resolution,
    bench_timings,
    write_artifact,
    write_bench_json,
)

#: The paper's Table II rows we must reproduce verbatim.
PAPER_TABLE2 = {
    "Bonding wire voltage Vbw": "40 mV",
    "End time": "50 s",
    "No. of time steps": "51",
    "No. of MC samples": "1000",
    "Wires' diameter": "25.4 um",
    "Ambient temperature": "300 K",
    "Heat transfer coefficient": "25 W/m^2/K",
    "Emissivity": "0.2475",
}


def test_table2_regeneration(benchmark):
    text = benchmark(format_table2)
    path = write_artifact("table2_parameters.txt", text)
    write_bench_json(
        "table2_parameters",
        timings=bench_timings(benchmark),
        counters={"rows": len(PAPER_TABLE2)},
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")

    rows = dict(Date16Parameters().as_table())
    for key, value in PAPER_TABLE2.items():
        assert rows[key] == value, key

    # Derived quantity: the average wire length of Table II (1.55 mm).
    from repro.package3d.chip_example import date16_layout

    layout = date16_layout()
    mean_length = float(np.mean(layout.all_direct_distances() / 0.83))
    assert abs(mean_length - 1.55e-3) < 0.02e-3


def test_problem_assembly(benchmark):
    """Benchmark building the full package problem from the parameters."""
    def build():
        problem, mesh = build_date16_problem(resolution=bench_resolution())
        return problem

    problem = benchmark(build)
    assert len(problem.wires) == 12
    assert len(problem.electrical_dirichlet) == 12
