"""Sample-blocked solves vs the per-sample Python loop: wall-clock.

The Monte Carlo hot path used to advance one coupled transient per
elongation sample -- a Python loop of rank-1-ish Woodbury solves and
O(n) vector work per sample.  The blocked fast path advances all S
samples of a chunk through the same time grid at once: one multi-RHS
SuperLU backsolve against an ``(n, S)`` right-hand-side block plus a
stacked ``(S, k, k)`` batched core solve per fixed-point iteration,
turning the per-sample BLAS-2 work into BLAS-3.

Two configurations evaluate the same 64-sample elongation chunk on one
Date16 study each:

* ``per-sample`` -- ``evaluate_traces`` row by row (the old loop);
* ``blocked``    -- ``evaluate_traces_block`` on the full chunk.

Cold = first evaluation against an empty factorization cache; warm = a
second evaluation of the same study (base LUs cached, pure hot-loop
cost).  The acceptance gate asserts the blocked path >= 2x the loop's
warm wall-clock, and that the blocked traces match the loop to the
multi-RHS reorder floor (rtol 1e-12).

``--backend <name>`` runs the blocked configuration on a registered
array backend (``numpy``, ``devicesim``, ``cupy``) while the per-sample
loop stays on the host reference; the equivalence gate then relaxes to
the backend's declared tier, and the ``BENCH_batched_solves.json``
artifact records the backend name plus its cold/warm device-transfer
counts.

Run standalone (``--smoke`` shrinks mesh and horizon for CI)::

    python benchmarks/bench_batched_solves.py [--smoke] [--backend NAME]

    REPRO_BATCHED_REPEATS      timing repeats per config (default 3)
    REPRO_BATCHED_MIN_SPEEDUP  warm-cache gate (default 2.0; noisy
                               shared runners may need to lower it)
    REPRO_BATCHED_SAMPLES      chunk size (default 64)
    REPRO_BENCH_RESOLUTION     mesh preset for the full run
                               (default coarse)
"""

import argparse
import os
import sys
import time

import numpy as np

#: Deterministic seed for the elongation chunk (matches campaign LHS).
_SEED = 0


def _build_study(resolution, parameters, backend=None):
    from repro.package3d.uq_study import Date16UncertaintyStudy
    from repro.solvers.cache import FactorizationCache

    return Date16UncertaintyStudy(
        resolution=resolution,
        parameters=parameters,
        factorization_cache=FactorizationCache(max_entries=16),
        array_backend=backend,
    )


def _sample_chunk(study, num_samples):
    """``(S, W)`` elongation deltas from the study's own distribution."""
    from repro.uq.sampling import latin_hypercube

    points = latin_hypercube(num_samples, study.num_wires, seed=_SEED)
    distribution = study.elongation_distribution
    return np.column_stack([
        distribution.ppf(points[:, wire])
        for wire in range(study.num_wires)
    ])


def _time_configurations(resolution, parameters, num_samples, repeats,
                         backend):
    """Best-of-``repeats`` cold/warm seconds per configuration.

    Rounds are interleaved across configurations (so load drift on a
    shared machine hits every configuration alike) and aggregated with
    ``min`` -- scheduling noise only ever adds time.  The blocked
    configuration runs on ``backend``; the per-sample loop always runs
    the host reference, so the deviation column measures the selected
    backend against the scalar golden.
    """
    results = {
        name: {"name": name, "cold": [], "warm": []}
        for name in ("per-sample", "blocked")
    }
    for _ in range(repeats):
        study = _build_study(resolution, parameters)
        deltas = _sample_chunk(study, num_samples)

        start = time.perf_counter()
        loop_traces = np.stack(
            [study.evaluate_traces(row) for row in deltas]
        )
        results["per-sample"]["cold"].append(time.perf_counter() - start)
        start = time.perf_counter()
        np.stack([study.evaluate_traces(row) for row in deltas])
        results["per-sample"]["warm"].append(time.perf_counter() - start)
        results["per-sample"]["traces"] = loop_traces

        study = _build_study(resolution, parameters, backend=backend)
        transfers = backend.transfer_count
        start = time.perf_counter()
        block_traces = study.evaluate_traces_block(deltas)
        results["blocked"]["cold"].append(time.perf_counter() - start)
        results["blocked"]["transfers_cold"] = (
            backend.transfer_count - transfers
        )
        transfers = backend.transfer_count
        start = time.perf_counter()
        study.evaluate_traces_block(deltas)
        results["blocked"]["warm"].append(time.perf_counter() - start)
        results["blocked"]["transfers_warm"] = (
            backend.transfer_count - transfers
        )
        results["blocked"]["traces"] = block_traces

    for entry in results.values():
        entry["cold"] = float(np.min(entry["cold"]))
        entry["warm"] = float(np.min(entry["warm"]))
    return results


def run_comparison(resolution="coarse", parameters=None, num_samples=64,
                   repeats=3, min_speedup=None, backend=None,
                   out=sys.stdout):
    """Blocked vs per-sample on one chunk; returns the result record.

    ``min_speedup`` (full runs) asserts the blocked warm speedup;
    ``None`` (smoke) only checks the equivalence and structure.
    ``backend`` selects the array backend for the blocked run (name or
    instance; default resolution rules apply).  Returns a dict with the
    artifact ``table``, the resolved ``array_backend`` name, and the
    blocked path's cold/warm device-``transfers``.
    """
    from repro.backends import get_array_backend
    from repro.reporting.tables import format_table

    backend = get_array_backend(backend)
    print(f"timing 2 configurations x {repeats} interleaved rounds "
          f"({num_samples}-sample chunk, blocked on '{backend.name}') ...",
          file=out, flush=True)
    results = _time_configurations(
        resolution, parameters, num_samples, repeats, backend
    )

    loop = results["per-sample"]
    rows = []
    for name in ("per-sample", "blocked"):
        r = results[name]
        deviation = float(np.max(np.abs(r["traces"] - loop["traces"])))
        rows.append((
            name,
            f"{r['cold']:.3f}", f"{r['warm']:.3f}",
            f"{loop['cold'] / r['cold']:.2f}x",
            f"{loop['warm'] / r['warm']:.2f}x",
            f"{r['cold'] / num_samples * 1e3:.1f}",
            f"{deviation:.2e}",
        ))
    table = format_table(
        ("configuration", "cold [s]", "warm [s]", "cold speedup",
         "warm speedup", "amortized [ms/sample]", "max |dT| [K]"),
        rows,
        title=f"BATCHED SOLVES ({resolution} mesh, "
              f"S={num_samples}, backend={backend.name}, "
              f"best of {repeats})",
    )
    print("\n" + table, file=out)

    # Equivalence gate: the blocked chunk reproduces the loop to the
    # multi-RHS backsolve's reorder floor on the bitwise tier, and to
    # the backend's declared rtol tier on a device backend.
    blocked = results["blocked"]
    tier = backend.equivalence
    floor = max(1.0e-12, tier.rtol)
    scale = float(np.max(np.abs(loop["traces"])))
    deviation = float(np.max(np.abs(blocked["traces"] - loop["traces"])))
    assert deviation <= floor * scale, (
        f"blocked traces deviate {deviation:.3e} K from the per-sample "
        f"loop (allowed {floor * scale:.3e} on the '{tier.kind}' tier)"
    )
    if min_speedup is not None:
        speedup = loop["warm"] / blocked["warm"]
        assert speedup >= min_speedup, (
            f"blocked warm speedup {speedup:.2f}x is below the "
            f"{min_speedup:.2f}x acceptance threshold"
        )
        print(f"\nwarm-cache speedup {speedup:.2f}x "
              f"(gate: >= {min_speedup:.2f}x)", file=out)
    return {
        "table": table,
        "array_backend": backend.name,
        "transfers": {
            "cold": int(blocked["transfers_cold"]),
            "warm": int(blocked["transfers_warm"]),
        },
        "timings": {
            "per_sample_cold": loop["cold"],
            "per_sample_warm": loop["warm"],
            "blocked_cold": blocked["cold"],
            "blocked_warm": blocked["warm"],
        },
    }


def _smoke_parameters():
    """A few-step horizon so CI exercises every code path in seconds."""
    from repro.package3d.chip_example import Date16Parameters

    return Date16Parameters(end_time=10.0, num_time_points=11)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny mesh + short horizon, equivalence checks only "
             "(the CI rot gate; no wall-clock assertion)",
    )
    parser.add_argument(
        "--backend", default=None,
        help="array backend for the blocked configuration (a registered "
             "name: numpy, devicesim, cupy); default resolution rules "
             "apply when omitted",
    )
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        run_comparison(
            resolution=(0.9e-3, 0.4e-3),  # tiny custom mesh spacing
            parameters=_smoke_parameters(),
            num_samples=8,
            repeats=1,
            min_speedup=None,
            backend=arguments.backend,
        )
    else:
        result = run_comparison(
            resolution=os.environ.get("REPRO_BENCH_RESOLUTION", "coarse"),
            num_samples=int(os.environ.get("REPRO_BATCHED_SAMPLES", "64")),
            repeats=int(os.environ.get("REPRO_BATCHED_REPEATS", "3")),
            min_speedup=float(
                os.environ.get("REPRO_BATCHED_MIN_SPEEDUP", "2.0")
            ),
            backend=arguments.backend,
        )
        try:
            from .conftest import write_artifact, write_bench_json
        except ImportError:
            from conftest import write_artifact, write_bench_json
        path = write_artifact("batched_solves.txt", result["table"])
        json_path = write_bench_json(
            "batched_solves",
            timings=result["timings"],
            counters={
                "device_transfers_cold": result["transfers"]["cold"],
                "device_transfers_warm": result["transfers"]["warm"],
            },
            array_backend=result["array_backend"],
        )
        print(f"\n[artifact] {path}")
        print(f"[artifact] {json_path}")
    return 0


def test_batched_solves_benchmark(benchmark):
    """Nightly harness entry: the full comparison incl. the 2x gate."""
    result = benchmark.pedantic(
        lambda: run_comparison(
            resolution=os.environ.get("REPRO_BENCH_RESOLUTION", "coarse"),
            num_samples=int(os.environ.get("REPRO_BATCHED_SAMPLES", "64")),
            repeats=int(os.environ.get("REPRO_BATCHED_REPEATS", "3")),
            min_speedup=float(
                os.environ.get("REPRO_BATCHED_MIN_SPEEDUP", "2.0")
            ),
        ),
        rounds=1, iterations=1,
    )
    from .conftest import bench_timings, write_artifact, write_bench_json

    path = write_artifact("batched_solves.txt", result["table"])
    write_bench_json(
        "batched_solves",
        timings={**bench_timings(benchmark), **result["timings"]},
        counters={
            "device_transfers_cold": result["transfers"]["cold"],
            "device_transfers_warm": result["transfers"]["warm"],
        },
        array_backend=result["array_backend"],
    )
    print(f"\n[artifact] {path}")


if __name__ == "__main__":
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "src")
    )
    sys.exit(main())
