"""Sample-blocked solves vs the per-sample Python loop: wall-clock.

The Monte Carlo hot path used to advance one coupled transient per
elongation sample -- a Python loop of rank-1-ish Woodbury solves and
O(n) vector work per sample.  The blocked fast path advances all S
samples of a chunk through the same time grid at once: one multi-RHS
SuperLU backsolve against an ``(n, S)`` right-hand-side block plus a
stacked ``(S, k, k)`` batched core solve per fixed-point iteration,
turning the per-sample BLAS-2 work into BLAS-3.

Two configurations evaluate the same 64-sample elongation chunk on one
Date16 study each:

* ``per-sample`` -- ``evaluate_traces`` row by row (the old loop);
* ``blocked``    -- ``evaluate_traces_block`` on the full chunk.

Cold = first evaluation against an empty factorization cache; warm = a
second evaluation of the same study (base LUs cached, pure hot-loop
cost).  The acceptance gate asserts the blocked path >= 2x the loop's
warm wall-clock, and that the blocked traces match the loop to the
multi-RHS reorder floor (rtol 1e-12).

Run standalone (``--smoke`` shrinks mesh and horizon for CI)::

    python benchmarks/bench_batched_solves.py [--smoke]

    REPRO_BATCHED_REPEATS      timing repeats per config (default 3)
    REPRO_BATCHED_MIN_SPEEDUP  warm-cache gate (default 2.0; noisy
                               shared runners may need to lower it)
    REPRO_BATCHED_SAMPLES      chunk size (default 64)
    REPRO_BENCH_RESOLUTION     mesh preset for the full run
                               (default coarse)
"""

import argparse
import os
import sys
import time

import numpy as np

#: Deterministic seed for the elongation chunk (matches campaign LHS).
_SEED = 0


def _build_study(resolution, parameters):
    from repro.package3d.uq_study import Date16UncertaintyStudy
    from repro.solvers.cache import FactorizationCache

    return Date16UncertaintyStudy(
        resolution=resolution,
        parameters=parameters,
        factorization_cache=FactorizationCache(max_entries=16),
    )


def _sample_chunk(study, num_samples):
    """``(S, W)`` elongation deltas from the study's own distribution."""
    from repro.uq.sampling import latin_hypercube

    points = latin_hypercube(num_samples, study.num_wires, seed=_SEED)
    distribution = study.elongation_distribution
    return np.column_stack([
        distribution.ppf(points[:, wire])
        for wire in range(study.num_wires)
    ])


def _time_configurations(resolution, parameters, num_samples, repeats):
    """Best-of-``repeats`` cold/warm seconds per configuration.

    Rounds are interleaved across configurations (so load drift on a
    shared machine hits every configuration alike) and aggregated with
    ``min`` -- scheduling noise only ever adds time.
    """
    results = {
        name: {"name": name, "cold": [], "warm": []}
        for name in ("per-sample", "blocked")
    }
    for _ in range(repeats):
        study = _build_study(resolution, parameters)
        deltas = _sample_chunk(study, num_samples)

        start = time.perf_counter()
        loop_traces = np.stack(
            [study.evaluate_traces(row) for row in deltas]
        )
        results["per-sample"]["cold"].append(time.perf_counter() - start)
        start = time.perf_counter()
        np.stack([study.evaluate_traces(row) for row in deltas])
        results["per-sample"]["warm"].append(time.perf_counter() - start)
        results["per-sample"]["traces"] = loop_traces

        study = _build_study(resolution, parameters)
        start = time.perf_counter()
        block_traces = study.evaluate_traces_block(deltas)
        results["blocked"]["cold"].append(time.perf_counter() - start)
        start = time.perf_counter()
        study.evaluate_traces_block(deltas)
        results["blocked"]["warm"].append(time.perf_counter() - start)
        results["blocked"]["traces"] = block_traces

    for entry in results.values():
        entry["cold"] = float(np.min(entry["cold"]))
        entry["warm"] = float(np.min(entry["warm"]))
    return results


def run_comparison(resolution="coarse", parameters=None, num_samples=64,
                   repeats=3, min_speedup=None, out=sys.stdout):
    """Blocked vs per-sample on one chunk; returns the artifact table.

    ``min_speedup`` (full runs) asserts the blocked warm speedup;
    ``None`` (smoke) only checks the equivalence and structure.
    """
    from repro.reporting.tables import format_table

    print(f"timing 2 configurations x {repeats} interleaved rounds "
          f"({num_samples}-sample chunk) ...", file=out, flush=True)
    results = _time_configurations(
        resolution, parameters, num_samples, repeats
    )

    loop = results["per-sample"]
    rows = []
    for name in ("per-sample", "blocked"):
        r = results[name]
        deviation = float(np.max(np.abs(r["traces"] - loop["traces"])))
        rows.append((
            name,
            f"{r['cold']:.3f}", f"{r['warm']:.3f}",
            f"{loop['cold'] / r['cold']:.2f}x",
            f"{loop['warm'] / r['warm']:.2f}x",
            f"{r['cold'] / num_samples * 1e3:.1f}",
            f"{deviation:.2e}",
        ))
    table = format_table(
        ("configuration", "cold [s]", "warm [s]", "cold speedup",
         "warm speedup", "amortized [ms/sample]", "max |dT| [K]"),
        rows,
        title=f"BATCHED SOLVES ({resolution} mesh, "
              f"S={num_samples}, best of {repeats})",
    )
    print("\n" + table, file=out)

    # Equivalence gate: the blocked chunk reproduces the loop to the
    # multi-RHS backsolve's reorder floor.
    blocked = results["blocked"]
    scale = float(np.max(np.abs(loop["traces"])))
    deviation = float(np.max(np.abs(blocked["traces"] - loop["traces"])))
    assert deviation <= 1.0e-12 * scale, (
        f"blocked traces deviate {deviation:.3e} K from the per-sample "
        f"loop (allowed {1.0e-12 * scale:.3e})"
    )
    if min_speedup is not None:
        speedup = loop["warm"] / blocked["warm"]
        assert speedup >= min_speedup, (
            f"blocked warm speedup {speedup:.2f}x is below the "
            f"{min_speedup:.2f}x acceptance threshold"
        )
        print(f"\nwarm-cache speedup {speedup:.2f}x "
              f"(gate: >= {min_speedup:.2f}x)", file=out)
    return table


def _smoke_parameters():
    """A few-step horizon so CI exercises every code path in seconds."""
    from repro.package3d.chip_example import Date16Parameters

    return Date16Parameters(end_time=10.0, num_time_points=11)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny mesh + short horizon, equivalence checks only "
             "(the CI rot gate; no wall-clock assertion)",
    )
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        table = run_comparison(
            resolution=(0.9e-3, 0.4e-3),  # tiny custom mesh spacing
            parameters=_smoke_parameters(),
            num_samples=8,
            repeats=1,
            min_speedup=None,
        )
    else:
        table = run_comparison(
            resolution=os.environ.get("REPRO_BENCH_RESOLUTION", "coarse"),
            num_samples=int(os.environ.get("REPRO_BATCHED_SAMPLES", "64")),
            repeats=int(os.environ.get("REPRO_BATCHED_REPEATS", "3")),
            min_speedup=float(
                os.environ.get("REPRO_BATCHED_MIN_SPEEDUP", "2.0")
            ),
        )
        try:
            from .conftest import write_artifact
        except ImportError:
            from conftest import write_artifact
        path = write_artifact("batched_solves.txt", table)
        print(f"\n[artifact] {path}")
    return 0


def test_batched_solves_benchmark(benchmark):
    """Nightly harness entry: the full comparison incl. the 2x gate."""
    table = benchmark.pedantic(
        lambda: run_comparison(
            resolution=os.environ.get("REPRO_BENCH_RESOLUTION", "coarse"),
            num_samples=int(os.environ.get("REPRO_BATCHED_SAMPLES", "64")),
            repeats=int(os.environ.get("REPRO_BATCHED_REPEATS", "3")),
            min_speedup=float(
                os.environ.get("REPRO_BATCHED_MIN_SPEEDUP", "2.0")
            ),
        ),
        rounds=1, iterations=1,
    )
    from .conftest import bench_timings, write_artifact, write_bench_json

    path = write_artifact("batched_solves.txt", table)
    write_bench_json(
        "batched_solves", timings=bench_timings(benchmark)
    )
    print(f"\n[artifact] {path}")


if __name__ == "__main__":
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "src")
    )
    sys.exit(main())
