"""Sensitivity campaign scaling: Saltelli evaluations/sec vs. workers.

Runs the same small Date16 Sobol sensitivity campaign (``M (d + 2)``
coupled transients) through the serial executor and process pools of
growing size.  Each worker builds the problem once (mesh + base LU +
Woodbury operators) and then streams design rows, so throughput should
scale with workers once the per-worker setup is amortized.  The bench
also asserts the executors agree bitwise -- the campaign contract -- and
reports the resulting wire ranking.

    REPRO_SOBOL_BASE_SAMPLES   base samples M per configuration (default 2)
    REPRO_SOBOL_WORKERS        comma-separated pool sizes (default "1,2,4")
"""

import os
import time

import numpy as np

from repro.campaign import (
    ParallelExecutor,
    SerialExecutor,
    run_campaign,
)
from repro.package3d.scenarios import date16_sensitivity_spec
from repro.reporting.tables import format_table

from .conftest import (
    bench_resolution,
    bench_timings,
    write_artifact,
    write_bench_json,
)


def _base_samples():
    return int(os.environ.get("REPRO_SOBOL_BASE_SAMPLES", "2"))


def _worker_counts():
    raw = os.environ.get("REPRO_SOBOL_WORKERS", "1,2,4")
    return [int(part) for part in raw.split(",") if part.strip()]


def test_sensitivity_scaling(benchmark):
    num_base_samples = _base_samples()
    spec = date16_sensitivity_spec(
        num_base_samples=num_base_samples,
        chunk_size=max(1, num_base_samples),
        resolution=bench_resolution(),
        qoi="final",
    )
    num_evaluations = spec.num_samples

    start = time.time()
    serial_result = run_campaign(
        spec, executor=SerialExecutor(),
        reducer={"kind": "jansen", "num_bootstrap": 0},
    )
    serial_elapsed = time.time() - start
    rows = [("serial", f"{serial_elapsed:.2f}",
             f"{num_evaluations / serial_elapsed:.2f}", "1.0x")]

    last_result = None

    def run_largest_pool():
        return run_campaign(
            spec,
            executor=ParallelExecutor(num_workers=_worker_counts()[-1]),
            reducer={"kind": "jansen", "num_bootstrap": 0},
        )

    for workers in _worker_counts():
        start = time.time()
        if workers == _worker_counts()[-1]:
            result = benchmark.pedantic(
                run_largest_pool, rounds=1, iterations=1
            )
        else:
            result = run_campaign(
                spec, executor=ParallelExecutor(num_workers=workers),
                reducer={"kind": "jansen", "num_bootstrap": 0},
            )
        elapsed = time.time() - start
        assert np.array_equal(result.first_order, serial_result.first_order)
        assert np.array_equal(result.total, serial_result.total)
        rows.append(
            (f"parallel x{workers}", f"{elapsed:.2f}",
             f"{num_evaluations / elapsed:.2f}",
             f"{serial_elapsed / elapsed:.1f}x")
        )
        last_result = result

    component = last_result.summary()["argmax_output"]
    ranking = last_result.ranking(component=component)
    text = format_table(
        ["executor", "wall [s]", "evals/s", "speedup"],
        rows,
        title=(
            f"SENSITIVITY SCALING ({num_evaluations} Date16 Saltelli "
            f"evaluations, M={num_base_samples}, d={spec.dimension}, "
            f"qoi=final)"
        ),
    )
    text += (
        f"\nwire ranking by total Sobol index "
        f"(output {component}): {ranking}\n"
    )
    path = write_artifact("sensitivity_scaling.txt", text)
    write_bench_json(
        "sensitivity_scaling",
        timings={
            "serial": serial_elapsed, **bench_timings(benchmark),
        },
        counters={"evaluations": num_evaluations},
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")

    assert last_result is not None
    assert last_result.indices.num_evaluations == num_evaluations
