"""Fig. 7 + Section V-D: the Monte Carlo temperature study.

Regenerates the expected temperature of the hottest bonding wire over time
with its 6-sigma band, and the quoted scalars sigma_MC, error_MC and the
band's crossing of the critical temperature.

Two configurations are produced:

* **paper parameters** (V_bw = 40 mV): our geometry reaches a lower
  absolute temperature than the authors' (see EXPERIMENTS.md for the
  power-balance analysis), so the absolute values differ while every
  qualitative feature (monotone saturation, steady state by ~50 s,
  sigma_MC a few per cent of the rise, error_MC = sigma/sqrt(M)) holds;
* **stress variant** (V_bw = 118 mV): reproduces the *picture* of Fig. 7 --
  the expected trace approaches the critical temperature and the 6-sigma
  band crosses it mid-transient.

REPRO_FIG7_SAMPLES controls the sample count (default 40, paper 1000).
"""

import numpy as np

from repro.package3d.chip_example import Date16Parameters
from repro.package3d.uq_study import Date16UncertaintyStudy
from repro.reporting.figures import fig7_data
from repro.reporting.series import write_csv

from .conftest import (
    artifact_path,
    bench_resolution,
    bench_timings,
    fig7_samples,
    write_artifact,
    write_bench_json,
)


def _run_study(study, num_samples):
    return study.run_monte_carlo(num_samples=num_samples, seed=0)


def _report(tag, result, num_samples):
    mean, std = result.hottest_wire_traces()
    data = fig7_data(result.times, mean, std, num_samples)
    csv = write_csv(
        artifact_path(f"fig7_{tag}.csv"),
        ["time_s", "E_K", "lower_6sigma_K", "upper_6sigma_K"],
        [data["times"], data["mean"], data["lower"], data["upper"]],
    )
    crossing = data["band_crossing_time"]
    lines = [
        f"FIG. 7 ({tag}): EXPECTED TEMPERATURE OF THE HOTTEST WIRE",
        f"M = {num_samples} samples "
        f"(paper: M = 1000)",
        f"hottest wire: {result.wire_names[result.hottest_wire_index]}",
        f"E(50 s)    = {data['mean'][-1]:8.2f} K",
        f"sigma_MC   = {data['sigma_mc']:8.3f} K   (paper: 4.65 K)",
        f"error_MC   = {data['error_mc']:8.4f} K   (paper: 0.147 K)",
        f"T_critical = {data['t_critical']:8.1f} K",
        "6-sigma band crossing: "
        + ("never" if crossing is None else f"t = {crossing:.1f} s "
           "(paper: t > 26 s)"),
        "",
        "   t [s]    E [K]    E+6sig   E-6sig",
    ]
    for index in range(0, data["times"].size, 5):
        lines.append(
            f"  {data['times'][index]:6.1f}  {data['mean'][index]:8.2f} "
            f"{data['upper'][index]:8.2f} {data['lower'][index]:8.2f}"
        )
    text = "\n".join(lines)
    path = write_artifact(f"fig7_{tag}.txt", text)
    print("\n" + text)
    print(f"\n[artifacts] {path}, {csv}")
    return data


def test_fig7_paper_parameters(benchmark, uq_study):
    """The study with the paper's exact Table II parameters."""
    num_samples = fig7_samples()
    result = benchmark.pedantic(
        _run_study, args=(uq_study, num_samples), rounds=1, iterations=1
    )
    data = _report("paper_params", result, num_samples)
    write_bench_json(
        "fig7_mc_temperature",
        timings=bench_timings(benchmark),
        counters={"samples": num_samples},
        sigma_mc_kelvin=float(data["sigma_mc"]),
        error_mc_kelvin=float(data["error_mc"]),
    )

    # Qualitative claims that must hold on any mesh:
    assert np.all(np.diff(data["mean"]) > -1e-6)      # monotone heating
    assert data["mean"][-1] < data["t_critical"]      # claim 2
    assert data["sigma_mc"] > 0.0                     # claim 4
    assert data["error_mc"] == data["sigma_mc"] / np.sqrt(num_samples)
    # Steady state by the end of the window (claim 1).
    rise = data["mean"][-1] - data["mean"][0]
    assert abs(data["mean"][-1] - data["mean"][-3]) < 0.02 * rise


def test_fig7_stress_variant(benchmark):
    """Elevated drive voltage: reproduces the Fig. 7 crossing picture."""
    num_samples = max(10, fig7_samples() // 2)
    parameters = Date16Parameters(pair_voltage=0.118)
    study = Date16UncertaintyStudy(
        parameters=parameters, resolution=bench_resolution(), tolerance=1e-3
    )
    result = benchmark.pedantic(
        _run_study, args=(study, num_samples), rounds=1, iterations=1
    )
    data = _report("stress_118mV", result, num_samples)

    # The stress variant must show the paper's phenomenon: the band gets
    # close to / crosses the critical line while the mean stays below it
    # for most of the transient.
    assert data["mean"][-1] > 450.0
    assert data["upper"][-1] > 0.97 * data["t_critical"]
