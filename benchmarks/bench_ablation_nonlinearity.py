"""Ablation: material temperature dependence on vs. frozen.

The two-directional coupling of the paper closes through sigma(T) and
lambda(T).  Freezing them at 300 K makes the problem one-directionally
coupled; this bench quantifies the difference (the voltage-driven wires
dissipate *less* when hot, so the nonlinear model runs cooler).
"""


from repro.coupled.electrothermal import CoupledSolver
from repro.package3d.chip_example import build_date16_problem
from repro.materials.library import copper
from repro.reporting.tables import format_table
from repro.solvers.time_integration import TimeGrid

from .conftest import (
    bench_resolution,
    bench_timings,
    write_artifact,
    write_bench_json,
)


def _run(frozen, pair_voltage=0.120):
    """Use the stress voltage so the effect is clearly visible."""
    from repro.package3d.chip_example import Date16Parameters

    parameters = Date16Parameters(pair_voltage=pair_voltage)
    conductor = copper().frozen(300.0) if frozen else copper()
    problem, _ = build_date16_problem(
        parameters=parameters,
        resolution=bench_resolution(),
        conductor_material=conductor,
    )
    solver = CoupledSolver(problem, mode="full", tolerance=1e-3)
    result = solver.solve_transient(TimeGrid.from_num_points(50.0, 26))
    hottest = result.hottest_wire_index()
    return (
        float(result.wire_temperatures[-1, hottest]),
        float(result.wire_powers[-1, hottest]),
        float(result.wire_powers[1, hottest]),
    )


def test_ablation_nonlinearity(benchmark):
    nonlinear = benchmark.pedantic(_run, args=(False,), rounds=1,
                                   iterations=1)
    frozen = _run(True)

    rows = [
        ("nonlinear sigma(T), lambda(T)", f"{nonlinear[0]:.2f}",
         f"{nonlinear[1] * 1e3:.2f}"),
        ("frozen at 300 K", f"{frozen[0]:.2f}", f"{frozen[1] * 1e3:.2f}"),
        ("difference", f"{nonlinear[0] - frozen[0]:+.2f}",
         f"{(nonlinear[1] - frozen[1]) * 1e3:+.2f}"),
    ]
    text = format_table(
        ["model", "T_hottest(50 s) [K]", "P_hottest(50 s) [mW]"],
        rows,
        title="ABLATION: MATERIAL NONLINEARITY (V_bw = 120 mV)",
    )
    path = write_artifact("ablation_nonlinearity.txt", text)
    write_bench_json(
        "ablation_nonlinearity",
        timings=bench_timings(benchmark),
        temperature_difference_kelvin=nonlinear[0] - frozen[0],
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")

    # Voltage-driven: the nonlinear wire dissipates less once hot, so it
    # ends up cooler than the frozen-sigma model.
    assert nonlinear[1] < frozen[1]
    assert nonlinear[0] < frozen[0]
    # The nonlinear run's power sags over time (feedback in action)...
    assert nonlinear[1] < nonlinear[2]
    # ...while the frozen run's power is time-independent apart from the
    # (removed) material feedback.
