"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper: it benchmarks
the computation with pytest-benchmark and writes the reproduced artifact
(text table / CSV series) to ``benchmarks/artifacts/``.

Sample counts and mesh resolutions are chosen so the full suite runs in a
few minutes; environment variables scale them up towards the paper's
numbers:

    REPRO_FIG7_SAMPLES   Monte Carlo samples for Fig. 7 (default 40,
                         paper: 1000)
    REPRO_BENCH_RESOLUTION  mesh preset for the field benches
                         (default "coarse")
"""

import os

import pytest

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")


def artifact_path(name):
    """Absolute path for a named artifact file (directory auto-created)."""
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    return os.path.join(ARTIFACT_DIR, name)


def write_artifact(name, text):
    """Write a text artifact and return its path."""
    path = artifact_path(name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    return path


def fig7_samples():
    """Monte Carlo sample count for the Fig. 7 bench."""
    return int(os.environ.get("REPRO_FIG7_SAMPLES", "40"))


def bench_resolution():
    """Mesh preset for the field benches."""
    return os.environ.get("REPRO_BENCH_RESOLUTION", "coarse")


@pytest.fixture(scope="session")
def uq_study():
    """One solver/mesh shared by every bench that runs the package model."""
    from repro.package3d.uq_study import Date16UncertaintyStudy

    return Date16UncertaintyStudy(
        resolution=bench_resolution(), tolerance=1e-3
    )
