"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper: it benchmarks
the computation with pytest-benchmark and writes the reproduced artifact
(text table / CSV series) to ``benchmarks/artifacts/``.

Sample counts and mesh resolutions are chosen so the full suite runs in a
few minutes; environment variables scale them up towards the paper's
numbers:

    REPRO_FIG7_SAMPLES   Monte Carlo samples for Fig. 7 (default 40,
                         paper: 1000)
    REPRO_BENCH_RESOLUTION  mesh preset for the field benches
                         (default "coarse")
"""

import json
import os
import time

import pytest

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")


def artifact_path(name):
    """Absolute path for a named artifact file (directory auto-created)."""
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    return os.path.join(ARTIFACT_DIR, name)


def write_artifact(name, text):
    """Write a text artifact and return its path."""
    path = artifact_path(name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    return path


def bench_timings(benchmark):
    """``{name: seconds}`` timing summary of a pytest-benchmark fixture.

    Empty when the fixture never ran (e.g. ``--benchmark-disable`` with
    a pedantic call pattern), so ``write_bench_json`` degrades to a
    counters-only record instead of failing the bench.
    """
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None or not getattr(stats, "data", None):
        return {}
    return {
        "min": stats.min,
        "mean": stats.mean,
        "max": stats.max,
    }


def write_bench_json(name, timings=None, counters=None, **metadata):
    """Write the machine-readable ``BENCH_<name>.json`` artifact.

    ``timings`` maps label -> seconds (or a list of seconds); every
    value is folded into a ``<label>_s`` histogram of a
    :class:`repro.telemetry.MetricsRegistry`, and ``counters`` become
    registry counters -- so nightly tooling parses one schema
    (``metrics`` is a ``MetricsRegistry.as_dict`` payload) across every
    bench.  Extra keyword arguments land verbatim as metadata.
    """
    from repro.telemetry import MetricsRegistry

    registry = MetricsRegistry()
    for label, values in (timings or {}).items():
        if isinstance(values, (int, float)):
            values = [values]
        for value in values:
            registry.observe(f"{label}_s", float(value))
    for label, value in (counters or {}).items():
        registry.increment(label, value)
    payload = {
        "bench": str(name),
        "schema": 1,
        "written_at": time.time(),
        "metrics": registry.as_dict(),
        **metadata,
    }
    path = artifact_path(f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def fig7_samples():
    """Monte Carlo sample count for the Fig. 7 bench."""
    return int(os.environ.get("REPRO_FIG7_SAMPLES", "40"))


def bench_resolution():
    """Mesh preset for the field benches."""
    return os.environ.get("REPRO_BENCH_RESOLUTION", "coarse")


@pytest.fixture(scope="session")
def uq_study():
    """One solver/mesh shared by every bench that runs the package model."""
    from repro.package3d.uq_study import Date16UncertaintyStudy

    return Date16UncertaintyStudy(
        resolution=bench_resolution(), tolerance=1e-3
    )
