"""Fig. 5: probability density of the relative elongation delta.

Regenerates the histogram of the 12 measured elongations and the fitted
normal pdf N(0.17, 0.048^2), asserts the published fit parameters, and
benchmarks the measurement-to-distribution pipeline.
"""

import numpy as np

from repro.package3d.measurements import date16_xray_measurements
from repro.reporting.figures import fig5_data
from repro.reporting.series import write_csv

from .conftest import (
    artifact_path,
    bench_timings,
    write_artifact,
    write_bench_json,
)


def test_fig5_regeneration(benchmark):
    data = benchmark(fig5_data)

    # The published fit (Section IV-B): mu = 0.17, sigma = 0.048.
    assert abs(data["mu"] - 0.17) < 1e-3
    assert abs(data["sigma"] - 0.048) < 1e-3

    # Export the two curves of the figure.
    csv_pdf = write_csv(
        artifact_path("fig5_pdf.csv"),
        ["delta", "pdf"],
        [data["pdf_x"], data["pdf_y"]],
    )
    centers = 0.5 * (data["bin_edges"][:-1] + data["bin_edges"][1:])
    csv_hist = write_csv(
        artifact_path("fig5_histogram.csv"),
        ["delta_bin_center", "density"],
        [centers, data["bin_density"]],
    )

    lines = [
        "FIG. 5: PDF OF THE RELATIVE ELONGATION delta",
        f"fitted normal: mu = {data['mu']:.4f}, sigma = {data['sigma']:.4f}",
        f"paper:         mu = 0.17,   sigma = 0.048",
        f"peak density:  {np.max(data['pdf_y']):.2f} (paper figure: ~8.3)",
        "",
        "histogram (12 samples after the paper's imputation):",
    ]
    for center, density in zip(centers, data["bin_density"]):
        bar = "#" * int(round(density * 4))
        lines.append(f"  delta={center:.3f}  density={density:5.2f}  {bar}")
    text = "\n".join(lines)
    path = write_artifact("fig5_elongation_pdf.txt", text)
    write_bench_json(
        "fig5_elongation_pdf",
        timings=bench_timings(benchmark),
        mu=float(data["mu"]),
        sigma=float(data["sigma"]),
    )
    print("\n" + text)
    print(f"\n[artifacts] {path}, {csv_pdf}, {csv_hist}")


def test_fig5_pipeline(benchmark):
    """Benchmark the raw-measurements -> fitted-distribution pipeline."""
    def pipeline():
        dataset = date16_xray_measurements()
        return dataset.fit_elongation_distribution()

    fit = benchmark(pipeline)
    assert 0.0 < fit.sigma < 0.1
