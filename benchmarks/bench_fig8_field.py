"""Fig. 8: spatial temperature distribution at t = 50 s.

Runs the nominal coupled transient, extracts the temperature slice through
the metal layer, renders it as an ASCII heat map and records the hot-spot
location -- which must lie in the chip / short-wire region, the paper's
observation.
"""


from repro.reporting.figures import ascii_heatmap, fig8_data
from repro.reporting.series import write_csv

from .conftest import (
    artifact_path,
    bench_timings,
    write_artifact,
    write_bench_json,
)


def test_fig8_regeneration(benchmark, uq_study):
    def run_nominal():
        return uq_study.nominal_result(store_fields=False)

    result = benchmark.pedantic(run_nominal, rounds=1, iterations=1)
    grid = uq_study.mesh.grid
    layout = uq_study.mesh.layout
    metal_z = layout.pads[0].z_bottom + 0.5 * layout.pads[0].thickness
    data = fig8_data(grid, result.final_temperatures, z_position=metal_z)

    art = ascii_heatmap(data["temperature"])
    lines = [
        "FIG. 8: SPATIAL TEMPERATURE DISTRIBUTION AT t = 50 s",
        f"slice through the metal layer (z = {metal_z * 1e3:.3f} mm)",
        f"T_min = {data['t_min']:.2f} K, T_max = {data['t_max']:.2f} K",
        "hot spot at (x, y, z) = ("
        + ", ".join(f"{v * 1e3:.2f}" for v in data["hot_spot"])
        + ") mm",
        "",
        art,
    ]
    text = "\n".join(lines)
    path = write_artifact("fig8_field.txt", text)

    # Full slice as CSV (x runs along columns).
    csv = write_csv(
        artifact_path("fig8_slice.csv"),
        ["x_m"] + [f"T_at_y{j}" for j in range(data["temperature"].shape[1])],
        [data["x"]] + [data["temperature"][:, j]
                       for j in range(data["temperature"].shape[1])],
    )
    # Full 3D field for ParaView/VisIt.
    from repro.reporting.vtk import write_rectilinear_vtk

    vtk = write_rectilinear_vtk(
        artifact_path("fig8_field.vtk"),
        grid,
        {
            "temperature": result.final_temperatures[: grid.num_nodes],
            "potential": result.final_potentials[: grid.num_nodes],
        },
    )
    write_bench_json(
        "fig8_field",
        timings=bench_timings(benchmark),
        t_min_kelvin=float(data["t_min"]),
        t_max_kelvin=float(data["t_max"]),
    )
    print("\n" + text)
    print(f"\n[artifacts] {path}, {csv}, {vtk}")

    # The paper's observation: the hottest region is where the contacts
    # are closest, i.e. the center of the package near the chip.
    center = 0.5 * layout.body_x
    hot_x, hot_y, _ = data["hot_spot"]
    assert abs(hot_x - center) < 1.5e-3
    assert abs(hot_y - center) < 1.5e-3
    # And the field spans a visible gradient.
    assert data["t_max"] - data["t_min"] > 0.5
