"""Adaptive-vs-fixed transient stepping: wall-clock on cold/warm caches.

The ROADMAP follow-on behind this bench: the adaptive transient needs
far fewer coupled solves than the paper's fixed 51-point grid, but every
fresh ``dt`` used to force a new thermal base matrix, a new
``WoodburySolver`` and a new ``splu`` -- so wall-clock favored the fixed
grid on a cold factorization cache.  Quantizing the controller onto the
geometric dt ladder (plus the one-solve predictor error estimate) caps
the factorizations at the ladder-rung count and flips the comparison.

Three configurations run on one nominal Date16 trace each:

* ``fixed``               -- the paper's 51-point implicit Euler grid;
* ``raw-adaptive``        -- step-doubling controller, unquantized (one
                             factorization per fresh dt: the old path);
* ``quantized-adaptive``  -- dt ladder + predictor estimate (default).

Cold = first evaluation against an empty factorization cache; warm = a
second evaluation of the same study (every per-dt solver cached).  The
acceptance gate asserts quantized-adaptive >= 1.3x the fixed grid's
cold wall-clock at the default tolerance, with thermal factorizations
equal to the number of visited ladder rungs.

Run standalone (``--smoke`` shrinks mesh and horizon for CI)::

    python benchmarks/bench_adaptive_stepping.py [--smoke]

    REPRO_ADAPTIVE_REPEATS      timing repeats per config (default 3)
    REPRO_ADAPTIVE_MIN_SPEEDUP  cold-cache gate (default 1.3; noisy
                                shared runners may need to lower it)
    REPRO_BENCH_RESOLUTION      mesh preset for the full run
                                (default coarse)
"""

import argparse
import os
import sys
import time

import numpy as np

#: Nominal elongation sample (the distribution mean) used for every run.
_NOMINAL_DELTA = 0.17


def _build_study(time_stepping, quantize, resolution, parameters):
    from repro.package3d.uq_study import Date16UncertaintyStudy
    from repro.solvers.cache import FactorizationCache

    kwargs = {}
    if time_stepping == "adaptive":
        kwargs["time_stepping"] = "adaptive"
        kwargs["quantize_dt"] = quantize
        if not quantize:
            # The pre-quantization path: raw step doubling.
            kwargs["adaptive_options"] = {"error_estimate": "doubling"}
    return Date16UncertaintyStudy(
        resolution=resolution,
        parameters=parameters,
        factorization_cache=FactorizationCache(max_entries=16),
        **kwargs,
    )


def _time_configurations(configurations, resolution, parameters, repeats):
    """Best-of-``repeats`` cold/warm seconds per configuration.

    Rounds are interleaved across configurations (so load drift on a
    shared machine hits every configuration alike) and aggregated with
    ``min`` -- scheduling noise only ever adds time.
    """
    deltas = np.full(12, _NOMINAL_DELTA)
    results = {
        name: {"name": name, "cold": [], "warm": []}
        for name, _, _ in configurations
    }
    for _ in range(repeats):
        for name, stepping, quantize in configurations:
            study = _build_study(stepping, quantize, resolution,
                                 parameters)
            start = time.perf_counter()
            traces = study.evaluate_traces(deltas)
            results[name]["cold"].append(time.perf_counter() - start)
            # Snapshot statistics NOW: the detail table describes the
            # cold run (the warm run's per-run deltas are all zero).
            result = study.last_adaptive_result
            results[name].update(
                traces=traces,
                adaptive=result,
                solves=(result.num_solves if result is not None
                        else study.time_grid.num_steps),
                factorizations=study.solver.thermal_solver_builds,
            )
            start = time.perf_counter()
            study.evaluate_traces(deltas)
            results[name]["warm"].append(time.perf_counter() - start)
    for entry in results.values():
        entry["cold"] = float(np.min(entry["cold"]))
        entry["warm"] = float(np.min(entry["warm"]))
    return results


def run_comparison(resolution="coarse", parameters=None, repeats=3,
                   min_speedup=None, out=sys.stdout):
    """Run all three configurations; returns the rows for the artifact.

    ``min_speedup`` (full runs) asserts the quantized-adaptive cold
    speedup; ``None`` (smoke) only checks the structural properties.
    """
    from repro.reporting import format_adaptive_summary
    from repro.reporting.tables import format_table

    configurations = (
        ("fixed", "fixed", False),
        ("raw-adaptive", "adaptive", False),
        ("quantized-adaptive", "adaptive", True),
    )
    print(f"timing {len(configurations)} configurations x {repeats} "
          "interleaved rounds ...", file=out, flush=True)
    results = _time_configurations(
        configurations, resolution, parameters, repeats
    )

    fixed = results["fixed"]
    rows = []
    for name in results:
        r = results[name]
        deviation = float(np.max(np.abs(r["traces"] - fixed["traces"])))
        rows.append((
            name,
            f"{r['cold']:.3f}", f"{r['warm']:.3f}",
            f"{fixed['cold'] / r['cold']:.2f}x",
            str(r["solves"]), str(r["factorizations"]),
            f"{deviation:.3f}",
        ))
    table = format_table(
        ("configuration", "cold [s]", "warm [s]", "cold speedup",
         "coupled solves", "thermal LUs", "max |dT| [K]"),
        rows,
        title=f"ADAPTIVE STEPPING ({resolution} mesh, "
              f"best of {repeats})",
    )
    print("\n" + table, file=out)
    quantized = results["quantized-adaptive"]
    print("\n" + format_adaptive_summary(
        quantized["adaptive"], title="Quantized-adaptive cost detail"
    ), file=out)

    # Structural gate: factorizations == visited ladder rungs.
    adaptive = quantized["adaptive"]
    assert quantized["factorizations"] == adaptive.num_distinct_solver_dts, (
        f"{quantized['factorizations']} thermal factorizations for "
        f"{adaptive.num_distinct_solver_dts} ladder rungs"
    )
    assert quantized["solves"] < fixed["solves"]
    if min_speedup is not None:
        speedup = fixed["cold"] / quantized["cold"]
        assert speedup >= min_speedup, (
            f"quantized-adaptive cold speedup {speedup:.2f}x is below "
            f"the {min_speedup:.2f}x acceptance threshold"
        )
        print(f"\ncold-cache speedup {speedup:.2f}x "
              f"(gate: >= {min_speedup:.2f}x)", file=out)
    return table


def _smoke_parameters():
    """A few-step horizon so CI exercises every code path in seconds."""
    from repro.package3d.chip_example import Date16Parameters

    return Date16Parameters(end_time=10.0, num_time_points=11)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny mesh + short horizon, structural checks only "
             "(the CI rot gate; no wall-clock assertion)",
    )
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        table = run_comparison(
            resolution=(0.9e-3, 0.4e-3),  # tiny custom mesh spacing
            parameters=_smoke_parameters(),
            repeats=1,
            min_speedup=None,
        )
    else:
        resolution = os.environ.get("REPRO_BENCH_RESOLUTION", "coarse")
        repeats = int(os.environ.get("REPRO_ADAPTIVE_REPEATS", "3"))
        table = run_comparison(
            resolution=resolution, repeats=repeats,
            min_speedup=float(
                os.environ.get("REPRO_ADAPTIVE_MIN_SPEEDUP", "1.3")
            ),
        )
        try:
            from .conftest import write_artifact
        except ImportError:
            from conftest import write_artifact
        path = write_artifact("adaptive_stepping.txt", table)
        print(f"\n[artifact] {path}")
    return 0


def test_adaptive_stepping_benchmark(benchmark):
    """Nightly harness entry: the full comparison incl. the 1.3x gate."""
    table = benchmark.pedantic(
        lambda: run_comparison(
            resolution=os.environ.get("REPRO_BENCH_RESOLUTION", "coarse"),
            repeats=int(os.environ.get("REPRO_ADAPTIVE_REPEATS", "3")),
            min_speedup=float(
                os.environ.get("REPRO_ADAPTIVE_MIN_SPEEDUP", "1.3")
            ),
        ),
        rounds=1, iterations=1,
    )
    from .conftest import bench_timings, write_artifact, write_bench_json

    path = write_artifact("adaptive_stepping.txt", table)
    write_bench_json(
        "adaptive_stepping", timings=bench_timings(benchmark)
    )
    print(f"\n[artifact] {path}")


if __name__ == "__main__":
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "src")
    )
    sys.exit(main())
