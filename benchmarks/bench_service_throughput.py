"""Service-layer throughput: N tiny concurrent campaigns over HTTP.

Measures the overhead the service layer adds around the campaign
runner: N small campaigns are submitted through the HTTP front end of
an in-process :class:`repro.service.CampaignService` and run
concurrently under the manager's worker budget.  Reported per job is
the submit -> complete latency (queue wait + run + bookkeeping), plus
aggregate jobs/min -- the number a nightly trend can watch for service
regressions (lock contention, queue persistence, status polling).

Writes ``benchmarks/artifacts/BENCH_service_throughput.json``.

Run standalone (``--smoke`` is the CI mode; identical workload, just
asserts completion instead of timing stability)::

    python benchmarks/bench_service_throughput.py [--smoke]
"""

import argparse
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
# Repo root for the tests.service fixture problems, src/ for running
# against the tree without an installed package.
for entry in (REPO_ROOT, os.path.join(REPO_ROOT, "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.campaign import CampaignSpec, ScenarioSpec  # noqa: E402
from repro.service import CampaignService, job_status, submit_job  # noqa: E402

from tests.service.problems import MODULE, SLEEPY_PROBLEM  # noqa: E402

NUM_JOBS = 8
MAX_WORKERS = 4


def tiny_spec(index):
    """A distinct-but-cheap campaign per job (seed varies)."""
    return CampaignSpec(
        name=f"throughput-{index}",
        scenario=ScenarioSpec(
            problem=SLEEPY_PROBLEM,
            qoi="identity",
            options={"sleep_s": 0.0},
            module=MODULE,
        ),
        distribution={"kind": "normal", "mu": 0.0, "sigma": 1.0},
        dimension=3,
        num_samples=12,
        seed=100 + index,
        chunk_size=4,
    )


def run_bench(root, num_jobs=NUM_JOBS, max_workers=MAX_WORKERS):
    """Submit ``num_jobs`` campaigns, wait for all; returns metrics."""
    with CampaignService(root, max_workers=max_workers) as service:
        start = time.perf_counter()
        jobs = [
            submit_job(service.url, tiny_spec(index))
            for index in range(num_jobs)
        ]
        pending = {job["job_id"] for job in jobs}
        deadline = time.monotonic() + 300.0
        while pending and time.monotonic() < deadline:
            for job_id in sorted(pending):
                status = job_status(service.url, job_id)
                if status["state"] in ("completed", "failed"):
                    if status["state"] != "completed":
                        raise SystemExit(
                            f"FAIL: {job_id} failed: "
                            f"{status.get('error')}"
                        )
                    pending.discard(job_id)
            time.sleep(0.02)
        if pending:
            raise SystemExit(f"FAIL: jobs never finished: {pending}")
        wall_s = time.perf_counter() - start
        latencies = [
            record.finished_walltime - record.submitted_walltime
            for record in service.manager.jobs(states=("completed",))
        ]
    return {
        "num_jobs": num_jobs,
        "max_workers": max_workers,
        "wall_s": wall_s,
        "latencies_s": latencies,
        "jobs_per_min": 60.0 * num_jobs / wall_s,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: same workload, prints and asserts completion",
    )
    parser.add_argument("--jobs", type=int, default=NUM_JOBS)
    parser.add_argument("--max-workers", type=int, default=MAX_WORKERS)
    arguments = parser.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-service-") as root:
        metrics = run_bench(
            root, num_jobs=arguments.jobs,
            max_workers=arguments.max_workers,
        )

    latencies = metrics["latencies_s"]
    print(f"{metrics['num_jobs']} jobs over {metrics['max_workers']} "
          f"workers in {metrics['wall_s']:.2f}s "
          f"({metrics['jobs_per_min']:.0f} jobs/min)")
    print(f"submit->complete latency: min {min(latencies):.3f}s  "
          f"mean {sum(latencies) / len(latencies):.3f}s  "
          f"max {max(latencies):.3f}s")

    try:
        from .conftest import write_bench_json
    except ImportError:
        from conftest import write_bench_json
    path = write_bench_json(
        "service_throughput",
        timings={
            "submit_to_complete": latencies,
            "campaign_wall": metrics["wall_s"],
        },
        counters={
            "jobs": metrics["num_jobs"],
            "max_workers": metrics["max_workers"],
        },
        jobs_per_min=metrics["jobs_per_min"],
        smoke=bool(arguments.smoke),
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke
    raise SystemExit(main())
