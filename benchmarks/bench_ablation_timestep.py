"""Ablation: time discretization (implicit Euler step size + adaptivity).

The paper fixes 51 points over 50 s (Table II).  This bench measures the
first-order convergence of implicit Euler on the package transient and
compares the adaptive step-doubling controller against fixed stepping at
matched accuracy.
"""

import numpy as np

from repro.coupled.electrothermal import CoupledSolver
from repro.package3d.chip_example import build_date16_problem
from repro.reporting.tables import format_table
from repro.solvers.adaptive import adaptive_implicit_euler
from repro.solvers.time_integration import TimeGrid

from .conftest import (
    bench_resolution,
    bench_timings,
    write_artifact,
    write_bench_json,
)

END_TIME = 50.0


def test_ablation_time_step(benchmark):
    problem, _ = build_date16_problem(resolution=bench_resolution())

    def run_fixed(num_steps):
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-4)
        result = solver.solve_transient(TimeGrid(END_TIME, num_steps))
        return float(np.max(result.final_wire_temperatures())), solver

    # Reference: very fine fixed stepping.
    reference, _ = run_fixed(400)

    rows = []
    errors = {}
    coarse_result = benchmark.pedantic(
        run_fixed, args=(25,), rounds=1, iterations=1
    )
    for num_steps in (25, 50, 100, 200):
        if num_steps == 25:
            value = coarse_result[0]
        else:
            value, _ = run_fixed(num_steps)
        errors[num_steps] = abs(value - reference)
        rows.append(
            (
                f"fixed, {num_steps} steps",
                f"{END_TIME / num_steps:.2f}",
                f"{value:.3f}",
                f"{errors[num_steps]:.4f}",
            )
        )

    # Adaptive controller at a tolerance matched to the 50-step error.
    solver = CoupledSolver(problem, mode="fast", tolerance=1e-4)

    def step(state, dt):
        new_state, _, _ = solver._step_fast(state, dt)
        return new_state

    adaptive = adaptive_implicit_euler(
        step,
        problem.initial_temperatures(),
        end_time=END_TIME,
        initial_dt=1.0,
        tolerance=0.05,
    )
    adaptive_value = float(
        np.max(problem.topology.wire_temperatures(adaptive.final))
    )
    rows.append(
        (
            f"adaptive (tol 0.05 K), {adaptive.accepted} steps",
            "0.5..%.1f" % np.max(adaptive.step_sizes),
            f"{adaptive_value:.3f}",
            f"{abs(adaptive_value - reference):.4f}",
        )
    )
    rows.append(("reference, 400 steps", "0.125", f"{reference:.3f}", "--"))

    text = format_table(
        ["scheme", "dt [s]", "T_hottest(50 s) [K]", "error vs ref [K]"],
        rows,
        title="ABLATION: TIME DISCRETIZATION (implicit Euler)",
    )
    ratio = errors[25] / errors[100]
    text += (
        f"\n\nerror(25 steps) / error(100 steps) = {ratio:.2f} "
        "(first order predicts 4)"
    )
    path = write_artifact("ablation_timestep.txt", text)
    write_bench_json(
        "ablation_timestep",
        timings=bench_timings(benchmark),
        counters={
            "adaptive_accepted": adaptive.accepted,
            "adaptive_rejected": adaptive.rejected,
            "adaptive_solves": adaptive.num_solves,
        },
        convergence_ratio=ratio,
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")

    # First-order convergence: halving dt roughly halves the error.
    assert errors[50] < errors[25]
    assert errors[100] < errors[50]
    assert 2.0 < ratio < 8.0
    # The paper's 1 s step (50 steps) errs well below a kelvin.
    assert errors[50] < 1.0
