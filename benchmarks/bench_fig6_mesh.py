"""Fig. 6: the package model and its hexahedral mesh.

Regenerates the mesh statistics (node/cell counts, spacing range, material
volume fractions) of the Fig. 6 model and benchmarks the mesher.
"""

from repro.package3d.chip_example import date16_layout
from repro.package3d.meshing import build_package_mesh
from repro.reporting.tables import format_table

from .conftest import (
    bench_resolution,
    bench_timings,
    write_artifact,
    write_bench_json,
)


def test_fig6_mesh_regeneration(benchmark):
    layout = date16_layout()

    mesh = benchmark(build_package_mesh, layout, bench_resolution())
    stats = mesh.statistics()

    rows = [
        ("Package body", f"{layout.body_x * 1e3:.2f} x "
                         f"{layout.body_y * 1e3:.2f} x "
                         f"{layout.height * 1e3:.2f} mm"),
        ("Contact pads", str(layout.num_pads)),
        ("Bonding wires", str(layout.num_wires)),
        ("Grid shape", " x ".join(str(n) for n in stats["shape"])),
        ("Nodes", str(stats["nodes"])),
        ("Cells", str(stats["cells"])),
        ("Edges", str(stats["edges"])),
        ("Min spacing", f"{stats['min_spacing'] * 1e6:.1f} um"),
        ("Max spacing", f"{stats['max_spacing'] * 1e6:.1f} um"),
    ]
    for name, fraction in sorted(stats["volume_fractions"].items()):
        rows.append((f"Volume fraction {name}", f"{fraction:.4f}"))
    text = format_table(
        ["Quantity", "Value"], rows,
        title="FIG. 6: PACKAGE MODEL AND HEXAHEDRAL MESH",
    )
    path = write_artifact("fig6_mesh.txt", text)
    write_bench_json(
        "fig6_mesh",
        timings=bench_timings(benchmark),
        counters={
            "nodes": stats["nodes"],
            "cells": stats["cells"],
            "edges": stats["edges"],
        },
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")

    # Structural checks: the paper's model.
    assert layout.num_pads == 28
    assert layout.num_wires == 12
    assert stats["volume_fractions"]["copper"] > 0.01
    assert stats["volume_fractions"]["epoxy_resin"] > 0.5
