"""Ablation: the Woodbury fast path vs. full refactorization.

Between Monte Carlo samples only the 12 rank-1 wire stamps change; the
fast mode factorizes the field matrices once and applies
Sherman-Morrison-Woodbury updates per solve.  This bench measures the
speedup on one full transient and checks the two modes agree.
"""

import time

import numpy as np

from repro.coupled.electrothermal import CoupledSolver
from repro.package3d.chip_example import build_date16_problem
from repro.reporting.tables import format_table
from repro.solvers.time_integration import TimeGrid

from .conftest import bench_resolution, write_artifact, write_bench_json


def test_ablation_woodbury_fast_path(benchmark):
    problem, _ = build_date16_problem(resolution=bench_resolution())
    time_grid = TimeGrid.from_num_points(50.0, 51)

    def run_fast():
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-3)
        return solver.solve_transient(time_grid)

    start = time.time()
    full_result = CoupledSolver(
        problem, mode="full", tolerance=1e-3
    ).solve_transient(time_grid)
    full_elapsed = time.time() - start

    start = time.time()
    fast_result = benchmark.pedantic(run_fast, rounds=1, iterations=1)
    fast_elapsed = time.time() - start

    deviation = float(
        np.max(np.abs(
            fast_result.wire_temperatures - full_result.wire_temperatures
        ))
    )
    rows = [
        ("full (re-assemble + LU each iterate)", f"{full_elapsed:.2f}"),
        ("fast (Woodbury wire updates)", f"{fast_elapsed:.2f}"),
        ("speedup", f"{full_elapsed / fast_elapsed:.1f}x"),
        ("max wire-temperature deviation", f"{deviation:.3f} K"),
    ]
    text = format_table(
        ["configuration", "value"],
        rows,
        title="ABLATION: WOODBURY FAST PATH (one 51-point transient)",
    )
    path = write_artifact("ablation_woodbury.txt", text)
    write_bench_json(
        "ablation_woodbury",
        timings={"full": full_elapsed, "fast": fast_elapsed},
        speedup=full_elapsed / fast_elapsed,
        max_deviation_kelvin=deviation,
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")

    assert fast_elapsed < full_elapsed
    # The only difference is the frozen field-material matrices; on this
    # moderate temperature excursion they agree to a fraction of a kelvin.
    assert deviation < 1.0
