"""Streaming vs in-memory Jansen reduction across output sizes.

The point of the streaming reduction is memory: an in-memory reduce of a
second-order campaign materializes the ``(M (d + 2 + pairs + groups), K)``
output matrix, while the :class:`~repro.uq.sensitivity.
StreamingJansenAccumulator` folds each checkpointed chunk into running
sums and retains only the ``A``/``B`` blocks plus one ``(K,)`` sum pair
per swap block.  This bench sweeps the output size ``K`` of a vector QoI
(the Sobol g-function scaled by a weight vector), re-reduces one
completed second-order campaign store both ways, verifies the indices
are bit-identical, and reports wall time plus the bytes each strategy
holds.

    REPRO_STREAM_BASE_SAMPLES   base samples M (default 64)
    REPRO_STREAM_OUTPUT_SIZES   comma-separated K sweep (default
                                "8,256,4096")
"""

import contextlib
import os
import time

import numpy as np

from repro.campaign import (
    ArtifactStore,
    JansenReducer,
    ScenarioSpec,
    SensitivitySpec,
    run_campaign,
)
from repro.reporting.tables import format_table
from repro.uq.analytic import sobol_g_distribution

from .conftest import bench_timings, write_artifact, write_bench_json

_G_COEFFICIENTS = [0.0, 0.5, 3.0, 9.0, 99.0, 99.0]


def _drop_reducer_state(store):
    """Remove the reduction snapshot so a re-reduce folds every chunk."""
    with contextlib.suppress(FileNotFoundError):
        os.remove(ArtifactStore(store).reducer_state_path)


def _base_samples():
    return int(os.environ.get("REPRO_STREAM_BASE_SAMPLES", "64"))


def _output_sizes():
    raw = os.environ.get("REPRO_STREAM_OUTPUT_SIZES", "8,256,4096")
    return [int(part) for part in raw.split(",") if part.strip()]


def _make_spec(num_base_samples, output_size):
    weights = (1.0 + np.arange(output_size) % 7).tolist()
    dimension = len(_G_COEFFICIENTS)
    return SensitivitySpec(
        name=f"stream-bench-k{output_size}",
        scenario=ScenarioSpec(
            problem="sobol-g",
            options={"a": _G_COEFFICIENTS, "weights": weights},
            module="repro.uq.analytic",
        ),
        distribution=sobol_g_distribution(),
        dimension=dimension,
        num_base_samples=num_base_samples,
        seed=17,
        chunk_size=max(1, num_base_samples // 2),
        sampler="random",
        second_order=True,
        groups=[[0, 1, 2], [3, 4, 5]],
        num_bootstrap=0,
    )


def _reduce_bytes(spec, output_size, streaming):
    """Floats held by the reduction strategy, in bytes."""
    m = spec.num_base_samples
    plan = spec.plan
    if streaming:
        retained = 2 * m + 2 * (plan.num_blocks - 2)
    else:
        retained = spec.num_samples
    return retained * output_size * 8


def test_streaming_reduction_scaling(benchmark, tmp_path):
    num_base_samples = _base_samples()
    rows = []
    last = None
    for output_size in _output_sizes():
        spec = _make_spec(num_base_samples, output_size)
        store = str(tmp_path / f"store-k{output_size}")
        # Populate the store once; the timed calls below are pure
        # re-reduces of the checkpointed chunks.  Drop the reduction
        # snapshot the populate run checkpointed, so the timed streaming
        # call measures the per-chunk fold, not a state restore.
        run_campaign(spec, store=store,
                     reducer=JansenReducer(spec, streaming=True))
        _drop_reducer_state(store)

        start = time.perf_counter()
        in_memory = run_campaign(
            spec, store=store,
            reducer=JansenReducer(spec, streaming=False, num_bootstrap=0),
        )
        memory_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        streamed = run_campaign(
            spec, store=store,
            reducer=JansenReducer(spec, streaming=True),
        )
        stream_elapsed = time.perf_counter() - start
        _drop_reducer_state(store)
        assert in_memory.num_evaluated == 0
        assert streamed.num_evaluated == 0
        assert np.array_equal(in_memory.first_order, streamed.first_order)
        assert np.array_equal(in_memory.total, streamed.total)
        assert np.array_equal(in_memory.second_order.interaction,
                              streamed.second_order.interaction)
        assert np.array_equal(in_memory.group_indices.total,
                              streamed.group_indices.total)
        matrix_bytes = _reduce_bytes(spec, output_size, False)
        sum_bytes = _reduce_bytes(spec, output_size, True)
        rows.append((
            str(output_size),
            f"{memory_elapsed * 1e3:.1f}",
            f"{stream_elapsed * 1e3:.1f}",
            f"{matrix_bytes / 1e6:.2f}",
            f"{sum_bytes / 1e6:.2f}",
            f"{matrix_bytes / sum_bytes:.1f}x",
        ))
        last = (spec, store)

    spec, store = last

    def streaming_reduce():
        _drop_reducer_state(store)
        return run_campaign(spec, store=store,
                            reducer=JansenReducer(spec, streaming=True))

    benchmark.pedantic(streaming_reduce, rounds=1, iterations=1)

    text = format_table(
        ["K", "in-mem [ms]", "stream [ms]", "matrix [MB]", "sums [MB]",
         "saving"],
        rows,
        title=(
            f"STREAMING JANSEN REDUCTION (sobol-g, M={num_base_samples}, "
            f"d={len(_G_COEFFICIENTS)}, {spec.plan.num_pairs} pairs, "
            f"{spec.plan.num_groups} groups, "
            f"{spec.num_samples} evaluations)"
        ),
    )
    path = write_artifact("streaming_reduction.txt", text)
    write_bench_json(
        "streaming_reduction",
        timings=bench_timings(benchmark),
        counters={
            "output_sizes": len(rows),
            "evaluations": spec.num_samples,
        },
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")
