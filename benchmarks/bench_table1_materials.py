"""Table I: material properties at 300 K.

Regenerates the paper's Table I from the material library and benchmarks
the property evaluation path (the per-cell conductivity evaluation that
the assembly performs on every nonlinear iteration).
"""

import numpy as np

from repro.constants import T_REFERENCE
from repro.materials.library import copper, epoxy_resin
from repro.reporting.tables import format_table1

from .conftest import bench_timings, write_artifact, write_bench_json

#: (region, material factory, paper lambda [W/K/m], paper sigma [S/m])
PAPER_TABLE1 = [
    ("Compound", epoxy_resin, 0.87, 1.0e-6),
    ("Contact pad", copper, 398.0, 5.80e7),
    ("Chip", copper, 398.0, 5.80e7),
    ("Bonding wire", copper, 398.0, 5.80e7),
]


def test_table1_regeneration(benchmark):
    """Regenerate Table I and check every entry against the paper."""
    text = benchmark(format_table1)
    path = write_artifact("table1_materials.txt", text)
    write_bench_json(
        "table1_materials",
        timings=bench_timings(benchmark),
        counters={"regions": len(PAPER_TABLE1)},
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")

    for region, factory, lam, sigma in PAPER_TABLE1:
        material = factory()
        assert material.thermal_conductivity(T_REFERENCE) == lam
        assert material.electrical_conductivity(T_REFERENCE) == sigma


def test_table1_vectorized_evaluation(benchmark):
    """Benchmark the hot path: sigma(T) over 100k cells at once."""
    material = copper()
    temperatures = np.linspace(300.0, 500.0, 100_000)

    sigma = benchmark(material.electrical_conductivity, temperatures)
    assert sigma.shape == temperatures.shape
    assert np.all(np.diff(sigma) < 0.0)
