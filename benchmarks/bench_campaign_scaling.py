"""Campaign engine scaling: samples/sec vs. worker count.

Runs the same small Date16 Monte Carlo campaign through the serial
executor and process pools of growing size.  Each worker builds the
problem once (mesh + base LU + Woodbury operators) and then streams
samples, so throughput should scale with workers once the per-worker
setup is amortized.  The bench also asserts the executors agree bitwise
-- the campaign contract.

    REPRO_CAMPAIGN_SAMPLES   samples per configuration (default 16)
    REPRO_CAMPAIGN_WORKERS   comma-separated pool sizes (default "1,2,4")
"""

import os
import time

import numpy as np

from repro.campaign import ParallelExecutor, SerialExecutor, run_campaign
from repro.package3d.scenarios import date16_campaign_spec
from repro.reporting.tables import format_table

from .conftest import bench_resolution, write_artifact


def _campaign_samples():
    return int(os.environ.get("REPRO_CAMPAIGN_SAMPLES", "16"))


def _worker_counts():
    raw = os.environ.get("REPRO_CAMPAIGN_WORKERS", "1,2,4")
    return [int(part) for part in raw.split(",") if part.strip()]


def test_campaign_scaling(benchmark):
    num_samples = _campaign_samples()
    spec = date16_campaign_spec(
        num_samples=num_samples,
        chunk_size=max(1, num_samples // 8),
        resolution=bench_resolution(),
        qoi="final",
    )

    start = time.time()
    serial_result = run_campaign(spec, executor=SerialExecutor())
    serial_elapsed = time.time() - start
    rows = [("serial", f"{serial_elapsed:.2f}",
             f"{num_samples / serial_elapsed:.2f}", "1.0x")]

    last_result = None

    def run_largest_pool():
        return run_campaign(
            spec, executor=ParallelExecutor(num_workers=_worker_counts()[-1])
        )

    for workers in _worker_counts():
        start = time.time()
        if workers == _worker_counts()[-1]:
            result = benchmark.pedantic(
                run_largest_pool, rounds=1, iterations=1
            )
        else:
            result = run_campaign(
                spec, executor=ParallelExecutor(num_workers=workers)
            )
        elapsed = time.time() - start
        assert np.array_equal(result.mean, serial_result.mean)
        assert np.array_equal(result.std, serial_result.std)
        rows.append(
            (f"parallel x{workers}", f"{elapsed:.2f}",
             f"{num_samples / elapsed:.2f}",
             f"{serial_elapsed / elapsed:.1f}x")
        )
        last_result = result

    text = format_table(
        ["executor", "wall [s]", "samples/s", "speedup"],
        rows,
        title=(
            f"CAMPAIGN SCALING ({num_samples} Date16 samples, "
            f"chunk={spec.chunk_size}, qoi=final)"
        ),
    )
    path = write_artifact("campaign_scaling.txt", text)
    print("\n" + text)
    print(f"\n[artifact] {path}")

    assert last_result is not None
    assert last_result.num_samples == num_samples
