"""Campaign engine scaling: samples/sec vs. worker count.

Runs the same small Date16 Monte Carlo campaign through the serial
executor and process pools of growing size.  Each worker builds the
problem once (mesh + base LU + Woodbury operators) and then streams
samples, so throughput should scale with workers once the per-worker
setup is amortized.  The bench also asserts the executors agree bitwise
-- the campaign contract.

    REPRO_CAMPAIGN_SAMPLES   samples per configuration (default 16)
    REPRO_CAMPAIGN_WORKERS   comma-separated pool sizes (default "1,2,4")

Run as a script (``python -m benchmarks.bench_campaign_scaling
--overhead-smoke``) it becomes the telemetry overhead guard: the same
serial campaign timed with capture enabled and disabled must agree
within a few per cent, because disabled-mode instrumentation is a
single attribute check (see DESIGN.md "Telemetry").
"""

import os
import sys
import time

import numpy as np

from repro.campaign import ParallelExecutor, SerialExecutor, run_campaign
from repro.package3d.scenarios import date16_campaign_spec
from repro.reporting.tables import format_table

try:
    from .conftest import bench_resolution, write_artifact, write_bench_json
except ImportError:  # pragma: no cover - script-mode fallback
    from conftest import bench_resolution, write_artifact, write_bench_json


def _campaign_samples():
    return int(os.environ.get("REPRO_CAMPAIGN_SAMPLES", "16"))


def _worker_counts():
    raw = os.environ.get("REPRO_CAMPAIGN_WORKERS", "1,2,4")
    return [int(part) for part in raw.split(",") if part.strip()]


def test_campaign_scaling(benchmark):
    num_samples = _campaign_samples()
    spec = date16_campaign_spec(
        num_samples=num_samples,
        chunk_size=max(1, num_samples // 8),
        resolution=bench_resolution(),
        qoi="final",
    )

    start = time.time()
    serial_result = run_campaign(spec, executor=SerialExecutor())
    serial_elapsed = time.time() - start
    rows = [("serial", f"{serial_elapsed:.2f}",
             f"{num_samples / serial_elapsed:.2f}", "1.0x")]

    last_result = None

    def run_largest_pool():
        return run_campaign(
            spec, executor=ParallelExecutor(num_workers=_worker_counts()[-1])
        )

    for workers in _worker_counts():
        start = time.time()
        if workers == _worker_counts()[-1]:
            result = benchmark.pedantic(
                run_largest_pool, rounds=1, iterations=1
            )
        else:
            result = run_campaign(
                spec, executor=ParallelExecutor(num_workers=workers)
            )
        elapsed = time.time() - start
        assert np.array_equal(result.mean, serial_result.mean)
        assert np.array_equal(result.std, serial_result.std)
        rows.append(
            (f"parallel x{workers}", f"{elapsed:.2f}",
             f"{num_samples / elapsed:.2f}",
             f"{serial_elapsed / elapsed:.1f}x")
        )
        last_result = result

    text = format_table(
        ["executor", "wall [s]", "samples/s", "speedup"],
        rows,
        title=(
            f"CAMPAIGN SCALING ({num_samples} Date16 samples, "
            f"chunk={spec.chunk_size}, qoi=final)"
        ),
    )
    path = write_artifact("campaign_scaling.txt", text)
    write_bench_json(
        "campaign_scaling",
        timings={
            "serial": serial_elapsed,
            "parallel_largest": elapsed,
        },
        counters={
            "samples": num_samples,
            "workers_largest": _worker_counts()[-1],
        },
        speedup=serial_elapsed / elapsed,
    )
    print("\n" + text)
    print(f"\n[artifact] {path}")

    assert last_result is not None
    assert last_result.num_samples == num_samples


# ----------------------------------------------------------------------
# Telemetry overhead guard (script mode)
# ----------------------------------------------------------------------
def _timed_serial_run(spec, telemetry, repeats):
    """Min-of-``repeats`` wall time of one serial campaign run.

    Minimum (not mean) because scheduler noise only ever adds time; the
    minimum is the cleanest estimate of the true cost on a shared CI
    box.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_campaign(spec, executor=SerialExecutor(), telemetry=telemetry)
        best = min(best, time.perf_counter() - start)
    return best


def overhead_smoke(num_samples=4, repeats=3, threshold=0.03, slack=0.25):
    """Assert telemetry capture costs < ``threshold`` on real solves.

    Telemetry spans wrap chunks and samples -- never inner solver loops
    -- so on the Date16 model (each sample a full coupled transient,
    milliseconds to seconds) the capture cost must vanish in the solve
    time.  ``slack`` is an absolute floor (seconds) absorbing timer and
    scheduler noise at very small problem sizes.  Returns the relative
    overhead; raises ``AssertionError`` beyond budget.
    """
    spec = date16_campaign_spec(
        num_samples=num_samples,
        chunk_size=max(1, num_samples // 2),
        resolution=bench_resolution(),
        qoi="final",
    )
    # Warm-up run: imports, mesh build, BLAS thread pools.
    _timed_serial_run(spec, False, 1)
    disabled = _timed_serial_run(spec, False, repeats)
    enabled = _timed_serial_run(spec, True, repeats)
    overhead = (enabled - disabled) / disabled
    budget = disabled * (1.0 + threshold) + slack
    print(
        f"telemetry overhead: disabled {disabled:.3f} s, enabled "
        f"{enabled:.3f} s ({100.0 * overhead:+.2f}%, budget "
        f"{100.0 * threshold:.0f}% + {slack:.2f} s slack)"
    )
    write_bench_json(
        "telemetry_overhead",
        timings={"disabled": disabled, "enabled": enabled},
        counters={"samples": num_samples, "repeats": repeats},
        overhead_fraction=overhead,
    )
    assert enabled <= budget, (
        f"telemetry-enabled run ({enabled:.3f} s) exceeded the "
        f"disabled-mode budget ({budget:.3f} s); capture is no longer "
        "cheap enough for the hot path"
    )
    return overhead


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="campaign scaling bench utilities",
    )
    parser.add_argument(
        "--overhead-smoke", action="store_true",
        help="run the telemetry overhead guard (enabled vs disabled "
             "serial campaign within threshold)",
    )
    parser.add_argument(
        "--samples", type=int,
        default=int(os.environ.get("REPRO_OVERHEAD_SAMPLES", "4")),
    )
    parser.add_argument(
        "--repeats", type=int,
        default=int(os.environ.get("REPRO_OVERHEAD_REPEATS", "3")),
    )
    parser.add_argument("--threshold", type=float, default=0.03)
    parser.add_argument("--slack", type=float, default=0.25)
    arguments = parser.parse_args(argv)
    if not arguments.overhead_smoke:
        parser.error("nothing to do; pass --overhead-smoke")
    overhead_smoke(
        num_samples=arguments.samples,
        repeats=arguments.repeats,
        threshold=arguments.threshold,
        slack=arguments.slack,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "src")
    )
    sys.exit(main())
