"""Kill/restart smoke of the campaign service -- the CI examples gate.

Drives the real ``repro-campaign serve`` subprocess end to end:

* two campaigns are submitted over HTTP to a ``--max-workers 1``
  service, so they run FIFO;
* the status endpoint must report monotone folded-chunk frontier
  progress for the in-flight job;
* the service is SIGKILLed mid-run; ``repro-campaign report --partial``
  must render the interrupted store;
* a restarted service over the same root must recover the queue,
  resume the in-flight job from its checkpoints and complete both;
* the resumed summary must equal a direct ``run_campaign`` of the same
  spec (the bit-identical kill/resume contract, through the service).

This is the DESIGN.md "Service layer" contract exercised with a real
process kill, which the in-process unit tests cannot fully stand in
for.  Run from the repository root::

    python scripts/service_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
# Repo root for the tests.service fixture problems, src/ for running
# against the tree without an installed package.
for entry in (REPO_ROOT, os.path.join(REPO_ROOT, "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.campaign import CampaignSpec, ScenarioSpec, run_campaign  # noqa: E402
from repro.campaign.cli import main  # noqa: E402
from repro.service import job_status, submit_job  # noqa: E402

from tests.service.problems import MODULE, SLEEPY_PROBLEM  # noqa: E402


def sleepy_spec(name, num_samples, sleep_s):
    return CampaignSpec(
        name=name,
        scenario=ScenarioSpec(
            problem=SLEEPY_PROBLEM,
            qoi="identity",
            options={"sleep_s": sleep_s},
            module=MODULE,
        ),
        distribution={"kind": "normal", "mu": 0.0, "sigma": 1.0},
        dimension=3,
        num_samples=num_samples,
        seed=19,
        chunk_size=3,
    )


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        raise SystemExit(1)
    print(f"ok: {message}")


def start_service(root):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.campaign", "serve", str(root),
         "--max-workers", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        cwd=REPO_ROOT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                f"FAIL: serve exited early (rc {process.poll()})"
            )
        if line.startswith("serving at "):
            return process, line.split("serving at ", 1)[1].strip()
    process.kill()
    raise SystemExit("FAIL: serve never announced its address")


def wait_completed(url, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = job_status(url, job_id)
        if status["state"] in ("completed", "failed", "cancelled"):
            return status
        time.sleep(0.05)
    raise SystemExit(f"FAIL: job {job_id} never finished")


def run_smoke(workdir):
    root = os.path.join(workdir, "service-root")
    slow = sleepy_spec("smoke-slow", num_samples=30, sleep_s=0.05)
    fast = sleepy_spec("smoke-fast", num_samples=9, sleep_s=0.0)

    process, url = start_service(root)
    try:
        job_a = submit_job(url, slow)
        job_b = submit_job(url, fast, tenant="bob")
        print(f"submitted {job_a['job_id']}, {job_b['job_id']} at {url}")

        frontiers = []
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            status = job_status(url, job_a["job_id"])
            if status["state"] == "running":
                frontiers.append(status.get("chunks_folded", 0))
                if frontiers[-1] >= 2:
                    break
            time.sleep(0.02)
        check(
            frontiers and frontiers == sorted(frontiers)
            and frontiers[-1] >= 2,
            "status streams monotone frontier progress "
            f"(saw {frontiers})",
        )

        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
        print("ok: service killed mid-run")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

    store_a = os.path.join(root, "stores", "default", job_a["job_id"])
    check(
        main(["report", store_a, "--partial"]) == 0,
        "report --partial renders the interrupted store",
    )

    process, url = start_service(root)
    try:
        status_a = wait_completed(url, job_a["job_id"])
        status_b = wait_completed(url, job_b["job_id"])
        check(
            status_a["state"] == "completed" and status_a["resumes"] == 1,
            "killed in-flight job resumed and completed "
            f"(resumes={status_a['resumes']})",
        )
        check(
            status_b["state"] == "completed",
            "queued job survived the restart and completed",
        )
        resumed_summary = status_a["summary"]
    finally:
        process.kill()
        process.wait(timeout=30)

    reference = run_campaign(slow, store=os.path.join(workdir, "ref"))
    check(
        resumed_summary == reference.summary(),
        "resumed summary equals a direct run_campaign of the same spec",
    )


def run():
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as workdir:
        run_smoke(workdir)
    print("service smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(run())
