"""Run a small fault-injected campaign end-to-end -- the nightly CI gate.

A 64-sample campaign over the flaky fixture problem
(``tests.campaign.flaky_problem``) is driven through the real
``repro-campaign`` CLI with ``--executor process --max-retries 2``:

* one permanently poisoned sample (chunk 1) must exhaust its retries
  and land in ``quarantine.json``;
* one transient sample kills its whole worker process on the first
  attempt (``os._exit``), forcing a ``BrokenProcessPool`` rebuild --
  the chunk must heal on retry and leave no quarantine trace;
* ``resume`` must retry the quarantined chunk (and re-quarantine it,
  since the poison is permanent) and leave the campaign complete;
* every successful chunk must be bitwise identical to a failure-free
  run of the same spec.

This is the DESIGN.md "Fault tolerance" contract exercised with real
worker death, which the in-process unit tests cannot fully stand in
for on every platform.  Run from the repository root::

    python scripts/fault_injection_smoke.py
"""

import os
import sys
import tempfile

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
# Repo root for the tests.campaign fixture package, src/ for running
# against the tree without an installed package.
for entry in (REPO_ROOT, os.path.join(REPO_ROOT, "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.campaign import ArtifactStore, CampaignSpec, ScenarioSpec  # noqa: E402
from repro.campaign.cli import main  # noqa: E402

from tests.campaign.flaky_problem import MODULE, PROBLEM_NAME  # noqa: E402

DIMENSION = 4
SEED = 7
NUM_SAMPLES = 64
CHUNK_SIZE = 8
POISON_SAMPLE = 9      # -> chunk 1, permanently quarantined
TRANSIENT_SAMPLE = 35  # -> chunk 4, heals after one worker kill


def flaky_spec(options=None):
    scenario_options = {"seed": SEED, "dimension": DIMENSION}
    scenario_options.update(options or {})
    return CampaignSpec(
        name="fault-injection-smoke",
        scenario=ScenarioSpec(
            problem=PROBLEM_NAME,
            qoi="identity",
            options=scenario_options,
            module=MODULE,
        ),
        distribution={"kind": "normal", "mu": 0.0, "sigma": 1.0},
        dimension=DIMENSION,
        num_samples=NUM_SAMPLES,
        seed=SEED,
        chunk_size=CHUNK_SIZE,
    )


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        raise SystemExit(1)
    print(f"ok: {message}")


def run_smoke(workdir):
    state_dir = os.path.join(workdir, "state")
    os.mkdir(state_dir)
    spec_path = os.path.join(workdir, "campaign.json")
    flaky_spec({
        "poison_sample": POISON_SAMPLE,
        "transient_sample": TRANSIENT_SAMPLE,
        "fail_attempts": 1,
        "mode": "kill",
        "state_dir": state_dir,
    }).save(spec_path)

    store_path = os.path.join(workdir, "store")
    code = main([
        "run", spec_path, "--store", store_path,
        "--executor", "process", "--max-retries", "2", "--quiet",
    ])
    check(code == 0, "faulty campaign exits 0 under --max-retries 2")

    store = ArtifactStore(store_path)
    quarantine = store.read_quarantine()
    check(
        set(quarantine) == {POISON_SAMPLE // CHUNK_SIZE},
        "only the poisoned chunk is quarantined "
        "(worker-kill transient healed on retry)",
    )
    summary = store.read_summary()
    check(
        summary["num_quarantined_chunks"] == 1
        and summary["num_quarantined_samples"] == CHUNK_SIZE
        and summary["num_samples"] == NUM_SAMPLES - CHUNK_SIZE,
        "summary counts the quarantined samples",
    )
    markers = [
        name for name in os.listdir(state_dir)
        if name.startswith(f"transient_{TRANSIENT_SAMPLE}.")
    ]
    check(len(markers) >= 2, "transient sample was actually retried")

    code = main([
        "resume", store_path,
        "--executor", "process", "--max-retries", "2", "--quiet",
    ])
    check(code == 0, "resume retries the quarantined chunk and exits 0")
    check(
        set(store.read_quarantine()) == {POISON_SAMPLE // CHUNK_SIZE},
        "permanently poisoned chunk is re-quarantined on resume",
    )

    clean_path = os.path.join(workdir, "clean.json")
    flaky_spec().save(clean_path)
    clean_store_path = os.path.join(workdir, "clean-store")
    code = main([
        "run", clean_path, "--store", clean_store_path, "--quiet",
    ])
    check(code == 0, "failure-free reference campaign exits 0")
    reference = ArtifactStore(clean_store_path)
    quarantined = set(quarantine)
    for chunk_index in reference.completed_chunks():
        if chunk_index in quarantined:
            continue
        _, _, outputs = store.read_chunk(chunk_index)
        _, _, expected = reference.read_chunk(chunk_index)
        if not np.array_equal(outputs, expected):
            print(f"FAIL: chunk {chunk_index} differs from the "
                  "failure-free reference")
            raise SystemExit(1)
    print("ok: successful chunks bitwise match the failure-free run")


def run():
    with tempfile.TemporaryDirectory(prefix="fault-smoke-") as workdir:
        run_smoke(workdir)
    print("fault-injection smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(run())
