"""Run every example with tiny sample counts -- the CI smoke gate.

The examples are the documented entry points of the repository; an API
redesign that forgets one of them should fail CI, not a user.  This
driver discovers every ``examples/*.py``, runs each in a subprocess with
sample counts shrunk via argv/env (see ``_OVERRIDES``), and fails on the
first nonzero exit.  New examples are picked up automatically (with no
overrides, so keep their defaults cheap or add an entry here).

After the examples pass, the driver runs a telemetry smoke: a tiny CLI
campaign into a temporary store, then ``repro-campaign trace --validate``
on it, so the persisted event schema (DESIGN.md "Telemetry") is checked
end-to-end on every CI run.

Run from the repository root::

    python scripts/smoke_examples.py [pattern]

An optional substring pattern restricts the run to matching filenames.
"""

import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

#: Per-example shrink knobs: extra argv and environment overrides.
_TINY_ENV = {
    "REPRO_MC_SAMPLES": "4",
    "REPRO_MESH_RESOLUTIONS": "coarse",
}
_OVERRIDES = {
    "adaptive_stepping.py": {"argv": ["2.0"]},
    "pce_surrogate_campaign.py": {"argv": ["330"]},
    "second_order_campaign.py": {"argv": ["8", "2"]},
    "sensitivity_campaign.py": {"argv": ["2", "2"]},
}

#: Generous per-example ceiling; anything slower is a regression worth
#: failing on.
TIMEOUT_SECONDS = 600


def run_example(path):
    name = os.path.basename(path)
    override = _OVERRIDES.get(name, {})
    env = dict(os.environ)
    env.update(_TINY_ENV)
    env.update(override.get("env", {}))
    env.setdefault("PYTHONPATH", "")
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"), env["PYTHONPATH"]])
    )
    command = [sys.executable, path, *override.get("argv", [])]
    start = time.perf_counter()
    completed = subprocess.run(
        command, cwd=REPO_ROOT, env=env, timeout=TIMEOUT_SECONDS,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    elapsed = time.perf_counter() - start
    return completed, elapsed


def _campaign_env():
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "")
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"), env["PYTHONPATH"]])
    )
    return env


def smoke_telemetry():
    """Run a tiny CLI campaign and validate its persisted telemetry.

    Exercises the full path -- spec template, run with a store,
    per-chunk event files, ``report --timings`` rendering, and the
    ``trace --validate`` schema check -- in subprocesses, exactly as a
    user would.  Returns True on success.
    """
    env = _campaign_env()
    cli = [sys.executable, "-m", "repro.campaign"]
    with tempfile.TemporaryDirectory() as scratch:
        spec = os.path.join(scratch, "campaign.json")
        store = os.path.join(scratch, "store")
        steps = [
            ("spec", [*cli, "spec", "date16", "--samples", "4",
                      "--chunk-size", "2", "-o", spec]),
            ("run", [*cli, "run", spec, "--store", store, "--quiet"]),
            ("report --timings", [*cli, "report", store, "--timings"]),
            ("trace --validate", [*cli, "trace", store, "--validate"]),
        ]
        for label, command in steps:
            print(f"==> telemetry smoke: {label} ... ", end="", flush=True)
            start = time.perf_counter()
            completed = subprocess.run(
                command, cwd=REPO_ROOT, env=env, timeout=TIMEOUT_SECONDS,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True,
            )
            elapsed = time.perf_counter() - start
            if completed.returncode != 0:
                print(f"FAILED (exit {completed.returncode}, "
                      f"{elapsed:.1f}s)")
                print(completed.stdout[-4000:])
                return False
            print(f"ok ({elapsed:.1f}s)")
        telemetry_dir = os.path.join(store, "telemetry")
        chunk_logs = [
            name for name in os.listdir(telemetry_dir)
            if name.startswith("chunk_") and name.endswith(".jsonl")
        ] if os.path.isdir(telemetry_dir) else []
        if len(chunk_logs) != 2:
            print(f"telemetry smoke: expected 2 chunk event logs in "
                  f"{telemetry_dir}, found {sorted(chunk_logs)}")
            return False
    return True


def main():
    pattern = sys.argv[1] if len(sys.argv) > 1 else ""
    examples = sorted(
        entry for entry in os.listdir(EXAMPLES_DIR)
        if entry.endswith(".py") and not entry.startswith("_")
        and pattern in entry
    )
    if not examples:
        print(f"no examples match {pattern!r}", file=sys.stderr)
        return 2
    failures = []
    for name in examples:
        print(f"==> {name} ... ", end="", flush=True)
        try:
            completed, elapsed = run_example(
                os.path.join(EXAMPLES_DIR, name)
            )
        except subprocess.TimeoutExpired:
            print(f"TIMEOUT after {TIMEOUT_SECONDS}s")
            failures.append(name)
            continue
        if completed.returncode == 0:
            print(f"ok ({elapsed:.1f}s)")
        else:
            print(f"FAILED (exit {completed.returncode}, {elapsed:.1f}s)")
            print(completed.stdout[-4000:])
            failures.append(name)
    print()
    if failures:
        print(f"{len(failures)}/{len(examples)} examples failed: "
              f"{', '.join(failures)}")
        return 1
    if not smoke_telemetry():
        print("telemetry smoke failed")
        return 1
    print(f"all {len(examples)} examples passed (+ telemetry smoke)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
