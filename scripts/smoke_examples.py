"""Run every example with tiny sample counts -- the CI smoke gate.

The examples are the documented entry points of the repository; an API
redesign that forgets one of them should fail CI, not a user.  This
driver discovers every ``examples/*.py``, runs each in a subprocess with
sample counts shrunk via argv/env (see ``_OVERRIDES``), and fails on the
first nonzero exit.  New examples are picked up automatically (with no
overrides, so keep their defaults cheap or add an entry here).

Run from the repository root::

    python scripts/smoke_examples.py [pattern]

An optional substring pattern restricts the run to matching filenames.
"""

import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

#: Per-example shrink knobs: extra argv and environment overrides.
_TINY_ENV = {
    "REPRO_MC_SAMPLES": "4",
    "REPRO_MESH_RESOLUTIONS": "coarse",
}
_OVERRIDES = {
    "adaptive_stepping.py": {"argv": ["2.0"]},
    "pce_surrogate_campaign.py": {"argv": ["330"]},
    "second_order_campaign.py": {"argv": ["8", "2"]},
    "sensitivity_campaign.py": {"argv": ["2", "2"]},
}

#: Generous per-example ceiling; anything slower is a regression worth
#: failing on.
TIMEOUT_SECONDS = 600


def run_example(path):
    name = os.path.basename(path)
    override = _OVERRIDES.get(name, {})
    env = dict(os.environ)
    env.update(_TINY_ENV)
    env.update(override.get("env", {}))
    env.setdefault("PYTHONPATH", "")
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"), env["PYTHONPATH"]])
    )
    command = [sys.executable, path, *override.get("argv", [])]
    start = time.perf_counter()
    completed = subprocess.run(
        command, cwd=REPO_ROOT, env=env, timeout=TIMEOUT_SECONDS,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    elapsed = time.perf_counter() - start
    return completed, elapsed


def main():
    pattern = sys.argv[1] if len(sys.argv) > 1 else ""
    examples = sorted(
        entry for entry in os.listdir(EXAMPLES_DIR)
        if entry.endswith(".py") and not entry.startswith("_")
        and pattern in entry
    )
    if not examples:
        print(f"no examples match {pattern!r}", file=sys.stderr)
        return 2
    failures = []
    for name in examples:
        print(f"==> {name} ... ", end="", flush=True)
        try:
            completed, elapsed = run_example(
                os.path.join(EXAMPLES_DIR, name)
            )
        except subprocess.TimeoutExpired:
            print(f"TIMEOUT after {TIMEOUT_SECONDS}s")
            failures.append(name)
            continue
        if completed.returncode == 0:
            print(f"ok ({elapsed:.1f}s)")
        else:
            print(f"FAILED (exit {completed.returncode}, {elapsed:.1f}s)")
            print(completed.stdout[-4000:])
            failures.append(name)
    print()
    if failures:
        print(f"{len(failures)}/{len(examples)} examples failed: "
              f"{', '.join(failures)}")
        return 1
    print(f"all {len(examples)} examples passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
